package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"sync"

	"repro/internal/cloudevents"
	"repro/internal/lru"
	"repro/internal/mediation"
	"repro/internal/mqtt"
	"repro/internal/topics"
	"repro/internal/wsa"
	"repro/internal/xmldom"
)

// MQTT 3.1.1 front door: the session layer that turns the internal/mqtt
// codec into the broker's fourth ingress/egress. Each QoS level rides the
// delivery machinery the other doors already use:
//
//	QoS 0  at-most-once   sync write at the session edge; a slow or dead
//	                      consumer drops the frame (counted) and never
//	                      blocks dispatch
//	QoS 1  at-least-once  dispatch's retry policy is the retransmission
//	                      loop; PUBACK is the ack edge, and an unacked
//	                      delivery surfaces as a delivery error so the
//	                      next attempt carries DUP=1 with the same id
//	QoS 2  exactly-once   outbound: a per-message PUBREC/PUBREL/PUBCOMP
//	                      state machine that never re-PUBLISHes after
//	                      PUBREC; inbound: the federation dedup LRU keyed
//	                      by packet id suppresses redeliveries
//
// Subscriptions are session-bound subState entries (localRaw) compiled
// through mqtt.ExprForFilter onto the Full topic dialect, so they ride the
// exact/prefix topic index and count toward the same conservation law
// (Matched == Delivered + Dropped + Failed + DeadLettered) as SOAP, CE and
// WebSocket subscribers. Persistent sessions (CleanSession=0) pause with
// buffering on disconnect and resume on reconnect.

const (
	// mqttInflightCap bounds each session's inbound QoS 2 dedup set.
	mqttInflightCap = 4096
	// mqttWriteTimeout bounds one frame write to a consumer socket.
	mqttWriteTimeout = 10 * time.Second
	// mqttQoS0Timeout is the stingier bound for at-most-once frames: a
	// consumer that cannot take the write inside it loses the message.
	mqttQoS0Timeout = 2 * time.Second
)

var errMQTTOffline = errors.New("mqtt: session offline")

// mqttFront is the broker-wide MQTT state: live sessions by client id and
// the retained-message store.
type mqttFront struct {
	b        *Broker
	mu       sync.Mutex
	sessions map[string]*mqttSession
	retained map[string]retainedMsg // by wire topic name
}

type retainedMsg struct {
	payload []byte
	qos     byte
}

func newMQTTFront(b *Broker) *mqttFront {
	return &mqttFront{b: b, sessions: map[string]*mqttSession{}, retained: map[string]retainedMsg{}}
}

// mqttSession is one client's session state. For persistent sessions
// (CleanSession=0) it outlives the connection; the conn field is nil while
// the client is offline.
type mqttSession struct {
	f          *mqttFront
	clientID   string
	persistent bool

	mu      sync.Mutex
	conn    *mqtt.Conn
	gen     int // connection generation; bumped on every (re)attach
	subs    map[string]*mqttSub
	nextPID uint16
	out     map[any]*mqttOut    // outbound in-flight, by stable message key
	byPID   map[uint16]*mqttOut // same, by packet id (readLoop routing)
	dead    chan struct{}       // closed on detach; re-made on attach

	// inflight dedups inbound QoS 2 publishes by packet id until PUBREL.
	inflight *lru.Set
}

// mqttSub is one granted topic filter.
type mqttSub struct {
	filter mqtt.Filter
	qos    byte
	subID  string
}

// mqttOutKey identifies one outbound delivery across dispatch retries:
// the subscription it rides plus the stable fanMsg payload pointer. The
// subscription must be part of the key — overlapping filters on one
// session each deliver the same payload pointer concurrently, and each
// delivery owns its own packet id and handshake ([MQTT-3.3.5-1] lets the
// server send one message per matching subscription).
type mqttOutKey struct {
	sub *mqttSub
	msg any
}

// mqttOut tracks one outbound QoS 1/2 message through its handshake.
type mqttOut struct {
	pid     uint16
	ch      chan byte // ack packet types, routed by readLoop
	started bool      // a PUBLISH attempt has been written (retry ⇒ DUP)
	relSent bool      // QoS 2: PUBREC seen, handshake resumes at PUBREL
}

// ServeMQTT accepts MQTT connections on ln until it is closed. It is the
// MQTT analogue of http.Serve for the other front doors.
func (b *Broker) ServeMQTT(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go b.mqtt.serve(nc)
	}
}

// serve runs one connection: CONNECT handshake, session attach, then the
// packet loop until the socket dies.
func (f *mqttFront) serve(nc net.Conn) {
	conn := mqtt.NewConn(nc)
	p, err := conn.ReadPacket(time.Now().Add(10 * time.Second))
	if err != nil {
		conn.Close()
		return
	}
	c, ok := p.(*mqtt.Connect)
	if !ok {
		conn.Close() // [MQTT-3.1.0-1]: first packet must be CONNECT
		return
	}
	if c.ClientID == "" && !c.CleanSession {
		// [MQTT-3.1.3-8]: a zero-byte id requires a clean session.
		_ = conn.WritePacket(&mqtt.Connack{Code: mqtt.ConnRefusedIdentifier}, mqttWriteTimeout)
		conn.Close()
		return
	}
	clientID := c.ClientID
	if clientID == "" {
		clientID = "anon-" + f.b.nextMessageID()
	}
	s, present, resumed := f.attach(clientID, c.CleanSession, conn)
	if err := conn.WritePacket(&mqtt.Connack{SessionPresent: present, Code: mqtt.ConnAccepted}, mqttWriteTimeout); err != nil {
		f.detach(s, conn, false, nil)
		return
	}
	// Resume (and re-lease) buffered subscriptions only now: the CONNACK
	// must be the first packet on the wire ([MQTT-3.2.0-1]), and a resumed
	// backlog flushes PUBLISHes as soon as delivery restarts.
	for _, sub := range resumed {
		_ = f.b.store.Resume(sub.subID)
		f.b.engine.Resume(sub.subID)
		if t, err := f.b.grantExpiry("", mediation.Dialect{Family: mediation.FamilyCE}); err == nil {
			_, _ = f.b.renewSubscription(sub.subID, t)
		}
	}
	f.b.mqttConns.Add(1)
	inc(f.b.mqttConnsTotal)
	defer f.b.mqttConns.Add(-1)

	grace := time.Duration(0)
	if c.KeepAlive > 0 {
		grace = time.Duration(c.KeepAlive) * time.Second * 3 / 2 // [MQTT-3.1.2-24]
	}
	graceful := f.readLoop(s, conn, grace)
	f.detach(s, conn, graceful, c.Will)
}

// attach binds a connection to its (possibly pre-existing) session,
// reporting whether previous session state was present ([MQTT-3.2.2-2])
// and which subscriptions the caller must resume once the CONNACK is out.
func (f *mqttFront) attach(clientID string, clean bool, conn *mqtt.Conn) (*mqttSession, bool, []*mqttSub) {
	f.mu.Lock()
	old := f.sessions[clientID]
	var fresh *mqttSession
	present := false
	switch {
	case old != nil && !clean && old.persistent:
		present = true
		fresh = old
	default:
		fresh = &mqttSession{
			f: f, clientID: clientID, persistent: !clean,
			subs:     map[string]*mqttSub{},
			out:      map[any]*mqttOut{},
			byPID:    map[uint16]*mqttOut{},
			inflight: lru.New(mqttInflightCap),
		}
		f.sessions[clientID] = fresh
	}
	f.mu.Unlock()

	if old != nil && old != fresh {
		// The new connection replaces an incompatible session (clean flag
		// flipped, or the old one was clean): cancel its subscriptions.
		old.mu.Lock()
		oldConn, oldSubs := old.conn, old.subs
		old.conn, old.subs = nil, map[string]*mqttSub{}
		old.mu.Unlock()
		if oldConn != nil {
			oldConn.Close()
		}
		for _, sub := range oldSubs {
			_ = f.b.cancelSubscription(sub.subID)
		}
	}

	fresh.mu.Lock()
	prevConn := fresh.conn
	fresh.conn = conn
	fresh.gen++
	if prevConn != nil {
		// Takeover won the race against the old socket's read error: its
		// detach will no-op on the conn guard, so wake any in-flight
		// deliveries parked on the old channel — their retry re-sends on
		// the new connection with DUP.
		close(fresh.dead)
	}
	fresh.dead = make(chan struct{})
	subs := make([]*mqttSub, 0, len(fresh.subs))
	for _, sub := range fresh.subs {
		subs = append(subs, sub)
	}
	fresh.mu.Unlock()
	if prevConn != nil {
		prevConn.Close() // [MQTT-3.1.4-2]: session takeover
	}
	return fresh, present, subs
}

// detach tears a connection down: graceful disconnects discard the will;
// clean sessions evaporate; persistent ones pause with buffering.
func (f *mqttFront) detach(s *mqttSession, conn *mqtt.Conn, graceful bool, will *mqtt.Will) {
	s.mu.Lock()
	if s.conn != conn {
		// A takeover already replaced this connection; nothing to detach.
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conn = nil
	close(s.dead)
	subs := make([]*mqttSub, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	if !s.persistent {
		s.subs = map[string]*mqttSub{}
	}
	s.mu.Unlock()
	conn.Close()

	if s.persistent {
		// Engine first: once the store snapshot reads Paused, matched
		// messages are already buffering rather than racing a dead socket.
		for _, sub := range subs {
			f.b.engine.Pause(sub.subID)
			_ = f.b.store.Pause(sub.subID)
		}
	} else {
		f.mu.Lock()
		if f.sessions[s.clientID] == s {
			delete(f.sessions, s.clientID)
		}
		f.mu.Unlock()
		for _, sub := range subs {
			_ = f.b.cancelSubscription(sub.subID)
		}
	}
	if !graceful && will != nil {
		// [MQTT-3.1.2-8]: abnormal disconnect publishes the will.
		_ = f.ingest(s.clientID, &mqtt.Publish{
			Topic: will.Topic, Payload: will.Payload, QoS: will.QoS, Retain: will.Retain,
		})
	}
}

// readLoop processes inbound packets until the connection dies, reporting
// whether the client said DISCONNECT first.
func (f *mqttFront) readLoop(s *mqttSession, conn *mqtt.Conn, grace time.Duration) (graceful bool) {
	for {
		var deadline time.Time
		if grace > 0 {
			deadline = time.Now().Add(grace)
		}
		p, err := conn.ReadPacket(deadline)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				inc(f.b.mqttKeepaliveTOs)
			}
			return false
		}
		switch p := p.(type) {
		case *mqtt.Publish:
			if err := f.inboundPublish(s, conn, p); err != nil {
				return false // protocol violation: close ([MQTT-4.8.0-1])
			}
		case *mqtt.Ack:
			switch p.PacketType {
			case mqtt.PUBACK, mqtt.PUBREC, mqtt.PUBCOMP:
				s.routeAck(p)
			case mqtt.PUBREL:
				// Inbound QoS 2 release: the id may be reused now.
				s.inflight.Remove(strconv.Itoa(int(p.PacketID)))
				_ = conn.WritePacket(&mqtt.Ack{PacketType: mqtt.PUBCOMP, PacketID: p.PacketID}, mqttWriteTimeout)
			}
		case *mqtt.Subscribe:
			f.subscribe(s, conn, p)
		case *mqtt.Unsubscribe:
			f.unsubscribe(s, conn, p)
		case mqtt.Pingreq:
			_ = conn.WritePacket(mqtt.Pingresp{}, mqttWriteTimeout)
		case mqtt.Disconnect:
			return true
		default:
			return false // CONNECT twice, or server-only packets from a client
		}
	}
}

// inboundPublish runs the receiver half of the QoS contract, handing the
// message to the broker's common ingress.
func (f *mqttFront) inboundPublish(s *mqttSession, conn *mqtt.Conn, p *mqtt.Publish) error {
	switch p.QoS {
	case 0:
		return f.ingest(s.clientID, p)
	case 1:
		if err := f.ingest(s.clientID, p); err != nil {
			return err
		}
		return conn.WritePacket(&mqtt.Ack{PacketType: mqtt.PUBACK, PacketID: p.PacketID}, mqttWriteTimeout)
	default: // QoS 2: exactly-once via the dedup set
		if s.inflight.Add(strconv.Itoa(int(p.PacketID))) {
			if err := f.ingest(s.clientID, p); err != nil {
				s.inflight.Remove(strconv.Itoa(int(p.PacketID)))
				return err
			}
		} else {
			inc(f.b.mqttDupDrops)
		}
		return conn.WritePacket(&mqtt.Ack{PacketType: mqtt.PUBREC, PacketID: p.PacketID}, mqttWriteTimeout)
	}
}

// ingest publishes one inbound MQTT message through the broker's common
// CloudEvents ingress, updating the retained store first.
func (f *mqttFront) ingest(clientID string, p *mqtt.Publish) error {
	path, err := mqtt.PathForTopic(p.Topic)
	if err != nil {
		return err
	}
	if p.Retain {
		// [MQTT-3.3.1-10,11]: empty retained payload clears the slot; the
		// message still publishes normally either way.
		f.mu.Lock()
		if len(p.Payload) == 0 {
			delete(f.retained, p.Topic)
		} else {
			f.retained[p.Topic] = retainedMsg{payload: append([]byte(nil), p.Payload...), qos: p.QoS}
		}
		f.mu.Unlock()
	}
	ev := &cloudevents.Event{
		SpecVersion: cloudevents.SpecVersion,
		ID:          f.b.nextMessageID(),
		Source:      "urn:ws-messenger:mqtt:" + clientID,
		Type:        cloudevents.TypeForTopic(path),
		Time:        f.b.cfg.Clock().UTC().Format(time.RFC3339Nano),
	}
	if len(p.Payload) > 0 {
		if json.Valid(p.Payload) {
			ev.Data = append(json.RawMessage(nil), p.Payload...)
		} else {
			ev.Data, ev.DataBase64 = append([]byte(nil), p.Payload...), true
		}
	}
	if err := f.b.PublishCE(ev); err != nil {
		return err
	}
	inc(f.b.mqttPublished)
	return nil
}

// subscribe grants each filter, answers the SUBACK, then replays matching
// retained messages at the granted QoS.
func (f *mqttFront) subscribe(s *mqttSession, conn *mqtt.Conn, p *mqtt.Subscribe) {
	codes := make([]byte, len(p.Filters))
	granted := make([]*mqttSub, 0, len(p.Filters))
	for i, fq := range p.Filters {
		flt, err := mqtt.ParseFilter(fq.Filter)
		if err != nil {
			codes[i] = mqtt.SubackFailure
			continue
		}
		sub, err := f.grant(s, flt, fq.QoS)
		if err != nil {
			codes[i] = mqtt.SubackFailure
			continue
		}
		codes[i] = fq.QoS
		granted = append(granted, sub)
	}
	_ = conn.WritePacket(&mqtt.Suback{PacketID: p.PacketID, Codes: codes}, mqttWriteTimeout)
	if len(granted) == 0 {
		return
	}
	// Retained replay, off the read loop so acks keep flowing.
	f.mu.Lock()
	snapshot := make(map[string]retainedMsg, len(f.retained))
	for t, m := range f.retained {
		snapshot[t] = m
	}
	f.mu.Unlock()
	go func() {
		for topic, m := range snapshot {
			for _, sub := range granted {
				if !sub.filter.Matches(topic) {
					continue
				}
				qos := min(m.qos, sub.qos)
				ctx, cancel := sendCtx(context.Background())
				_ = s.writeQoS(ctx, &retainKey{}, qos, topic, m.payload, true)
				cancel()
				break // one retained delivery per message per SUBSCRIBE
			}
		}
	}()
}

// retainKey gives each retained replay a unique in-flight identity.
type retainKey struct{ _ byte }

// grant registers one filter as a session-bound broker subscription. A
// re-subscribe to an existing filter replaces the granted QoS in place
// ([MQTT-3.8.4-3]) without touching the underlying lease.
func (f *mqttFront) grant(s *mqttSession, flt mqtt.Filter, qos byte) (*mqttSub, error) {
	s.mu.Lock()
	if existing, ok := s.subs[flt.String()]; ok {
		existing.qos = qos
		s.mu.Unlock()
		return existing, nil
	}
	s.mu.Unlock()

	expr, nsm, err := mqtt.ExprForFilter(flt)
	if err != nil {
		return nil, err
	}
	canon := &mediation.Subscribe{
		Origin:   mediation.Dialect{Family: mediation.FamilyCE},
		Consumer: wsa.NewEPR(wsa.V200508, "urn:ws-messenger:mqtt"),
		CEMode:   mediation.CEStructured,
	}
	canon.TopicExpr, canon.TopicDialect, canon.TopicNS = expr, topics.DialectFull, nsm
	cflt, err := canon.BuildFilter()
	if err != nil {
		return nil, err
	}
	expires, err := f.b.grantExpiry("", canon.Origin)
	if err != nil {
		return nil, err
	}
	sub := &mqttSub{filter: flt, qos: qos}
	st := &subState{canon: canon, flt: cflt, pauseBuffer: s.persistent}
	if s.persistent {
		st.failureLimit = -1 // the session, not delivery failures, decides
	}
	st.plan = mediation.DeliveryPlan{
		Dialect:         canon.Origin,
		ManagerAddress:  f.b.cfg.ManagerAddress,
		ProducerAddress: f.b.cfg.Address,
		CEMode:          canon.CEMode,
	}
	lease := f.b.store.CreateFunc(func(id string) any {
		st.plan.SubscriptionID = id
		st.localRaw = func(ctx context.Context, n mediation.Notification) error {
			return s.deliver(ctx, sub, n)
		}
		f.b.attach(id, st, false, expires)
		return st
	}, expires)
	sub.subID = lease.ID

	s.mu.Lock()
	s.subs[flt.String()] = sub
	s.mu.Unlock()
	return sub, nil
}

func (f *mqttFront) unsubscribe(s *mqttSession, conn *mqtt.Conn, p *mqtt.Unsubscribe) {
	for _, raw := range p.Filters {
		s.mu.Lock()
		sub, ok := s.subs[raw]
		if ok {
			delete(s.subs, raw)
		}
		s.mu.Unlock()
		if ok {
			_ = f.b.cancelSubscription(sub.subID)
		}
	}
	_ = conn.WritePacket(&mqtt.Ack{PacketType: mqtt.UNSUBACK, PacketID: p.PacketID}, mqttWriteTimeout)
}

// deliver is the dispatch-side delivery hook: frame the notification per
// the granted QoS and run the sender half of the handshake. The fanMsg
// payload pointer is stable across dispatch retries, so (sub, payload)
// keys the in-flight state and retransmissions reuse their packet id
// with DUP — while overlapping subscriptions delivering the same payload
// each get their own id.
func (s *mqttSession) deliver(ctx context.Context, sub *mqttSub, n mediation.Notification) error {
	topic, err := mqtt.TopicForPath(n.Topic)
	if err != nil {
		// Unroutable topic: permanent, not a delivery failure.
		inc(s.f.b.mqttDropped)
		return nil
	}
	// Session-layer recheck: [MQTT-4.7.2-1] ($-topics) and the namespace
	// rules live in the string matcher, not the compiled expression.
	if !sub.filter.Matches(topic) {
		return nil
	}
	return s.writeQoS(ctx, mqttOutKey{sub: sub, msg: n.Payload}, sub.qos, topic, mqttPayloadBytes(n.Payload), false)
}

// mqttPayloadBytes extracts the wire payload: the original data bytes for
// the CloudEvents bridge wrapper, the serialised XML otherwise.
func mqttPayloadBytes(p *xmldom.Element) []byte {
	if ev, ok := cloudevents.UnwrapXML(p); ok {
		return ev.Data
	}
	if p == nil {
		return nil
	}
	return []byte(xmldom.Marshal(p))
}

// writeQoS runs the sender half of one message's QoS contract. key
// identifies the message across retries.
func (s *mqttSession) writeQoS(ctx context.Context, key any, qos byte, topic string, payload []byte, retain bool) error {
	if qos == 0 {
		s.mu.Lock()
		conn := s.conn
		s.mu.Unlock()
		if conn == nil {
			inc(s.f.b.mqttDropped)
			return nil // at-most-once: offline loses the message
		}
		if err := conn.WritePacket(&mqtt.Publish{Topic: topic, Payload: payload, Retain: retain}, mqttQoS0Timeout); err != nil {
			inc(s.f.b.mqttDropped)
			return nil // at-most-once: a stalled socket loses the message
		}
		inc(s.f.b.mqttDeliveries)
		return nil
	}

	s.mu.Lock()
	conn, dead := s.conn, s.dead
	if conn == nil {
		s.mu.Unlock()
		return errMQTTOffline
	}
	out := s.out[key]
	if out == nil {
		pid, ok := s.allocPID()
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("mqtt: session %s has no free packet ids", s.clientID)
		}
		out = &mqttOut{pid: pid, ch: make(chan byte, 2)}
		s.out[key] = out
		s.byPID[pid] = out
	}
	dup := out.started
	out.started = true
	relSent := out.relSent
	s.mu.Unlock()

	finish := func() {
		s.mu.Lock()
		delete(s.out, key)
		delete(s.byPID, out.pid)
		s.mu.Unlock()
	}

	wait := func(want byte) (byte, error) {
		for {
			select {
			case got := <-out.ch:
				if got == want || (want == mqtt.PUBREC && got == mqtt.PUBCOMP) {
					return got, nil
				}
				// Stale ack from a previous attempt; keep waiting.
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-dead:
				return 0, errMQTTOffline
			}
		}
	}

	if qos == 1 {
		if err := conn.WritePacket(&mqtt.Publish{
			Topic: topic, Payload: payload, QoS: 1, PacketID: out.pid, Dup: dup, Retain: retain,
		}, mqttWriteTimeout); err != nil {
			return err
		}
		inc(s.f.b.mqttDeliveries)
		if _, err := wait(mqtt.PUBACK); err != nil {
			return err
		}
		finish()
		return nil
	}

	// QoS 2. Never re-PUBLISH once PUBREC has been seen: the handshake
	// resumes at PUBREL ([MQTT-4.3.3]).
	if !relSent {
		if err := conn.WritePacket(&mqtt.Publish{
			Topic: topic, Payload: payload, QoS: 2, PacketID: out.pid, Dup: dup, Retain: retain,
		}, mqttWriteTimeout); err != nil {
			return err
		}
		inc(s.f.b.mqttDeliveries)
		got, err := wait(mqtt.PUBREC)
		if err != nil {
			return err
		}
		if got == mqtt.PUBCOMP {
			// Consumer raced the whole handshake; done.
			finish()
			return nil
		}
		s.mu.Lock()
		out.relSent = true
		s.mu.Unlock()
	}
	if err := conn.WritePacket(&mqtt.Ack{PacketType: mqtt.PUBREL, PacketID: out.pid}, mqttWriteTimeout); err != nil {
		return err
	}
	if _, err := wait(mqtt.PUBCOMP); err != nil {
		return err
	}
	finish()
	return nil
}

// routeAck hands a consumer acknowledgement to the in-flight delivery.
func (s *mqttSession) routeAck(a *mqtt.Ack) {
	s.mu.Lock()
	out := s.byPID[a.PacketID]
	s.mu.Unlock()
	if out == nil {
		return
	}
	select {
	case out.ch <- a.PacketType:
	default:
	}
}

// allocPID claims a free nonzero packet id (caller holds s.mu).
func (s *mqttSession) allocPID() (uint16, bool) {
	for i := 0; i < 65535; i++ {
		s.nextPID++
		if s.nextPID == 0 {
			s.nextPID = 1
		}
		if _, busy := s.byPID[s.nextPID]; !busy {
			return s.nextPID, true
		}
	}
	return 0, false
}
