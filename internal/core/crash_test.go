package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wse"
	"repro/internal/xmldom"
)

// The kill -9 chaos harness: the headline proof that the durable-ack
// contract holds under real process death, not just clean shutdown. A
// child process (this same test binary, re-executed with WSM_CRASH_CHILD
// set) boots a broker on a shared data dir and publishes a dense sequence,
// printing "ack <seq>" only after Publish returns — i.e. after the durable
// append. The parent SIGKILLs it mid-storm, restarts it, and repeats; the
// child's recovered head must never fall below the highest acked sequence.
// A final in-process broker then replays the whole log through a real
// subscription cursor and asserts exactly-once, in-order re-delivery of
// the dense prefix.

// TestMain re-routes child invocations before the test framework runs.
func TestMain(m *testing.M) {
	if os.Getenv("WSM_CRASH_CHILD") == "1" {
		runCrashChild()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCrashChild() {
	b, err := New(Config{
		Address:      "svc://wsm",
		SyncDelivery: true,
		DataDir:      os.Getenv("WSM_CRASH_DIR"),
		Durability:   "batch",
	})
	if err != nil {
		fmt.Printf("boot-error %v\n", err)
		os.Exit(1)
	}
	seq := b.LogHead()
	fmt.Printf("head %d\n", seq)
	for {
		seq++
		if err := b.Publish(grid, event("v"+strconv.FormatUint(seq, 10))); err != nil {
			fmt.Printf("publish-error %v\n", err)
			os.Exit(1)
		}
		// The ack line is the contract: printed only after the durable
		// append. The parent may SIGKILL us at any instant.
		fmt.Printf("ack %d\n", seq)
	}
}

func TestKill9AckedPublishesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness re-executes the test binary; skipped in -short")
	}
	cycles := 5
	if s := os.Getenv("WSM_CRASH_CYCLES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad WSM_CRASH_CYCLES %q", s)
		}
		cycles = n
	}
	dir := t.TempDir()
	var maxAck uint64

	for cycle := 0; cycle < cycles; cycle++ {
		// Vary the kill point so cycles die at different storm depths —
		// mid-batch, right after a rotation, immediately after boot.
		killAfter := 1 + (cycle*7)%23

		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "WSM_CRASH_CHILD=1", "WSM_CRASH_DIR="+dir)
		cmd.Stderr = io.Discard
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		acks := 0
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 2 {
				t.Fatalf("cycle %d: child said %q", cycle, sc.Text())
			}
			n, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("cycle %d: child said %q", cycle, sc.Text())
			}
			switch fields[0] {
			case "head":
				if n < maxAck {
					t.Fatalf("cycle %d: recovered head %d < highest ack %d — acknowledged publish lost",
						cycle, n, maxAck)
				}
			case "ack":
				if n <= maxAck {
					t.Fatalf("cycle %d: ack %d not past previous high water %d", cycle, n, maxAck)
				}
				maxAck = n
				acks++
			default:
				t.Fatalf("cycle %d: child failed: %q", cycle, sc.Text())
			}
			if acks >= killAfter {
				break
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("cycle %d: reading child: %v", cycle, err)
		}
		if acks < killAfter {
			_ = cmd.Wait()
			t.Fatalf("cycle %d: child exited after %d acks (wanted %d before kill)", cycle, acks, killAfter)
		}
		if err := cmd.Process.Kill(); err != nil { // SIGKILL — no shutdown path runs
			t.Fatalf("cycle %d: kill: %v", cycle, err)
		}
		_ = cmd.Wait()
	}

	// Final recovery in-process: replay the entire log through a real
	// subscription cursor and demand exactly-once, in-order delivery.
	f := logFixture(t, dir)
	defer f.broker.Shutdown()
	head := f.broker.LogHead()
	if head < maxAck {
		t.Fatalf("final head %d < highest ack %d — acknowledged publish lost", head, maxAck)
	}
	h := f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	n, next, err := f.broker.ReplayLog(h.ID, 0, 0)
	if err != nil || uint64(n) != head || next != head {
		t.Fatalf("ReplayLog = %d, %d, %v (head %d)", n, next, err, head)
	}
	got := f.wseSink.Received()
	if uint64(len(got)) != head {
		t.Fatalf("replayed %d deliveries, want %d", len(got), head)
	}
	for i, d := range got {
		want := "v" + strconv.Itoa(i+1)
		if v := d.Payload.ChildText(xmldom.N("urn:grid", "val")); v != want {
			t.Fatalf("delivery %d = %q, want %q — duplicate or out-of-order replay", i, v, want)
		}
	}
}
