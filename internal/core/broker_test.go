package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

type fixture struct {
	lb     *transport.Loopback
	broker *Broker
	clock  *clock
	// consumers speaking each spec family
	wseSink *wse.Sink
	wsnSink *wsnt.Consumer
}

func newFixture(t *testing.T, mutate ...func(*Config)) *fixture {
	t.Helper()
	lb := transport.NewLoopback()
	clk := &clock{t: time.Date(2006, 2, 1, 0, 0, 0, 0, time.UTC)}
	cfg := Config{
		Address:        "svc://wsm",
		ManagerAddress: "svc://wsm-subs",
		Client:         lb,
		Clock:          clk.now,
		SyncDelivery:   true, // deterministic for tests; async covered separately
	}
	for _, m := range mutate {
		m(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("svc://wsm", b.FrontHandler())
	lb.Register("svc://wsm-subs", b.ManagerHandler())
	f := &fixture{lb: lb, broker: b, clock: clk, wseSink: &wse.Sink{}, wsnSink: &wsnt.Consumer{}}
	lb.Register("svc://wse-sink", f.wseSink)
	lb.Register("svc://wsn-consumer", f.wsnSink)
	return f
}

var grid = topics.NewPath("urn:grid", "jobs")

func event(v string) *xmldom.Element {
	return xmldom.Elem("urn:grid", "Ev", xmldom.Elem("urn:grid", "val", v))
}

// publishWSE sends a raw WSE-style notification (topic in the extension
// header) to the broker front door.
func (f *fixture) publishWSE(t *testing.T, topic topics.Path, payload *xmldom.Element) {
	t.Helper()
	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200408, To: "svc://wsm", Action: "urn:test:publish"}
	h.Apply(env)
	if !topic.IsZero() {
		env.AddHeader(xmldom.Elem(wse.TopicHeaderName.Space, wse.TopicHeaderName.Local, topic.String()))
	}
	env.AddBody(payload)
	if err := f.lb.Send(context.Background(), "svc://wsm", env); err != nil {
		t.Fatalf("publishWSE: %v", err)
	}
}

// publishWSN sends a wrapped WSN Notify to the broker front door.
func (f *fixture) publishWSN(t *testing.T, topic topics.Path, payload *xmldom.Element) {
	t.Helper()
	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: "svc://wsm", Action: wsnt.V1_3.ActionNotify()}
	h.Apply(env)
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{
		{Topic: topic, Payload: payload},
	}))
	if err := f.lb.Send(context.Background(), "svc://wsm", env); err != nil {
		t.Fatalf("publishWSN: %v", err)
	}
}

func (f *fixture) subscribeWSE(t *testing.T, v wse.Version, req *wse.SubscribeRequest) *wse.Handle {
	t.Helper()
	if req.NotifyTo == nil {
		req.NotifyTo = wsa.NewEPR(v.WSAVersion(), "svc://wse-sink")
	}
	s := &wse.Subscriber{Client: f.lb, Version: v}
	h, err := s.Subscribe(context.Background(), "svc://wsm", req)
	if err != nil {
		t.Fatalf("wse subscribe: %v", err)
	}
	return h
}

func (f *fixture) subscribeWSN(t *testing.T, v wsnt.Version, req *wsnt.SubscribeRequest) *wsnt.Handle {
	t.Helper()
	if req.ConsumerReference == nil {
		req.ConsumerReference = wsa.NewEPR(v.WSAVersion(), "svc://wsn-consumer")
	}
	if v.RequiresTopic() && req.TopicExpression == "" {
		req.TopicExpression = "tns:jobs"
		req.TopicDialect = topics.DialectSimple
		req.TopicNS = map[string]string{"tns": "urn:grid"}
	}
	s := &wsnt.Subscriber{Client: f.lb, Version: v}
	h, err := s.Subscribe(context.Background(), "svc://wsm", req)
	if err != nil {
		t.Fatalf("wsn subscribe: %v", err)
	}
	return h
}

// --- The mediation matrix: every producer family × consumer family ---

func TestMediationMatrix(t *testing.T) {
	type pub func(*fixture, *testing.T)
	pubs := map[string]pub{
		"WSE-publisher": func(f *fixture, t *testing.T) { f.publishWSE(t, grid, event("x")) },
		"WSN-publisher": func(f *fixture, t *testing.T) { f.publishWSN(t, grid, event("x")) },
	}
	for pname, publish := range pubs {
		t.Run(pname+"->WSE-consumer", func(t *testing.T) {
			f := newFixture(t)
			f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
			publish(f, t)
			if f.wseSink.Count() != 1 {
				t.Fatalf("wse sink got %d", f.wseSink.Count())
			}
			got := f.wseSink.Received()[0]
			if got.Payload.ChildText(xmldom.N("urn:grid", "val")) != "x" {
				t.Error("payload corrupted in mediation")
			}
			// WSE consumers get the topic via the SOAP header (§V.4.6).
			if !got.Topic.Equal(grid) {
				t.Errorf("topic header = %v", got.Topic)
			}
		})
		t.Run(pname+"->WSN-consumer", func(t *testing.T) {
			f := newFixture(t)
			f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{})
			publish(f, t)
			if f.wsnSink.Count() != 1 {
				t.Fatalf("wsn consumer got %d", f.wsnSink.Count())
			}
			got := f.wsnSink.Received()[0]
			if !got.Wrapped {
				t.Error("WSN consumer should receive the wrapped Notify form")
			}
			if got.Payload.ChildText(xmldom.N("urn:grid", "val")) != "x" {
				t.Error("payload corrupted in mediation")
			}
			// WSN consumers get the topic in the body.
			if !got.Topic.Equal(grid) {
				t.Errorf("topic in Notify = %v", got.Topic)
			}
		})
	}
}

func TestMediationCountsCrossSpecDeliveries(t *testing.T) {
	f := newFixture(t)
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{})
	f.publishWSE(t, grid, event("a")) // WSE→WSN is one mediation
	f.publishWSN(t, grid, event("b")) // WSN→WSE is another
	st := f.broker.Stats()
	if st.Published != 2 || st.Delivered != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mediations != 2 {
		t.Errorf("mediations = %d, want 2", st.Mediations)
	}
}

func TestResponseFollowsRequestSpec(t *testing.T) {
	// §VII: "Response messages follow the same specifications as request
	// messages." Subscribe in all four versions; each response must carry
	// the requester's namespace.
	f := newFixture(t)
	for _, v := range []wse.Version{wse.V200401, wse.V200408} {
		h := f.subscribeWSE(t, v, &wse.SubscribeRequest{})
		if h.ID == "" {
			t.Errorf("%v: no id", v)
		}
		if h.Manager.Version != v.WSAVersion() {
			t.Errorf("%v: manager EPR WSA version = %v", v, h.Manager.Version)
		}
	}
	for _, v := range []wsnt.Version{wsnt.V1_0, wsnt.V1_3} {
		h := f.subscribeWSN(t, v, &wsnt.SubscribeRequest{})
		if h.ID == "" {
			t.Errorf("%v: no id", v)
		}
		if h.SubscriptionReference.Version != v.WSAVersion() {
			t.Errorf("%v: reference WSA version = %v", v, h.SubscriptionReference.Version)
		}
	}
	if f.broker.SubscriptionCount() != 4 {
		t.Errorf("subscriptions = %d", f.broker.SubscriptionCount())
	}
}

func TestManagementPerSpec(t *testing.T) {
	f := newFixture(t)
	// WSE 8/2004 lifecycle against the broker manager.
	ws := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	h := f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{Expires: "PT10M"})
	if _, err := ws.Renew(context.Background(), h, "PT1H"); err != nil {
		t.Fatalf("wse renew: %v", err)
	}
	if _, err := ws.GetStatus(context.Background(), h); err != nil {
		t.Fatalf("wse getstatus: %v", err)
	}
	if err := ws.Unsubscribe(context.Background(), h); err != nil {
		t.Fatalf("wse unsubscribe: %v", err)
	}
	// WSN 1.3 native lifecycle.
	ns := &wsnt.Subscriber{Client: f.lb, Version: wsnt.V1_3}
	h3 := f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{})
	if _, err := ns.Renew(context.Background(), h3, "PT1H"); err != nil {
		t.Fatalf("wsn renew: %v", err)
	}
	if err := ns.Pause(context.Background(), h3); err != nil {
		t.Fatalf("wsn pause: %v", err)
	}
	if err := ns.Resume(context.Background(), h3); err != nil {
		t.Fatalf("wsn resume: %v", err)
	}
	if err := ns.Unsubscribe(context.Background(), h3); err != nil {
		t.Fatalf("wsn unsubscribe: %v", err)
	}
	// WSN 1.0 WSRF lifecycle.
	ns0 := &wsnt.Subscriber{Client: f.lb, Version: wsnt.V1_0}
	h0 := f.subscribeWSN(t, wsnt.V1_0, &wsnt.SubscribeRequest{})
	doc, err := ns0.Status(context.Background(), h0)
	if err != nil {
		t.Fatalf("wsn 1.0 status: %v", err)
	}
	if doc.ChildText(xmldom.N(wsnt.NS1_0, "Status")) != "Active" {
		t.Error("1.0 status doc wrong")
	}
	if _, err := ns0.Renew(context.Background(), h0, "2006-02-01T06:00:00Z"); err != nil {
		t.Fatalf("wsn 1.0 renew-via-wsrf: %v", err)
	}
	if err := ns0.Unsubscribe(context.Background(), h0); err != nil {
		t.Fatalf("wsn 1.0 destroy-via-wsrf: %v", err)
	}
	if f.broker.SubscriptionCount() != 0 {
		t.Errorf("subscriptions left: %d", f.broker.SubscriptionCount())
	}
}

func TestVersionRulesEnforcedAtBroker(t *testing.T) {
	f := newFixture(t)
	// WSN 1.0 + duration expiry faults.
	s0 := &wsnt.Subscriber{Client: f.lb, Version: wsnt.V1_0}
	_, err := s0.Subscribe(context.Background(), "svc://wsm", &wsnt.SubscribeRequest{
		ConsumerReference:      wsa.NewEPR(wsa.V200303, "svc://wsn-consumer"),
		TopicExpression:        "tns:jobs",
		TopicDialect:           topics.DialectSimple,
		TopicNS:                map[string]string{"tns": "urn:grid"},
		InitialTerminationTime: "PT1H",
	})
	var fault *soap.Fault
	if !errors.As(err, &fault) || fault.Subcode.Local != "UnacceptableInitialTerminationTimeFault" {
		t.Errorf("1.0 duration err = %v", err)
	}
	// WSN 1.0 without topic faults.
	_, err = s0.Subscribe(context.Background(), "svc://wsm", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200303, "svc://wsn-consumer"),
	})
	if !errors.As(err, &fault) {
		t.Errorf("1.0 topicless err = %v", err)
	}
	// WSN 1.0 native Renew faults (WSRF only).
	h := f.subscribeWSN(t, wsnt.V1_0, &wsnt.SubscribeRequest{})
	env := soap.New(soap.V11)
	hd := wsa.DestinationEPR(h.SubscriptionReference, wsnt.V1_0.ActionRenew(), "")
	hd.Apply(env)
	env.AddBody(xmldom.Elem(wsnt.NS1_0, "Renew"))
	_, err = f.lb.Call(context.Background(), h.SubscriptionReference.Address, env)
	if !errors.As(err, &fault) || fault.Subcode.Local != "UnsupportedOperationFault" {
		t.Errorf("1.0 native renew = %v", err)
	}
	// An unknown delivery mode is rejected.
	s8 := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	_, err = s8.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
		Mode:     "urn:bogus:mode",
	})
	if !errors.As(err, &fault) || fault.Subcode.Local != "DeliveryModeRequestedUnavailable" {
		t.Errorf("bogus mode err = %v", err)
	}
}

func TestWSEWrappedModeThroughBroker(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.WrapBatchSize = 3 })
	s := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	if _, err := s.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
		Mode:     wse.V200408.DeliveryModeWrap(),
	}); err != nil {
		t.Fatal(err)
	}
	// Cross-spec: WSN publishes batch up for the WSE wrapped subscriber.
	for i := 0; i < 7; i++ {
		f.publishWSN(t, grid, event("w"))
	}
	if got := f.wseSink.Count(); got != 6 {
		t.Fatalf("batched deliveries = %d, want 6 (two full batches)", got)
	}
	for _, n := range f.wseSink.Received() {
		if !n.Wrapped {
			t.Error("delivery not flagged wrapped")
		}
	}
	f.broker.Flush()
	if got := f.wseSink.Count(); got != 7 {
		t.Errorf("after flush = %d, want 7", got)
	}
	if st := f.broker.Stats(); st.Delivered != 7 {
		t.Errorf("delivered stat = %d", st.Delivered)
	}
}

func TestContentFilterMediation(t *testing.T) {
	// A WSE subscriber's XPath filter applies to WSN-published messages.
	f := newFixture(t)
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{
		FilterExpr: "//g:val = 'keep'",
		FilterNS:   map[string]string{"g": "urn:grid"},
	})
	f.publishWSN(t, grid, event("keep"))
	f.publishWSN(t, grid, event("drop"))
	if f.wseSink.Count() != 1 {
		t.Fatalf("filtered mediation delivered %d", f.wseSink.Count())
	}
}

func TestTopicFilterMediation(t *testing.T) {
	// A WSN topic subscription filters WSE-published raw messages whose
	// topic arrives in the extension header.
	f := newFixture(t)
	f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{
		TopicExpression: "tns:jobs",
		TopicDialect:    topics.DialectSimple,
		TopicNS:         map[string]string{"tns": "urn:grid"},
	})
	f.publishWSE(t, grid, event("yes"))
	f.publishWSE(t, topics.NewPath("urn:grid", "weather"), event("no"))
	f.publishWSE(t, topics.Path{}, event("topicless"))
	if f.wsnSink.Count() != 1 {
		t.Fatalf("topic mediation delivered %d", f.wsnSink.Count())
	}
}

func TestWSEPullThroughBroker(t *testing.T) {
	f := newFixture(t)
	s := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	h, err := s.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
		Mode:     wse.V200408.DeliveryModePull(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.publishWSN(t, grid, event("a")) // cross-spec into a pull queue
	f.publishWSE(t, grid, event("b"))
	if f.wseSink.Count() != 0 {
		t.Error("pull subscription pushed")
	}
	msgs, err := s.Pull(context.Background(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("pulled %d", len(msgs))
	}
}

func TestSubscriptionEndMediation(t *testing.T) {
	f := newFixture(t)
	// WSE subscriber with EndTo gets SubscriptionEnd on shutdown.
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{
		EndTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
	})
	// WSN 1.0 consumer gets a WSRF TerminationNotification.
	f.subscribeWSN(t, wsnt.V1_0, &wsnt.SubscribeRequest{})
	// WSN 1.3 consumer gets nothing.
	f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://wsn13-consumer"),
	})
	c13 := &wsnt.Consumer{}
	f.lb.Register("svc://wsn13-consumer", c13)

	f.broker.Shutdown()
	if len(f.wseSink.Ends()) != 1 {
		t.Errorf("wse ends = %d", len(f.wseSink.Ends()))
	}
	if len(f.wsnSink.Terminations()) != 1 {
		t.Errorf("wsn 1.0 terminations = %d", len(f.wsnSink.Terminations()))
	}
	if len(c13.Terminations()) != 0 || c13.Count() != 0 {
		t.Error("wsn 1.3 should end silently")
	}
}

func TestGetCurrentMessageAtBroker(t *testing.T) {
	f := newFixture(t)
	f.publishWSE(t, grid, event("latest"))
	s := &wsnt.Subscriber{Client: f.lb, Version: wsnt.V1_3}
	got, err := s.GetCurrentMessage(context.Background(), "svc://wsm",
		"tns:jobs", topics.DialectConcrete, map[string]string{"tns": "urn:grid"})
	if err != nil {
		t.Fatal(err)
	}
	if got.ChildText(xmldom.N("urn:grid", "val")) != "latest" {
		t.Errorf("current = %s", xmldom.Marshal(got))
	}
}

func TestExpiryScavengeAndFailureDrop(t *testing.T) {
	f := newFixture(t)
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{Expires: "PT5M"})
	f.clock.advance(6 * time.Minute)
	if n := f.broker.Scavenge(); n != 1 {
		t.Fatalf("scavenged %d", n)
	}
	// Dead consumer dropped after FailureLimit.
	s := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	if _, err := s.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://dead"),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f.publishWSE(t, grid, event("x"))
	}
	if f.broker.SubscriptionCount() != 0 {
		t.Errorf("dead subscriber survived: %d", f.broker.SubscriptionCount())
	}
	if f.broker.Stats().Failures < 3 {
		t.Errorf("failures = %d", f.broker.Stats().Failures)
	}
}

func TestAsyncDeliveryPipeline(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.SyncDelivery = false })
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{})
	for i := 0; i < 50; i++ {
		f.publishWSE(t, grid, event("n"))
	}
	f.broker.Flush()
	if f.wseSink.Count() != 50 || f.wsnSink.Count() != 50 {
		t.Errorf("async delivery: wse=%d wsn=%d", f.wseSink.Count(), f.wsnSink.Count())
	}
	st := f.broker.Stats()
	if st.Delivered != 100 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestManagementAtFrontDoorWhenShared(t *testing.T) {
	// Without a separate manager address, the front door manages too.
	lb := transport.NewLoopback()
	b, err := New(Config{Address: "svc://one", Client: lb, SyncDelivery: true})
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("svc://one", b.FrontHandler())
	lb.Register("svc://sink", &wse.Sink{})
	s := &wse.Subscriber{Client: lb, Version: wse.V200408}
	h, err := s.Subscribe(context.Background(), "svc://one", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://sink"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Manager.Address != "svc://one" {
		t.Errorf("manager = %q", h.Manager.Address)
	}
	if err := s.Unsubscribe(context.Background(), h); err != nil {
		t.Fatalf("unsubscribe at front door: %v", err)
	}
	// With a separate manager, the front door refuses management.
	f := newFixture(t)
	h2 := f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	h2.Manager = wsa.NewEPR(wsa.V200408, "svc://wsm") // wrong on purpose
	s2 := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	if err := s2.Unsubscribe(context.Background(), h2); err == nil {
		t.Error("front door accepted management despite separate manager")
	}
}

func TestWSE01SubscriberThroughBroker(t *testing.T) {
	f := newFixture(t)
	s := &wse.Subscriber{Client: f.lb, Version: wse.V200401}
	h, err := s.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200303, "svc://wse-sink"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Manager defaults to the subscribe target; point it at the broker's
	// manager endpoint, where 1/2004 body-ID management is accepted.
	h.Manager = wsa.NewEPR(wsa.V200303, "svc://wsm-subs")
	f.publishWSN(t, grid, event("old-spec"))
	if f.wseSink.Count() != 1 {
		t.Fatalf("1/2004 sink got %d", f.wseSink.Count())
	}
	if _, err := s.Renew(context.Background(), h, "PT30M"); err != nil {
		t.Fatalf("1/2004 renew: %v", err)
	}
	if err := s.Unsubscribe(context.Background(), h); err != nil {
		t.Fatalf("1/2004 unsubscribe: %v", err)
	}
}
