// Package core implements WS-Messenger, the paper's contribution (§VII):
// a message broker that supports WS-Eventing and WS-Notification
// simultaneously and mediates between them.
//
// One front door accepts subscribe requests and published notifications in
// either specification (at any of the four versions this repository
// implements). The broker auto-detects the specification of each incoming
// SOAP message, answers in the same specification, and — the crux — when
// delivering, renders every notification in the specification *the
// subscriber used to subscribe*, so "an event producer can publish event
// notifications using either the WS-Eventing specification or the
// WS-Notification specification [and] it makes no difference to the event
// consumers" (§VII).
//
// Accepted notifications flow through a pluggable backend
// (repro/internal/backend), so existing publish/subscribe systems can be
// wrapped behind the WS front doors. Fan-out and delivery run through the
// shared dispatch engine (repro/internal/dispatch): a sharded subscriber
// registry with a topic index, per-subscriber bounded queues drained by a
// shared worker pool, and broker-side pull buffers — keeping one slow
// consumer from stalling the rest. This layer keeps only what is
// WS-specific: mediation, SOAP rendering and the lease store.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/cloudevents"
	"repro/internal/destwriter"
	"repro/internal/dispatch"
	"repro/internal/eventlog"
	"repro/internal/filter"
	"repro/internal/mediation"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/sublease"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/wsrf"
	"repro/internal/xmldom"
	"repro/internal/xsdt"
)

// Config configures a WS-Messenger broker.
type Config struct {
	// Address is the broker front door (subscribes, publishes and, unless
	// ManagerAddress is set, subscription management).
	Address string
	// ManagerAddress optionally separates subscription management.
	ManagerAddress string
	// Client delivers notifications and end notices.
	Client transport.Client
	// Clock is injectable for tests.
	Clock func() time.Time
	// Backend is the underlying pub/sub fabric; in-memory when nil.
	Backend backend.Backend
	// DefaultExpiry / MaxExpiry govern granted subscription lifetimes.
	DefaultExpiry time.Duration
	MaxExpiry     time.Duration
	// Properties is the broker's producer-properties document.
	Properties *xmldom.Element
	// SyncDelivery delivers inline on the publisher's call instead of
	// through per-subscriber queues — deterministic for tests, and the
	// baseline arm of the delivery-pipeline ablation bench.
	SyncDelivery bool
	// DisableRenderCache turns off the per-publish render-template cache,
	// so every delivery renders and serialises its envelope from scratch.
	// The raw-bytes transport path and pooled buffers stay active, so this
	// isolates exactly the template cache — the ablation arm of the
	// render-once fan-out bench.
	DisableRenderCache bool
	// QueueDepth bounds each subscriber's delivery queue (default 256);
	// overflow drops the newest message and counts it.
	QueueDepth int
	// BatchMax enables per-destination delivery batching when > 1: queued
	// subscribers hand up to BatchMax messages per delivery cycle to a
	// per-destination writer pool (one bounded-queue goroutine per active
	// host, reaped when idle), which coalesces frame-equal WSN 1.3 wrapped
	// deliveries into one multi-NotificationMessage envelope per round
	// trip. Requires a Client with a raw-bytes path (transport.BytesClient)
	// — without one the knob is ignored. Zero disables (the default).
	BatchMax int
	// BatchWindow is how long a destination writer waits after its first
	// dequeue for more batches to coalesce (zero = purely opportunistic).
	BatchWindow time.Duration
	// DestQueueDepth bounds each destination host's writer queue (default
	// 1024). A full queue blocks the delivery worker until the retry
	// policy's per-attempt timeout converts the wait into that
	// subscriber's retry/breaker/DLQ path — bounded memory per slow host.
	DestQueueDepth int
	// MaxInflightPerHost caps concurrent in-flight sends per destination
	// host: 1 (or zero, the default) keeps the serial writer, higher
	// values let the writer pipeline flush rounds through up to that many
	// concurrent senders. Clamped to MaxConnsPerHost.
	MaxInflightPerHost int
	// AdaptiveWindow governs the per-host in-flight window with an AIMD
	// controller inside [1, MaxInflightPerHost] instead of pinning it at
	// the maximum: additive increase on sustained success, halve on a
	// send failure.
	AdaptiveWindow bool
	// MaxConnsPerHost is the pooled transport's per-host connection
	// budget (default transport.DefaultMaxConnsPerHost). The destination
	// writers never hold more in-flight sends to one host than this, so
	// connection accounting stays exact.
	MaxConnsPerHost int
	// MaxDispatchWorkers caps the dispatch engine's dynamically scaled
	// delivery worker pool (default: the engine's own cap, 8×GOMAXPROCS
	// and at least 32). Delivery workers spend their lives blocked on the
	// wire, not the CPU, so deployments fanning out to many slow
	// destinations raise this well past core count to keep every
	// destination's in-flight window fed.
	MaxDispatchWorkers int
	// PullQueueCap bounds WSE pull queues (default 1024).
	PullQueueCap int
	// WrapBatchSize is the WSE wrapped-mode batch size (default 10).
	WrapBatchSize int
	// FailureLimit drops a subscriber after this many consecutive
	// delivery failures (default 3). Ignored for subscriptions governed
	// by a circuit Breaker, which pauses instead and evicts only after
	// BreakerPolicy.MaxTrips.
	FailureLimit int
	// Retry is the per-subscription delivery retry policy (nil = one
	// attempt, no retry). The policy's per-attempt Timeout rides the
	// delivery context into the transport client.
	Retry *dispatch.RetryPolicy
	// Breaker attaches a circuit breaker to every subscription: failing
	// consumers are paused (their messages keep buffering) and probed
	// after a cool-down instead of being evicted outright.
	Breaker *dispatch.BreakerPolicy
	// DeadLetterCap bounds the broker's dead-letter queue, which captures
	// notifications that exhaust their retries so operators can inspect
	// and replay them (default 1024; negative disables — terminal
	// failures are then counted and discarded, the pre-DLQ behaviour).
	DeadLetterCap int
	// DataDir enables the durable append-only event log: every accepted
	// publish is assigned a monotone LogPos and written (per Durability)
	// before the publish is acknowledged, and catch-up consumers — pull
	// points, DLQ replay, recovering federation peers — re-sync from it by
	// cursor. Empty keeps the pre-log behaviour unless Durability is set,
	// which opens a memory-only log (cursors without persistence).
	DataDir string
	// Durability selects the log's fsync policy: "batch"/"fsync" (group
	// commit — Append returns only after fsync; the default when DataDir
	// is set), "async" (background flush every LogFlushInterval-ish tick)
	// or "off" (OS page cache only).
	Durability string
	// LogSegmentBytes / LogRetainSegments tune log rotation and
	// retention-based compaction (defaults 4 MiB / 8 sealed segments).
	LogSegmentBytes   int64
	LogRetainSegments int
	// BrokerID is the broker's federation identity. When set, every locally
	// published notification is stamped with a wsmf:Relay header naming this
	// broker as its origin, so peer brokers can suppress loops and dedup.
	// Empty disables relay stamping — the single-broker deployments every
	// prior layer was built for pay nothing.
	BrokerID string
	// Obs instruments the broker: lifecycle counters and gauges are bound
	// to the dispatch engine, per-stage latency histograms and sampled
	// message traces ride the delivery path, and the broker adds
	// per-operation and mediation-render timings. One recorder serves one
	// broker (the engine binding panics on reuse); nil disables
	// instrumentation at the cost of a nil check.
	Obs *obs.Recorder
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ManagerAddress == "" {
		out.ManagerAddress = out.Address
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	if out.Backend == nil {
		out.Backend = backend.NewMemory()
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.PullQueueCap <= 0 {
		out.PullQueueCap = 1024
	}
	if out.WrapBatchSize <= 0 {
		out.WrapBatchSize = 10
	}
	if out.FailureLimit <= 0 {
		out.FailureLimit = 3
	}
	if out.DeadLetterCap == 0 {
		out.DeadLetterCap = 1024
	}
	if out.DeadLetterCap < 0 {
		out.DeadLetterCap = 0
	}
	return out
}

// Stats are the broker's monotonic counters.
type Stats struct {
	Published    uint64 // notifications accepted from publishers
	Delivered    uint64 // notifications handed to the transport successfully
	Dropped      uint64 // queue-overflow drops
	Failures     uint64 // notifications whose delivery terminally failed (dead-lettered or not)
	DeadLettered uint64 // terminally failed notifications captured for replay
	Mediations   uint64 // deliveries whose outgoing spec differed from the incoming one
}

// subState is the broker-side record of one subscription: the canonical
// subscribe, its compiled filter and the delivery plan. Queues, failure
// counts and pull buffers live in the dispatch engine.
type subState struct {
	canon *mediation.Subscribe
	flt   filter.All
	plan  mediation.DeliveryPlan
	// local, when set, delivers in-process instead of over a transport —
	// the WebSocket front door's connection-bound subscriptions. Local
	// subscriptions are never persisted.
	local func(ctx context.Context, event []byte) error
	// localRaw, when set, delivers the un-rendered notification in-process
	// — the MQTT front door's session-bound subscriptions, which do their
	// own wire framing per QoS level. Like local, never persisted.
	localRaw func(ctx context.Context, n mediation.Notification) error
	// pauseBuffer selects buffering pause semantics for this subscription
	// (persistent MQTT sessions queue while the client is offline; the
	// WS-Notification default skips paused subscribers).
	pauseBuffer bool
	// failureLimit, when nonzero, overrides the broker-wide consecutive-
	// failure cap (persistent MQTT sessions pass -1: the session deadline,
	// not delivery failures, decides eviction).
	failureLimit int
}

// fanMsg is the dispatch payload: the notification body plus the
// publishing spec family (for the mediation counter), the federation relay
// provenance (nil outside federated deployments) and, when the broker
// delivers over a raw-bytes transport, the publish's shared render-template
// cache. The relay is constant across one publish's whole fan-out, so it
// bakes into the shared templates without splitting render keys.
type fanMsg struct {
	payload *xmldom.Element
	origin  string
	relay   *mediation.Relay
	rs      *renderSet
}

// renderSet is one publish's render-template cache: subscribers whose
// delivery plans share a mediation.RenderKey share one rendered, serialised
// envelope and differ only by spliced fields. It lives exactly as long as
// the dispatch messages that reference it, so there is no invalidation —
// the next publish starts empty.
type renderSet struct {
	mu sync.Mutex
	m  map[mediation.RenderKey]*mediation.Template
}

func newRenderSet() *renderSet {
	return &renderSet{m: map[mediation.RenderKey]*mediation.Template{}}
}

// template returns the plan's template, building and memoising it on first
// use. A plan whose envelope cannot be spliced unambiguously (sentinel
// collision in the payload) memoises nil, so the build is attempted once
// and every delivery for that key falls back to a fresh render.
func (rs *renderSet) template(n mediation.Notification, plan mediation.DeliveryPlan) (tpl *mediation.Template, hit bool) {
	key := mediation.KeyFor(plan)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if tpl, hit = rs.m[key]; hit {
		return tpl, true
	}
	tpl, err := mediation.NewTemplate(n, plan)
	if err != nil {
		tpl = nil
	}
	rs.m[key] = tpl
	return tpl, false
}

// sendBufPool recycles the buffers fan-out serialises envelopes into; one
// buffer is in flight per concurrent send. Buffers that grew beyond
// maxPooledSendBuf are dropped so a single giant payload cannot pin memory.
var sendBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const maxPooledSendBuf = 1 << 20

func getSendBuf() *[]byte { return sendBufPool.Get().(*[]byte) }

func putSendBuf(b *[]byte) {
	if cap(*b) > maxPooledSendBuf {
		return
	}
	sendBufPool.Put(b)
}

// Broker is the WS-Messenger broker.
type Broker struct {
	cfg    Config
	store  *sublease.Store
	engine *dispatch.Engine

	mu      sync.Mutex
	current map[string]*xmldom.Element // last message per topic
	space   *topics.Space              // topics observed, advertised as a TopicSet

	msgID      atomic.Uint64
	published  atomic.Uint64
	mediations atomic.Uint64

	cancelBackend func()
	wsrfSvc       *wsrf.Service

	// log is the durable event log (nil when the broker runs without one).
	log *eventlog.Log

	// rawClient is Config.Client's raw-bytes send path, when it has one.
	// Non-nil enables pooled serialisation buffers and (unless disabled)
	// the render-template cache.
	rawClient transport.BytesClient

	// ceClient is Config.Client's raw HTTP path for non-SOAP bodies, when
	// it has one. Nil means the broker cannot deliver CloudEvents over
	// HTTP and /ce rejects subscription requests up front.
	ceClient transport.RawSender

	// wsConns tracks live WebSocket front-door connections.
	wsConns atomic.Int64

	// CloudEvents / WebSocket front-door counters (nil without Obs).
	cePublished    *obs.Counter
	ceDeliveries   *obs.Counter
	ceErrors       *obs.Counter
	wsConnsTotal   *obs.Counter
	wsEvents       *obs.Counter
	wsPingTimeouts *obs.Counter

	// mqtt is the MQTT front door's session registry (nil until ServeMQTT
	// first runs; counters are nil without Obs).
	mqtt             *mqttFront
	mqttConns        atomic.Int64
	mqttConnsTotal   *obs.Counter
	mqttPublished    *obs.Counter
	mqttDeliveries   *obs.Counter
	mqttDropped      *obs.Counter
	mqttDupDrops     *obs.Counter
	mqttKeepaliveTOs *obs.Counter

	// dest is the per-destination writer pool (nil unless Config.BatchMax
	// > 1 and the client has a raw-bytes path): queued deliveries are
	// grouped by destination host and coalesced into multi-message
	// envelopes where the subscriber's dialect allows.
	dest *destwriter.Pool
	// destBatchSize observes entries per wire send (nil without Obs).
	destBatchSize *obs.SizeHistogram

	// renderSec times mediation rendering (nil when Config.Obs is nil).
	renderSec *obs.Histogram
	// cacheHits/cacheMisses count fan-out deliveries served by stamping a
	// cached template vs. requiring a render (nil when Config.Obs is nil).
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

// New builds a broker and wires it to its backend.
func New(cfg Config) (*Broker, error) {
	b := &Broker{cfg: cfg.withDefaults(), current: map[string]*xmldom.Element{}, space: topics.NewSpace()}
	b.mqtt = newMQTTFront(b)
	if err := b.openLog(); err != nil {
		return nil, err
	}
	var dlqFetch func(uint64) (dispatch.Message, bool)
	if b.log != nil {
		dlqFetch = b.fetchLogged
	}
	b.engine = dispatch.New(dispatch.Config{
		QueueCap:     b.cfg.QueueDepth,
		MaxWorkers:   b.cfg.MaxDispatchWorkers,
		FailureLimit: b.cfg.FailureLimit,
		Clock:        b.cfg.Clock,
		Retry:        b.cfg.Retry,
		Breaker:      b.cfg.Breaker,
		DLQCap:       b.cfg.DeadLetterCap,
		DLQOverflow:  dispatch.DropOldest, // keep the newest failure evidence
		DLQFetch:     dlqFetch,
		Obs:          b.cfg.Obs,
	})
	if rec := b.cfg.Obs; rec != nil {
		b.renderSec = rec.Registry().Histogram("wsm_mediation_render_seconds",
			"Time spent rendering notifications into the subscriber's spec.",
			nil, obs.L("component", rec.Component()))
		b.cacheHits = rec.Registry().Counter("wsm_render_cache_hits_total",
			"Fan-out deliveries served by stamping a cached render template.",
			obs.L("component", rec.Component()))
		b.cacheMisses = rec.Registry().Counter("wsm_render_cache_misses_total",
			"Fan-out deliveries that needed a fresh mediation render: first delivery per render key, uncacheable subscriber EPRs, and splice fallbacks.",
			obs.L("component", rec.Component()))
	}
	if b.cfg.Client != nil {
		if bc, ok := b.cfg.Client.(transport.BytesClient); ok {
			b.rawClient = bc
		}
		if rs, ok := b.cfg.Client.(transport.RawSender); ok {
			b.ceClient = rs
		}
	}
	if rec := b.cfg.Obs; rec != nil {
		reg := rec.Registry()
		comp := obs.L("component", rec.Component())
		b.cePublished = reg.Counter("wsm_ce_published_total",
			"CloudEvents accepted through the /ce and /ws front doors.", comp)
		b.ceDeliveries = reg.Counter("wsm_ce_deliveries_total",
			"CloudEvents wire deliveries (one batched send may carry many events).", comp)
		b.ceErrors = reg.Counter("wsm_ce_errors_total",
			"CloudEvents wire deliveries that failed.", comp)
		reg.GaugeFunc("wsm_ce_subscriptions",
			"Live CloudEvents HTTP subscriptions (WebSocket- and MQTT-bound ones excluded).",
			func() float64 {
				if b.store == nil {
					return 0 // scraped before New finished wiring
				}
				n := 0
				for _, sn := range b.store.Active() {
					if st, ok := sn.Data.(*subState); ok &&
						st.canon.Origin.Family == mediation.FamilyCE &&
						st.local == nil && st.localRaw == nil {
						n++
					}
				}
				return float64(n)
			}, comp)
		reg.GaugeFunc("wsm_ws_connections",
			"Live WebSocket front-door connections.",
			func() float64 { return float64(b.wsConns.Load()) }, comp)
		b.wsConnsTotal = reg.Counter("wsm_ws_connections_total",
			"WebSocket front-door connections ever accepted.", comp)
		b.wsEvents = reg.Counter("wsm_ws_events_total",
			"Frames pushed to WebSocket consumers (events and session replies).", comp)
		b.wsPingTimeouts = reg.Counter("wsm_ws_ping_timeouts_total",
			"WebSocket connections declared dead after unanswered pings.", comp)
		reg.GaugeFunc("wsm_mqtt_connections",
			"Live MQTT front-door connections.",
			func() float64 { return float64(b.mqttConns.Load()) }, comp)
		reg.GaugeFunc("wsm_mqtt_subscriptions",
			"Live MQTT session-bound subscriptions (all QoS levels).",
			func() float64 {
				if b.store == nil {
					return 0 // scraped before New finished wiring
				}
				n := 0
				for _, sn := range b.store.Active() {
					if st, ok := sn.Data.(*subState); ok && st.localRaw != nil {
						n++
					}
				}
				return float64(n)
			}, comp)
		b.mqttConnsTotal = reg.Counter("wsm_mqtt_connections_total",
			"MQTT front-door connections ever accepted.", comp)
		b.mqttPublished = reg.Counter("wsm_mqtt_published_total",
			"Application messages accepted from MQTT publishers (after QoS 2 dedup).", comp)
		b.mqttDeliveries = reg.Counter("wsm_mqtt_deliveries_total",
			"PUBLISH frames written to MQTT consumers (QoS 1/2 retransmits included).", comp)
		b.mqttDropped = reg.Counter("wsm_mqtt_dropped_total",
			"QoS 0 deliveries dropped at the session edge (slow or dead consumer).", comp)
		b.mqttDupDrops = reg.Counter("wsm_mqtt_dup_drops_total",
			"Inbound QoS 2 PUBLISH duplicates suppressed by the exactly-once dedup set.", comp)
		b.mqttKeepaliveTOs = reg.Counter("wsm_mqtt_keepalive_timeouts_total",
			"MQTT connections closed after missing 1.5x the keep-alive interval.", comp)
	}
	if b.cfg.BatchMax > 1 && b.rawClient != nil {
		connCap := b.cfg.MaxConnsPerHost
		if connCap <= 0 {
			connCap = transport.DefaultMaxConnsPerHost
		}
		b.dest = destwriter.NewPool(destwriter.Config{
			Send: func(ctx context.Context, addr, contentType string, body []byte) error {
				if b.ceClient != nil && strings.HasPrefix(contentType, "application/cloudevents") {
					// CloudEvents bodies must not ride the SOAP path: the
					// consumer's 2xx receipt is JSON, not an envelope.
					err := b.ceClient.SendRaw(ctx, addr, contentType, nil, body)
					if err != nil {
						inc(b.ceErrors)
					} else {
						inc(b.ceDeliveries)
					}
					return err
				}
				return b.rawClient.SendBytes(ctx, addr, contentType, body)
			},
			NextMessageID:      b.nextMessageID,
			BatchMax:           b.cfg.BatchMax,
			BatchWindow:        b.cfg.BatchWindow,
			QueueDepth:         b.cfg.DestQueueDepth,
			MaxInflightPerHost: b.cfg.MaxInflightPerHost,
			AdaptiveWindow:     b.cfg.AdaptiveWindow,
			ConnCap:            connCap,
			OnBatchSize: func(n int) {
				if b.destBatchSize != nil {
					b.destBatchSize.Observe(uint64(n))
				}
			},
		})
		if rec := b.cfg.Obs; rec != nil {
			reg := rec.Registry()
			comp := obs.L("component", rec.Component())
			b.destBatchSize = reg.SizeHistogram("wsm_dest_batch_size",
				"Subscriber deliveries carried per wire send (1 = no coalescing).",
				nil, comp)
			reg.GaugeFunc("wsm_dest_active_writers",
				"Per-destination writer goroutines currently alive.",
				func() float64 { return float64(b.dest.ActiveWriters()) }, comp)
			reg.GaugeFunc("wsm_dest_queue_depth",
				"Batches queued across all destination writers, not yet flushed.",
				func() float64 { return float64(b.dest.QueueDepth()) }, comp)
			reg.GaugeFunc("wsm_dest_coalesce_ratio",
				"Mean subscriber deliveries per wire send since start (0 before the first send).",
				b.dest.CoalesceRatio, comp)
			reg.CounterFunc("wsm_dest_envelopes_total",
				"Coalesced multi-NotificationMessage envelopes put on the wire.",
				b.dest.Envelopes, comp)
			reg.CounterFunc("wsm_dest_entries_total",
				"Subscriber deliveries carried inside coalesced envelopes.",
				b.dest.CoalescedEntries, comp)
			reg.CounterFunc("wsm_dest_raw_sends_total",
				"Envelopes sent individually because their dialect cannot coalesce.",
				b.dest.RawSends, comp)
			reg.CounterFunc("wsm_dest_canceled_total",
				"Batches suppressed because their subscription ended before the flush.",
				b.dest.Canceled, comp)
			reg.CounterFunc("wsm_dest_send_errors_total",
				"Destination writer wire sends that failed.",
				b.dest.SendErrors, comp)
			reg.GaugeFunc("wsm_dest_inflight",
				"Pipelined sends currently in flight across destination hosts.",
				func() float64 { return float64(b.dest.Inflight()) }, comp)
			reg.GaugeFunc("wsm_dest_window",
				"Widest current per-host in-flight window (0 with no live writers).",
				func() float64 { return float64(b.dest.Window()) }, comp)
			reg.CounterFunc("wsm_dest_window_decreases_total",
				"AIMD multiplicative decreases of a per-host in-flight window.",
				b.dest.WindowDecreases, comp)
		}
	}
	b.store = sublease.NewStore(
		sublease.WithClock(b.cfg.Clock),
		sublease.WithIDPrefix("wsm"),
		sublease.WithEndObserver(b.onLeaseEnd),
	)
	b.wsrfSvc = &wsrf.Service{
		Provider:    brokerResources{b},
		Clock:       b.cfg.Clock,
		IDExtractor: b.subscriptionIDFromHeaders,
	}
	cancel, err := b.cfg.Backend.Subscribe(b.fanOut)
	if err != nil {
		_ = b.CloseLog()
		return nil, fmt.Errorf("core: backend subscribe: %w", err)
	}
	b.cancelBackend = cancel
	return b, nil
}

// Address returns the front-door address.
func (b *Broker) Address() string { return b.cfg.Address }

// ManagerAddress returns the subscription-management address.
func (b *Broker) ManagerAddress() string { return b.cfg.ManagerAddress }

// SubscriptionCount reports live subscriptions.
func (b *Broker) SubscriptionCount() int { return len(b.store.Active()) }

// Store exposes the lease store for scavenger wiring.
func (b *Broker) Store() *sublease.Store { return b.store }

// Stats snapshots the counters. Delivery counters come from the dispatch
// engine; Published and Mediations are broker-level concepts. Failures
// counts every terminally failed delivery — including the dead-lettered
// ones, which are additionally broken out in DeadLettered.
func (b *Broker) Stats() Stats {
	es := b.engine.Stats()
	return Stats{
		Published:    b.published.Load(),
		Delivered:    es.Delivered,
		Dropped:      es.Dropped,
		Failures:     es.Failed + es.DeadLettered,
		DeadLettered: es.DeadLettered,
		Mediations:   b.mediations.Load(),
	}
}

// DispatchStats exposes the raw engine counters (including Matched) for
// monitoring and benchmarks.
func (b *Broker) DispatchStats() dispatch.Stats { return b.engine.Stats() }

func (b *Broker) nextMessageID() string {
	return fmt.Sprintf("urn:uuid:wsm-%d", b.msgID.Add(1))
}

// BrokerID returns the broker's federation identity ("" when the broker
// is not federated).
func (b *Broker) BrokerID() string { return b.cfg.BrokerID }

// Publish is the broker's local (non-SOAP) publishing API, used by
// embedded deployments, examples and benchmarks. SOAP publishers arrive
// through the front door instead.
func (b *Broker) Publish(topic topics.Path, payload *xmldom.Element) error {
	return b.publish(topic, payload, "", nil)
}

// PublishRelayed republishes a notification that arrived over a peer link,
// preserving its relay provenance (origin broker, origin message id, hop
// count — already incremented by the ingest) so local fan-out carries it
// onward. It is the federation ingest's publishing API; everything else
// about the publish (topic bookkeeping, backend, fan-out, reliability) is
// identical to a local publish.
func (b *Broker) PublishRelayed(topic topics.Path, payload *xmldom.Element, relay *mediation.Relay) error {
	return b.publish(topic, payload, "", relay)
}

func (b *Broker) publish(topic topics.Path, payload *xmldom.Element, origin string, relay *mediation.Relay) error {
	b.published.Add(1)
	if !topic.IsZero() {
		b.mu.Lock()
		b.current[topic.String()] = payload.Clone()
		b.mu.Unlock()
		b.space.Add(topic)
	}
	if relay == nil && b.cfg.BrokerID != "" {
		// First publish on a federated broker: stamp provenance so peers
		// can dedup on (origin, id) and cap hops.
		relay = &mediation.Relay{Origin: b.cfg.BrokerID, ID: b.nextMessageID(), Hops: 0}
	}
	var pos uint64
	if b.log != nil {
		// Durable-ack: the append (fsynced, under batch durability) must
		// succeed before the publish is acknowledged — an error here means
		// the publish was not accepted and the caller must not assume
		// delivery. The fan-out below happens only for accepted publishes.
		var err error
		if pos, err = b.appendToLog(topic, payload, origin, relay); err != nil {
			return err
		}
		if relay != nil && relay.Pos == 0 && relay.Origin == b.cfg.BrokerID {
			// Locally originated publish: its own LogPos is its origin
			// position, carried on the wire so peers can cursor against
			// this broker's log.
			relay.Pos = pos
		}
	}
	return b.cfg.Backend.Publish(backend.Message{Topic: topic, Payload: payload, Origin: origin, Relay: relay, Pos: pos})
}

// fanOut is the backend fan-in: hand one message to the dispatch engine,
// which indexes candidates by topic, runs each candidate's full filter and
// delivers per the subscriber's mode. When the transport can take raw
// bytes, the message carries a render-template cache shared by every
// subscriber it fans out to.
func (b *Broker) fanOut(msg backend.Message) {
	fm := fanMsg{payload: msg.Payload, origin: msg.Origin, relay: msg.Relay}
	if b.rawClient != nil && !b.cfg.DisableRenderCache {
		fm.rs = newRenderSet()
	}
	b.engine.Dispatch(dispatch.Message{Topic: msg.Topic, Pos: msg.Pos, Payload: fm})
}

// sendCtx applies the default delivery timeout when the dispatch engine's
// context does not already carry the retry policy's per-attempt deadline.
func sendCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, nil
	}
	return context.WithTimeout(ctx, 10*time.Second)
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// send posts one notification in the subscriber's spec. With a render set
// and a cacheable consumer it stamps the publish's shared template into a
// pooled buffer — render-once fan-out; otherwise it renders afresh.
func (b *Broker) send(ctx context.Context, st *subState, n mediation.Notification, rs *renderSet) error {
	ctx, cancel := sendCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	addr := st.canon.Consumer.Address
	if rs != nil {
		if mediation.Cacheable(st.canon.Consumer) {
			if tpl, hit := rs.template(n, st.plan); tpl != nil {
				if hit {
					inc(b.cacheHits)
				} else {
					inc(b.cacheMisses)
				}
				return b.sendStamped(ctx, tpl, addr, st.plan.SubscriptionID)
			}
		}
		inc(b.cacheMisses)
	}
	env := b.timeRender(func() *soap.Envelope {
		return mediation.Render(n, st.canon.Consumer, st.plan, b.nextMessageID())
	})
	return b.sendEnvelope(ctx, addr, env)
}

// sendStamped splices one subscriber's fields into a cached template and
// posts the bytes. Retry attempts re-enter here, so each attempt still
// carries a fresh MessageID, exactly as the render path does.
func (b *Broker) sendStamped(ctx context.Context, tpl *mediation.Template, addr, subID string) error {
	buf := getSendBuf()
	if b.renderSec == nil {
		*buf = tpl.Stamp((*buf)[:0], addr, b.nextMessageID(), subID)
	} else {
		t0 := b.cfg.Obs.Now()
		*buf = tpl.Stamp((*buf)[:0], addr, b.nextMessageID(), subID)
		b.renderSec.Observe(b.cfg.Obs.Now().Sub(t0))
	}
	err := b.rawClient.SendBytes(ctx, addr, soap.V11.ContentType(), *buf)
	putSendBuf(buf)
	return err
}

// sendEnvelope posts a rendered envelope, serialising into a pooled buffer
// over the raw-bytes transport path when the client supports it.
func (b *Broker) sendEnvelope(ctx context.Context, addr string, env *soap.Envelope) error {
	if b.rawClient == nil {
		return b.cfg.Client.Send(ctx, addr, env)
	}
	buf := getSendBuf()
	*buf = env.AppendMarshal((*buf)[:0])
	err := b.rawClient.SendBytes(ctx, addr, env.Version.ContentType(), *buf)
	putSendBuf(buf)
	return err
}

// sendBatch hands one dispatch delivery — up to Batch messages for one
// subscriber — to the per-destination writer pool. Messages whose cached
// template is coalescible travel as frames the pool stamps into shared
// multi-NotificationMessage envelopes (possibly merged with other
// subscribers bound for the same host); everything else is rendered here
// and carried as a complete body the pool pipelines over the host's
// keep-alive connection. The pool may finish a send after this call's
// context expires, so bodies are freshly allocated, never pooled.
func (b *Broker) sendBatch(ctx context.Context, st *subState, batch []dispatch.Message) error {
	ctx, cancel := sendCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	addr := st.canon.Consumer.Address
	db := &destwriter.Batch{
		Addr:        addr,
		ContentType: soap.V11.ContentType(),
		Key:         st.plan.SubscriptionID,
		Live: func() bool {
			_, err := b.store.Get(st.plan.SubscriptionID)
			return err == nil
		},
		Entries: make([]destwriter.Entry, 0, len(batch)),
	}
	cacheable := mediation.Cacheable(st.canon.Consumer)
	for _, m := range batch {
		fm := m.Payload.(fanMsg)
		n := mediation.Notification{Topic: m.Topic, Payload: fm.payload, Relay: fm.relay}
		if fm.rs != nil {
			if cacheable {
				if tpl, hit := fm.rs.template(n, st.plan); tpl != nil {
					if hit {
						inc(b.cacheHits)
					} else {
						inc(b.cacheMisses)
					}
					if tpl.Coalescible() {
						db.Entries = append(db.Entries, destwriter.Entry{Frame: tpl, SubID: st.plan.SubscriptionID})
					} else {
						db.Entries = append(db.Entries, destwriter.Entry{Body: tpl.Stamp(nil, addr, b.nextMessageID(), st.plan.SubscriptionID)})
					}
					continue
				}
			}
			inc(b.cacheMisses)
		}
		env := b.timeRender(func() *soap.Envelope {
			return mediation.Render(n, st.canon.Consumer, st.plan, b.nextMessageID())
		})
		db.ContentType = env.Version.ContentType()
		db.Entries = append(db.Entries, destwriter.Entry{Body: env.AppendMarshal(nil)})
	}
	err := b.dest.Deliver(ctx, db)
	if errors.Is(err, destwriter.ErrCanceled) {
		// The subscription died between enqueue and flush: nothing went on
		// the wire, and nothing should have. The engine counts the batch
		// Delivered rather than pushing a deliberately-cancelled tail into
		// retry/DLQ; the suppression stays visible via
		// wsm_dest_canceled_total.
		return nil
	}
	return err
}

// DestWriter exposes the per-destination writer pool (nil when batching is
// off) for harnesses and operator surfaces.
func (b *Broker) DestWriter() *destwriter.Pool { return b.dest }

// ceSend puts one CloudEvents delivery on the wire through the raw HTTP
// path, keeping the wsm_ce_* delivery accounting.
func (b *Broker) ceSend(ctx context.Context, addr, contentType string, header map[string]string, body []byte) error {
	err := b.ceClient.SendRaw(ctx, addr, contentType, header, body)
	if err != nil {
		inc(b.ceErrors)
	} else {
		inc(b.ceDeliveries)
	}
	return err
}

// sendCE posts one notification to a CloudEvents HTTP subscriber in its
// content mode. Structured and batched modes share the publish's render
// template exactly like SOAP subscribers (the per-delivery splice is the
// event id for synthesised events, nothing for preserved ones); binary
// mode renders fresh every time — its attributes travel as headers, which
// the byte-splicing template cannot carry.
func (b *Broker) sendCE(ctx context.Context, st *subState, n mediation.Notification, rs *renderSet) error {
	ctx, cancel := sendCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	addr := st.canon.Consumer.Address
	if st.plan.CEMode == mediation.CEBinary {
		header, contentType, body := mediation.RenderCEBinary(n, st.plan, b.nextMessageID())
		return b.ceSend(ctx, addr, contentType, header, body)
	}
	if rs != nil {
		if mediation.Cacheable(st.canon.Consumer) {
			if tpl, hit := rs.template(n, st.plan); tpl != nil {
				if hit {
					inc(b.cacheHits)
				} else {
					inc(b.cacheMisses)
				}
				buf := getSendBuf()
				id := b.nextMessageID()
				// Stamp routes the id through whichever slot the mode's
				// template cut (MessageID for structured, SubID for batched).
				*buf = tpl.Stamp((*buf)[:0], addr, id, id)
				contentType := cloudevents.ContentTypeJSON
				if st.plan.CEMode == mediation.CEBatched {
					contentType = cloudevents.ContentTypeBatch
				}
				err := b.ceSend(ctx, addr, contentType, nil, *buf)
				putSendBuf(buf)
				return err
			}
		}
		inc(b.cacheMisses)
	}
	body, contentType := mediation.RenderCE(n, st.plan, b.nextMessageID())
	return b.ceSend(ctx, addr, contentType, nil, body)
}

// sendCEBatch hands a batched-mode CloudEvents delivery to the
// per-destination writer pool: coalescible frames merge with other
// subscribers' batched-mode deliveries bound for the same host into one
// application/cloudevents-batch+json array per round trip — the same
// coalescing WSN 1.3 multi-NotificationMessage envelopes get.
func (b *Broker) sendCEBatch(ctx context.Context, st *subState, batch []dispatch.Message) error {
	ctx, cancel := sendCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	addr := st.canon.Consumer.Address
	db := &destwriter.Batch{
		Addr:        addr,
		ContentType: cloudevents.ContentTypeBatch,
		Key:         st.plan.SubscriptionID,
		Live: func() bool {
			_, err := b.store.Get(st.plan.SubscriptionID)
			return err == nil
		},
		Entries: make([]destwriter.Entry, 0, len(batch)),
	}
	cacheable := mediation.Cacheable(st.canon.Consumer)
	for _, m := range batch {
		fm := m.Payload.(fanMsg)
		n := mediation.Notification{Topic: m.Topic, Payload: fm.payload, Relay: fm.relay}
		id := b.nextMessageID()
		if fm.rs != nil {
			if cacheable {
				if tpl, hit := fm.rs.template(n, st.plan); tpl != nil {
					if hit {
						inc(b.cacheHits)
					} else {
						inc(b.cacheMisses)
					}
					// The minted event id rides the entry's SubID channel —
					// the batched template's only per-entry splice.
					db.Entries = append(db.Entries, destwriter.Entry{Frame: tpl, SubID: id})
					continue
				}
			}
			inc(b.cacheMisses)
		}
		body, _ := mediation.RenderCE(n, st.plan, id)
		db.Entries = append(db.Entries, destwriter.Entry{Body: body})
	}
	err := b.dest.Deliver(ctx, db)
	if errors.Is(err, destwriter.ErrCanceled) {
		return nil // same suppression contract as sendBatch
	}
	return err
}

// sendWrapped posts one batched envelope to a WSE wrapped-mode subscriber.
// Wrapped batches are assembled per subscriber from that subscriber's own
// queue, so no two subscribers share a batch and there is nothing to
// cache; the pooled serialisation path still applies.
func (b *Broker) sendWrapped(ctx context.Context, st *subState, batch []mediation.Notification) error {
	env := b.timeRender(func() *soap.Envelope {
		return mediation.RenderWrappedWSE(batch, st.canon.Consumer, st.plan, b.nextMessageID())
	})
	ctx, cancel := sendCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	return b.sendEnvelope(ctx, st.canon.Consumer.Address, env)
}

// timeRender runs one mediation render, feeding its duration into the
// wsm_mediation_render_seconds histogram when instrumentation is on —
// the per-delivery cost of the paper's mediation layer, measured apart
// from the network send it precedes.
func (b *Broker) timeRender(render func() *soap.Envelope) *soap.Envelope {
	if b.renderSec == nil {
		return render()
	}
	t0 := b.cfg.Obs.Now()
	env := render()
	b.renderSec.Observe(b.cfg.Obs.Now().Sub(t0))
	return env
}

// FlushWrapped forces out every partially filled wrapped-mode batch.
func (b *Broker) FlushWrapped() { b.engine.FlushBatches() }

// Flush forces out partial wrapped batches and blocks until every queued
// delivery has been attempted. Callers must not publish concurrently with
// Flush.
func (b *Broker) Flush() {
	b.FlushWrapped()
	b.engine.Quiesce()
}

// Scavenge expires lapsed subscriptions.
func (b *Broker) Scavenge() int { return b.store.Scavenge() }

// --- Reliable-delivery operator surface ---

// DeadLetterCount reports buffered dead letters.
func (b *Broker) DeadLetterCount() int { return b.engine.DLQLen() }

// DeadLetters copies up to max buffered dead letters (all when max <= 0)
// without removing them — the operator inspection API.
func (b *Broker) DeadLetters(max int) []dispatch.DeadLetter {
	return b.engine.DeadLetters(max)
}

// DrainDeadLetters removes and returns up to max dead letters (all when
// max <= 0), oldest first.
func (b *Broker) DrainDeadLetters(max int) []dispatch.DeadLetter {
	return b.engine.DrainDeadLetters(max)
}

// ReplayDeadLetters redrives up to max dead letters (all when max <= 0)
// through their subscriptions' delivery paths — the "consumer recovered,
// requeue the backlog" operation. Letters whose subscription has since
// ended are discarded. It returns how many were requeued.
func (b *Broker) ReplayDeadLetters(max int) int {
	return b.engine.ReplayDeadLetters(max)
}

// BreakerState reports a subscription's circuit breaker state; ok is
// false when the id is unknown or the broker runs without breakers.
func (b *Broker) BreakerState(id string) (state dispatch.BreakerState, ok bool) {
	return b.engine.BreakerState(id)
}

// OpenBreakerCount reports how many subscriptions currently sit behind an
// open circuit breaker.
func (b *Broker) OpenBreakerCount() int { return b.engine.OpenBreakers() }

// DefaultDLQWatermark is the dead-letter depth at which HealthChecks
// reports the broker degraded, unless overridden.
const DefaultDLQWatermark = 512

// HealthChecks returns a check function for obs.HealthHandler: the broker
// is degraded while any circuit breaker is open (a consumer is down and
// its backlog is growing) or while the dead-letter queue holds at least
// dlqWatermark letters (<=0 means DefaultDLQWatermark).
func (b *Broker) HealthChecks(dlqWatermark int) func() []obs.HealthCheck {
	if dlqWatermark <= 0 {
		dlqWatermark = DefaultDLQWatermark
	}
	return func() []obs.HealthCheck {
		open := b.engine.OpenBreakers()
		dlq := b.engine.DLQLen()
		return []obs.HealthCheck{
			{Name: "breakers", OK: open == 0, Detail: fmt.Sprintf("%d open", open)},
			{Name: "dlq", OK: dlq < dlqWatermark,
				Detail: fmt.Sprintf("%d buffered, watermark %d", dlq, dlqWatermark)},
		}
	}
}

// Shutdown terminates every subscription (emitting end notices per the
// subscriber's spec), stops the dispatch workers and closes the backend.
func (b *Broker) Shutdown() {
	b.store.Shutdown()
	b.engine.Close()
	if b.dest != nil {
		b.dest.Close()
	}
	if b.cancelBackend != nil {
		b.cancelBackend()
	}
	b.cfg.Backend.Close()
	_ = b.CloseLog()
}

// register creates the broker-side state for a canonical subscription.
// The dispatch registration happens inside the store's creation lock so no
// concurrent fan-out can observe a half-initialised subscription.
func (b *Broker) register(canon *mediation.Subscribe, flt filter.All, expires time.Time) *sublease.Lease {
	st := &subState{canon: canon, flt: flt}
	st.plan = mediation.DeliveryPlan{
		Dialect:         canon.Origin,
		UseRaw:          canon.UseRaw,
		ManagerAddress:  b.cfg.ManagerAddress,
		ProducerAddress: b.cfg.Address,
		CEMode:          canon.CEMode,
	}
	return b.store.CreateFunc(func(id string) any {
		st.plan.SubscriptionID = id
		b.attach(id, st, false, expires)
		return st
	}, expires)
}

// selectorFor derives the topic-index placement from the compiled filter
// chain: a topic filter indexes by its expression's concrete prefix,
// anything else stays on the residual list.
func selectorFor(flt filter.All) dispatch.Selector {
	for _, f := range flt {
		if tf, ok := f.(filter.Topic); ok {
			return dispatch.ForExpression(tf.Expr)
		}
	}
	return dispatch.MatchAll()
}

// attach registers a subscription with the dispatch engine, mapping the
// canonical delivery options onto an engine mode: WSE pull mode becomes a
// broker-side Pull buffer (drop-oldest at PullQueueCap), WSE wrapped mode
// becomes Sync batching at WrapBatchSize, SyncDelivery delivers inline,
// and everything else runs through a bounded drop-newest queue drained by
// the shared worker pool.
func (b *Broker) attach(id string, st *subState, paused bool, expires time.Time) {
	// clone isolates pull-buffer and wrapped-batch copies; the render set
	// is deliberately dropped — those buffers outlive the publish, and the
	// modes that use them never stamp from templates anyway.
	clone := func(m dispatch.Message) dispatch.Message {
		fm := m.Payload.(fanMsg)
		return dispatch.Message{Topic: m.Topic, Pos: m.Pos, Payload: fanMsg{payload: fm.payload.Clone(), origin: fm.origin, relay: fm.relay}}
	}
	sub := dispatch.Sub{
		ID:       id,
		Selector: selectorFor(st.flt),
		Filter: func(m dispatch.Message) (bool, error) {
			fm := m.Payload.(fanMsg)
			ok, err := st.flt.Accepts(filter.Message{
				Topic:              m.Topic,
				Payload:            fm.payload,
				ProducerProperties: b.cfg.Properties,
			})
			if err != nil || !ok {
				return false, err
			}
			if fm.origin != "" && fm.origin != st.canon.Origin.Family.String() {
				b.mediations.Add(1)
			}
			return true, nil
		},
		FailureLimit: b.cfg.FailureLimit,
		OnEvict: func(id string) {
			b.store.Cancel(id, sublease.EndDeliveryFailure)
		},
		Paused:      paused,
		PauseBuffer: st.pauseBuffer,
		Deadline:    expires,
	}
	if st.failureLimit != 0 {
		sub.FailureLimit = st.failureLimit
	}
	switch {
	case st.canon.PullMode:
		sub.Mode = dispatch.Pull
		sub.QueueCap = b.cfg.PullQueueCap
		sub.Overflow = dispatch.DropOldest
		sub.Prepare = clone
	case st.canon.WrapMode:
		sub.Mode = dispatch.Sync
		sub.Batch = b.cfg.WrapBatchSize
		sub.Prepare = clone
		sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
			ns := make([]mediation.Notification, len(batch))
			for i, m := range batch {
				ns[i] = mediation.Notification{Topic: m.Topic, Payload: m.Payload.(fanMsg).payload}
			}
			return b.sendWrapped(ctx, st, ns)
		}
	default:
		if b.cfg.SyncDelivery {
			sub.Mode = dispatch.Sync
		} else {
			sub.Mode = dispatch.Queued
			sub.QueueCap = b.cfg.QueueDepth
			sub.Overflow = dispatch.DropNewest
			if b.dest != nil {
				// Per-destination batching: let the drain hand up to
				// BatchMax backlogged messages per delivery cycle so the
				// dest pool can coalesce them (plus whatever other
				// subscribers queued for the same host) into
				// multi-message envelopes.
				sub.Batch = b.cfg.BatchMax
			}
		}
		switch {
		case st.localRaw != nil:
			// Session-bound (MQTT) subscription: hand the raw notification
			// in-process; the session layer frames it per the granted QoS.
			// Pause-buffered persistent sessions replay from here too, so
			// the payload is cloned defensively by Prepare below only for
			// pull/wrap modes — the MQTT path treats payloads as read-only.
			sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
				for _, m := range batch {
					fm := m.Payload.(fanMsg)
					n := mediation.Notification{Topic: m.Topic, Payload: fm.payload, Relay: fm.relay}
					if err := st.localRaw(ctx, n); err != nil {
						return err
					}
				}
				return nil
			}
		case st.local != nil:
			// Connection-bound (WebSocket) subscription: render the
			// CloudEvents structured body and hand it in-process. The dest
			// pool never applies — there is no destination host.
			sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
				for _, m := range batch {
					fm := m.Payload.(fanMsg)
					n := mediation.Notification{Topic: m.Topic, Payload: fm.payload, Relay: fm.relay}
					body, _ := mediation.RenderCE(n, st.plan, b.nextMessageID())
					if err := st.local(ctx, body); err != nil {
						return err
					}
				}
				return nil
			}
		case st.canon.Origin.Family == mediation.FamilyCE:
			if b.dest != nil && st.plan.CEMode == mediation.CEBatched {
				sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
					return b.sendCEBatch(ctx, st, batch)
				}
			} else {
				sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
					for _, m := range batch {
						fm := m.Payload.(fanMsg)
						n := mediation.Notification{Topic: m.Topic, Payload: fm.payload, Relay: fm.relay}
						if err := b.sendCE(ctx, st, n, fm.rs); err != nil {
							return err
						}
					}
					return nil
				}
			}
		case b.dest != nil:
			sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
				return b.sendBatch(ctx, st, batch)
			}
		default:
			sub.DeliverCtx = func(ctx context.Context, batch []dispatch.Message) error {
				m := batch[0]
				fm := m.Payload.(fanMsg)
				return b.send(ctx, st, mediation.Notification{Topic: m.Topic, Payload: fm.payload, Relay: fm.relay}, fm.rs)
			}
		}
	}
	_ = b.engine.Subscribe(sub)
}

// cancelSubscription ends a lease by explicit request. The store does not
// fire the end observer for EndCancelled (no end notice is owed), so the
// engine detach happens here.
func (b *Broker) cancelSubscription(id string) error {
	err := b.store.Cancel(id, sublease.EndCancelled)
	b.engine.Unsubscribe(id)
	return err
}

// renewSubscription extends a lease and mirrors the new deadline into the
// engine's soft-state expiry check.
func (b *Broker) renewSubscription(id string, t time.Time) (time.Time, error) {
	granted, err := b.store.Renew(id, t)
	if err == nil {
		b.engine.SetDeadline(id, granted)
	}
	return granted, err
}

// grantExpiry resolves a raw expiration per the origin dialect's rules:
// WSN 1.0 rejects durations, everyone rejects garbage.
func (b *Broker) grantExpiry(raw string, origin mediation.Dialect) (time.Time, error) {
	now := b.cfg.Clock()
	if raw != "" && xsdt.LooksLikeDuration(raw) &&
		origin.Family == mediation.FamilyWSN && !origin.WSN.SupportsDurationExpiry() {
		return time.Time{}, fmt.Errorf("duration expirations require WS-Notification 1.3")
	}
	t, err := wse.ResolveExpires(raw, now)
	if err != nil {
		return time.Time{}, err
	}
	if t.IsZero() && b.cfg.DefaultExpiry > 0 {
		t = now.Add(b.cfg.DefaultExpiry)
	}
	if !t.IsZero() && b.cfg.MaxExpiry > 0 {
		if limit := now.Add(b.cfg.MaxExpiry); t.After(limit) {
			t = limit
		}
	}
	return t, nil
}

// onLeaseEnd mediates the end-of-subscription notice into the
// subscriber's spec: SubscriptionEnd for WS-Eventing subscribers with an
// EndTo, WSRF TerminationNotification for WS-Notification 1.0 consumers,
// silence for 1.3 (Table 2).
func (b *Broker) onLeaseEnd(sn sublease.Snapshot, reason sublease.EndReason) {
	st, ok := sn.Data.(*subState)
	if !ok {
		return
	}
	b.engine.Unsubscribe(sn.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	switch st.canon.Origin.Family {
	case mediation.FamilyWSE:
		if st.canon.EndTo == nil {
			return
		}
		v := st.canon.Origin.WSE
		status := wse.EndSourceCanceling
		switch reason {
		case sublease.EndSourceShutdown:
			status = wse.EndSourceShuttingDown
		case sublease.EndDeliveryFailure:
			status = wse.EndDeliveryFailure
		}
		end := &wse.SubscriptionEnd{
			Manager: wsa.NewEPR(v.WSAVersion(), b.cfg.ManagerAddress),
			ID:      sn.ID,
			Status:  status,
			Reason:  string(reason),
		}
		env := soap.New(soap.V11)
		h := wsa.DestinationEPR(st.canon.EndTo, v.ActionSubscriptionEnd(), b.nextMessageID())
		h.Apply(env)
		env.AddBody(end.Element(v))
		_ = b.cfg.Client.Send(ctx, st.canon.EndTo.Address, env)
	case mediation.FamilyWSN:
		if st.canon.Origin.WSN != wsnt.V1_0 {
			return
		}
		env := soap.New(soap.V11)
		h := wsa.DestinationEPR(st.canon.Consumer, wsrf.ActionTerminationNotice, b.nextMessageID())
		h.Apply(env)
		env.AddBody(wsrf.NewTerminationNotification(b.cfg.Clock(), string(reason)))
		_ = b.cfg.Client.Send(ctx, st.canon.Consumer.Address, env)
	case mediation.FamilyCE:
		// CloudEvents subscribers get no end notice: the HTTP binding has
		// no vocabulary for one, and WebSocket-bound subscriptions end with
		// their connection anyway.
	}
}

// TopicSpace returns the topics the broker has observed.
func (b *Broker) TopicSpace() *topics.Space { return b.space }

// --- WSRF resources (WSN 1.0 subscription management, plus the broker
// itself as a resource advertising its WS-Topics TopicSet) ---

type brokerResources struct{ b *Broker }

func (br brokerResources) Resource(id string) (wsrf.Resource, error) {
	if id == "" {
		// No subscription id: the request addresses the broker itself,
		// whose resource properties advertise the observed topic set —
		// how WS-Topics says producers publish what can be subscribed to.
		return brokerSelfResource{br.b}, nil
	}
	if _, err := br.b.store.Get(id); err != nil {
		return nil, err
	}
	return &brokerSubResource{b: br.b, id: id}, nil
}

// brokerSelfResource exposes broker-level resource properties.
type brokerSelfResource struct{ b *Broker }

// PropertyDocument returns the TopicSet and live statistics.
func (r brokerSelfResource) PropertyDocument() (*xmldom.Element, error) {
	ns := "urn:ws-messenger"
	doc := xmldom.NewElement(xmldom.N(ns, "BrokerProperties"))
	doc.Append(r.b.space.TopicSetElement())
	st := r.b.Stats()
	doc.Append(xmldom.Elem(ns, "Subscriptions", fmt.Sprint(r.b.SubscriptionCount())))
	doc.Append(xmldom.Elem(ns, "Published", fmt.Sprint(st.Published)))
	doc.Append(xmldom.Elem(ns, "Delivered", fmt.Sprint(st.Delivered)))
	doc.Append(xmldom.Elem(ns, "Mediations", fmt.Sprint(st.Mediations)))
	doc.Append(xmldom.Elem(ns, "DeadLetters", fmt.Sprint(r.b.DeadLetterCount())))
	if rec := r.b.cfg.Obs; rec != nil {
		// Delivery-latency percentiles as a resource property, so WSRF
		// GetResourceProperty clients see the same numbers /metrics serves.
		snap := rec.StageSnapshot(obs.StageDeliver)
		lat := xmldom.NewElement(xmldom.N(ns, "DeliveryLatency"))
		lat.Append(xmldom.Elem(ns, "P50", snap.Quantile(0.50).String()))
		lat.Append(xmldom.Elem(ns, "P95", snap.Quantile(0.95).String()))
		lat.Append(xmldom.Elem(ns, "P99", snap.Quantile(0.99).String()))
		doc.Append(lat)
	}
	return doc, nil
}

// SetTerminationTime is not meaningful for the broker resource.
func (brokerSelfResource) SetTerminationTime(time.Time) (time.Time, error) {
	return time.Time{}, soap.Faultf(soap.FaultSender, "the broker's lifetime cannot be scheduled")
}

// Destroy is not meaningful for the broker resource.
func (brokerSelfResource) Destroy() error {
	return soap.Faultf(soap.FaultSender, "the broker cannot be destroyed through WSRF")
}

type brokerSubResource struct {
	b  *Broker
	id string
}

func (r *brokerSubResource) PropertyDocument() (*xmldom.Element, error) {
	sn, err := r.b.store.Get(r.id)
	if err != nil {
		return nil, err
	}
	st := sn.Data.(*subState)
	ns := wsnt.NS1_0
	doc := xmldom.NewElement(xmldom.N(ns, "SubscriptionProperties"))
	doc.Append(xmldom.Elem(ns, "CreationTime", xsdt.FormatDateTime(sn.CreatedAt)))
	if !sn.Expires.IsZero() {
		doc.Append(xmldom.Elem(ns, "TerminationTime", xsdt.FormatDateTime(sn.Expires)))
	}
	if st.canon.TopicExpr != "" {
		doc.Append(xmldom.Elem(ns, "TopicExpression", st.canon.TopicExpr))
	}
	status := "Active"
	if sn.Paused {
		status = "Paused"
	}
	doc.Append(xmldom.Elem(ns, "Status", status))
	return doc, nil
}

func (r *brokerSubResource) SetTerminationTime(t time.Time) (time.Time, error) {
	return r.b.renewSubscription(r.id, t)
}

func (r *brokerSubResource) Destroy() error {
	return r.b.cancelSubscription(r.id)
}
