// Package core implements WS-Messenger, the paper's contribution (§VII):
// a message broker that supports WS-Eventing and WS-Notification
// simultaneously and mediates between them.
//
// One front door accepts subscribe requests and published notifications in
// either specification (at any of the four versions this repository
// implements). The broker auto-detects the specification of each incoming
// SOAP message, answers in the same specification, and — the crux — when
// delivering, renders every notification in the specification *the
// subscriber used to subscribe*, so "an event producer can publish event
// notifications using either the WS-Eventing specification or the
// WS-Notification specification [and] it makes no difference to the event
// consumers" (§VII).
//
// Accepted notifications flow through a pluggable backend
// (repro/internal/backend), so existing publish/subscribe systems can be
// wrapped behind the WS front doors. Delivery runs through per-subscriber
// ordered queues drained by dedicated workers, keeping one slow consumer
// from stalling the rest.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/filter"
	"repro/internal/mediation"
	"repro/internal/soap"
	"repro/internal/sublease"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/wsrf"
	"repro/internal/xmldom"
	"repro/internal/xsdt"
)

// Config configures a WS-Messenger broker.
type Config struct {
	// Address is the broker front door (subscribes, publishes and, unless
	// ManagerAddress is set, subscription management).
	Address string
	// ManagerAddress optionally separates subscription management.
	ManagerAddress string
	// Client delivers notifications and end notices.
	Client transport.Client
	// Clock is injectable for tests.
	Clock func() time.Time
	// Backend is the underlying pub/sub fabric; in-memory when nil.
	Backend backend.Backend
	// DefaultExpiry / MaxExpiry govern granted subscription lifetimes.
	DefaultExpiry time.Duration
	MaxExpiry     time.Duration
	// Properties is the broker's producer-properties document.
	Properties *xmldom.Element
	// SyncDelivery delivers inline on the publisher's call instead of
	// through per-subscriber queues — deterministic for tests, and the
	// baseline arm of the delivery-pipeline ablation bench.
	SyncDelivery bool
	// QueueDepth bounds each subscriber's delivery queue (default 256);
	// overflow drops the newest message and counts it.
	QueueDepth int
	// PullQueueCap bounds WSE pull queues (default 1024).
	PullQueueCap int
	// WrapBatchSize is the WSE wrapped-mode batch size (default 10).
	WrapBatchSize int
	// FailureLimit drops a subscriber after this many consecutive
	// delivery failures (default 3).
	FailureLimit int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ManagerAddress == "" {
		out.ManagerAddress = out.Address
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	if out.Backend == nil {
		out.Backend = backend.NewMemory()
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.PullQueueCap <= 0 {
		out.PullQueueCap = 1024
	}
	if out.WrapBatchSize <= 0 {
		out.WrapBatchSize = 10
	}
	if out.FailureLimit <= 0 {
		out.FailureLimit = 3
	}
	return out
}

// Stats are the broker's monotonic counters.
type Stats struct {
	Published  uint64 // notifications accepted from publishers
	Delivered  uint64 // notifications handed to the transport successfully
	Dropped    uint64 // queue-overflow drops
	Failures   uint64 // transport delivery failures
	Mediations uint64 // deliveries whose outgoing spec differed from the incoming one
}

// subState is the broker-side record of one subscription.
type subState struct {
	canon *mediation.Subscribe
	flt   filter.All
	plan  mediation.DeliveryPlan

	mu        sync.Mutex
	closed    bool
	failures  int
	pullQueue []*xmldom.Element
	wrapBuf   []mediation.Notification

	ch chan queued
}

type queued struct {
	n      mediation.Notification
	origin mediation.Dialect
}

// Broker is the WS-Messenger broker.
type Broker struct {
	cfg   Config
	store *sublease.Store

	mu      sync.Mutex
	current map[string]*xmldom.Element // last message per topic
	space   *topics.Space              // topics observed, advertised as a TopicSet
	msgID   uint64

	published  atomic.Uint64
	delivered  atomic.Uint64
	dropped    atomic.Uint64
	failures   atomic.Uint64
	mediations atomic.Uint64

	inflight sync.WaitGroup

	cancelBackend func()
	wsrfSvc       *wsrf.Service
}

// New builds a broker and wires it to its backend.
func New(cfg Config) (*Broker, error) {
	b := &Broker{cfg: cfg.withDefaults(), current: map[string]*xmldom.Element{}, space: topics.NewSpace()}
	b.store = sublease.NewStore(
		sublease.WithClock(b.cfg.Clock),
		sublease.WithIDPrefix("wsm"),
		sublease.WithEndObserver(b.onLeaseEnd),
	)
	b.wsrfSvc = &wsrf.Service{
		Provider:    brokerResources{b},
		Clock:       b.cfg.Clock,
		IDExtractor: b.subscriptionIDFromHeaders,
	}
	cancel, err := b.cfg.Backend.Subscribe(b.fanOut)
	if err != nil {
		return nil, fmt.Errorf("core: backend subscribe: %w", err)
	}
	b.cancelBackend = cancel
	return b, nil
}

// Address returns the front-door address.
func (b *Broker) Address() string { return b.cfg.Address }

// ManagerAddress returns the subscription-management address.
func (b *Broker) ManagerAddress() string { return b.cfg.ManagerAddress }

// SubscriptionCount reports live subscriptions.
func (b *Broker) SubscriptionCount() int { return len(b.store.Active()) }

// Store exposes the lease store for scavenger wiring.
func (b *Broker) Store() *sublease.Store { return b.store }

// Stats snapshots the counters.
func (b *Broker) Stats() Stats {
	return Stats{
		Published:  b.published.Load(),
		Delivered:  b.delivered.Load(),
		Dropped:    b.dropped.Load(),
		Failures:   b.failures.Load(),
		Mediations: b.mediations.Load(),
	}
}

func (b *Broker) nextMessageID() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.msgID++
	return fmt.Sprintf("urn:uuid:wsm-%d", b.msgID)
}

// Publish is the broker's local (non-SOAP) publishing API, used by
// embedded deployments, examples and benchmarks. SOAP publishers arrive
// through the front door instead.
func (b *Broker) Publish(topic topics.Path, payload *xmldom.Element) error {
	return b.publish(topic, payload, "")
}

func (b *Broker) publish(topic topics.Path, payload *xmldom.Element, origin string) error {
	b.published.Add(1)
	if !topic.IsZero() {
		b.mu.Lock()
		b.current[topic.String()] = payload.Clone()
		b.mu.Unlock()
		b.space.Add(topic)
	}
	return b.cfg.Backend.Publish(backend.Message{Topic: topic, Payload: payload, Origin: origin})
}

// fanOut is the backend fan-in: route one message to every matching
// subscriber in its own specification.
func (b *Broker) fanOut(msg backend.Message) {
	n := mediation.Notification{Topic: msg.Topic, Payload: msg.Payload}
	fm := filter.Message{Topic: msg.Topic, Payload: msg.Payload, ProducerProperties: b.cfg.Properties}
	for _, sn := range b.store.Deliverable() {
		st := sn.Data.(*subState)
		ok, err := st.flt.Accepts(fm)
		if err != nil || !ok {
			continue
		}
		if msg.Origin != "" && msg.Origin != st.canon.Origin.Family.String() {
			b.mediations.Add(1)
		}
		if st.canon.PullMode {
			st.mu.Lock()
			if len(st.pullQueue) >= b.cfg.PullQueueCap {
				st.pullQueue = st.pullQueue[1:]
				b.dropped.Add(1)
			}
			st.pullQueue = append(st.pullQueue, msg.Payload.Clone())
			st.mu.Unlock()
			b.delivered.Add(1)
			continue
		}
		if st.canon.WrapMode {
			st.mu.Lock()
			st.wrapBuf = append(st.wrapBuf, mediation.Notification{Topic: n.Topic, Payload: n.Payload.Clone()})
			var batch []mediation.Notification
			if len(st.wrapBuf) >= b.cfg.WrapBatchSize {
				batch = st.wrapBuf
				st.wrapBuf = nil
			}
			st.mu.Unlock()
			if batch != nil {
				b.deliverWrapped(sn.ID, st, batch)
			}
			continue
		}
		if b.cfg.SyncDelivery {
			b.deliverOne(sn.ID, st, queued{n: n})
			continue
		}
		b.inflight.Add(1)
		if !st.enqueue(queued{n: n}) {
			b.inflight.Done()
			b.dropped.Add(1)
		}
	}
}

func (st *subState) enqueue(q queued) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	select {
	case st.ch <- q:
		return true
	default:
		return false
	}
}

func (st *subState) closeQueue() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.closed {
		st.closed = true
		if st.ch != nil {
			close(st.ch)
		}
	}
}

// worker drains one subscriber's queue in order.
func (b *Broker) worker(id string, st *subState) {
	for q := range st.ch {
		b.deliverOne(id, st, q)
		b.inflight.Done()
	}
}

func (b *Broker) deliverOne(id string, st *subState, q queued) {
	env := mediation.Render(q.n, st.canon.Consumer, st.plan, b.nextMessageID())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := b.cfg.Client.Send(ctx, st.canon.Consumer.Address, env)
	cancel()
	st.mu.Lock()
	if err == nil {
		st.failures = 0
		st.mu.Unlock()
		b.delivered.Add(1)
		return
	}
	st.failures++
	drop := st.failures >= b.cfg.FailureLimit
	st.mu.Unlock()
	b.failures.Add(1)
	if drop {
		b.store.Cancel(id, sublease.EndDeliveryFailure)
	}
}

// deliverWrapped sends one batched envelope to a WSE wrapped-mode
// subscriber, with the same failure accounting as single deliveries.
func (b *Broker) deliverWrapped(id string, st *subState, batch []mediation.Notification) {
	env := mediation.RenderWrappedWSE(batch, st.canon.Consumer, st.plan, b.nextMessageID())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := b.cfg.Client.Send(ctx, st.canon.Consumer.Address, env)
	cancel()
	st.mu.Lock()
	if err == nil {
		st.failures = 0
		st.mu.Unlock()
		b.delivered.Add(uint64(len(batch)))
		return
	}
	st.failures++
	drop := st.failures >= b.cfg.FailureLimit
	st.mu.Unlock()
	b.failures.Add(1)
	if drop {
		b.store.Cancel(id, sublease.EndDeliveryFailure)
	}
}

// FlushWrapped forces out every partially filled wrapped-mode batch.
func (b *Broker) FlushWrapped() {
	for _, sn := range b.store.Deliverable() {
		st := sn.Data.(*subState)
		if !st.canon.WrapMode {
			continue
		}
		st.mu.Lock()
		batch := st.wrapBuf
		st.wrapBuf = nil
		st.mu.Unlock()
		if len(batch) > 0 {
			b.deliverWrapped(sn.ID, st, batch)
		}
	}
}

// Flush forces out partial wrapped batches and blocks until every queued
// delivery has been attempted. Callers must not publish concurrently with
// Flush.
func (b *Broker) Flush() {
	b.FlushWrapped()
	b.inflight.Wait()
}

// Scavenge expires lapsed subscriptions.
func (b *Broker) Scavenge() int { return b.store.Scavenge() }

// Shutdown terminates every subscription (emitting end notices per the
// subscriber's spec) and closes the backend.
func (b *Broker) Shutdown() {
	b.store.Shutdown()
	if b.cancelBackend != nil {
		b.cancelBackend()
	}
	b.cfg.Backend.Close()
}

// register creates the broker-side state for a canonical subscription.
// The subState is completed inside the store's creation lock so no
// concurrent fan-out can observe a half-initialised subscription.
func (b *Broker) register(canon *mediation.Subscribe, flt filter.All, expires time.Time) *sublease.Lease {
	st := &subState{canon: canon, flt: flt}
	st.plan = mediation.DeliveryPlan{
		Dialect:         canon.Origin,
		UseRaw:          canon.UseRaw,
		ManagerAddress:  b.cfg.ManagerAddress,
		ProducerAddress: b.cfg.Address,
	}
	return b.store.CreateFunc(func(id string) any {
		st.plan.SubscriptionID = id
		if !b.cfg.SyncDelivery && !canon.PullMode {
			st.ch = make(chan queued, b.cfg.QueueDepth)
			go b.worker(id, st)
		}
		return st
	}, expires)
}

// grantExpiry resolves a raw expiration per the origin dialect's rules:
// WSN 1.0 rejects durations, everyone rejects garbage.
func (b *Broker) grantExpiry(raw string, origin mediation.Dialect) (time.Time, error) {
	now := b.cfg.Clock()
	if raw != "" && xsdt.LooksLikeDuration(raw) &&
		origin.Family == mediation.FamilyWSN && !origin.WSN.SupportsDurationExpiry() {
		return time.Time{}, fmt.Errorf("duration expirations require WS-Notification 1.3")
	}
	t, err := wse.ResolveExpires(raw, now)
	if err != nil {
		return time.Time{}, err
	}
	if t.IsZero() && b.cfg.DefaultExpiry > 0 {
		t = now.Add(b.cfg.DefaultExpiry)
	}
	if !t.IsZero() && b.cfg.MaxExpiry > 0 {
		if limit := now.Add(b.cfg.MaxExpiry); t.After(limit) {
			t = limit
		}
	}
	return t, nil
}

// onLeaseEnd mediates the end-of-subscription notice into the
// subscriber's spec: SubscriptionEnd for WS-Eventing subscribers with an
// EndTo, WSRF TerminationNotification for WS-Notification 1.0 consumers,
// silence for 1.3 (Table 2).
func (b *Broker) onLeaseEnd(sn sublease.Snapshot, reason sublease.EndReason) {
	st, ok := sn.Data.(*subState)
	if !ok {
		return
	}
	st.closeQueue()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	switch st.canon.Origin.Family {
	case mediation.FamilyWSE:
		if st.canon.EndTo == nil {
			return
		}
		v := st.canon.Origin.WSE
		status := wse.EndSourceCanceling
		switch reason {
		case sublease.EndSourceShutdown:
			status = wse.EndSourceShuttingDown
		case sublease.EndDeliveryFailure:
			status = wse.EndDeliveryFailure
		}
		end := &wse.SubscriptionEnd{
			Manager: wsa.NewEPR(v.WSAVersion(), b.cfg.ManagerAddress),
			ID:      sn.ID,
			Status:  status,
			Reason:  string(reason),
		}
		env := soap.New(soap.V11)
		h := wsa.DestinationEPR(st.canon.EndTo, v.ActionSubscriptionEnd(), b.nextMessageID())
		h.Apply(env)
		env.AddBody(end.Element(v))
		_ = b.cfg.Client.Send(ctx, st.canon.EndTo.Address, env)
	case mediation.FamilyWSN:
		if st.canon.Origin.WSN != wsnt.V1_0 {
			return
		}
		env := soap.New(soap.V11)
		h := wsa.DestinationEPR(st.canon.Consumer, wsrf.ActionTerminationNotice, b.nextMessageID())
		h.Apply(env)
		env.AddBody(wsrf.NewTerminationNotification(b.cfg.Clock(), string(reason)))
		_ = b.cfg.Client.Send(ctx, st.canon.Consumer.Address, env)
	}
}

// TopicSpace returns the topics the broker has observed.
func (b *Broker) TopicSpace() *topics.Space { return b.space }

// --- WSRF resources (WSN 1.0 subscription management, plus the broker
// itself as a resource advertising its WS-Topics TopicSet) ---

type brokerResources struct{ b *Broker }

func (br brokerResources) Resource(id string) (wsrf.Resource, error) {
	if id == "" {
		// No subscription id: the request addresses the broker itself,
		// whose resource properties advertise the observed topic set —
		// how WS-Topics says producers publish what can be subscribed to.
		return brokerSelfResource{br.b}, nil
	}
	if _, err := br.b.store.Get(id); err != nil {
		return nil, err
	}
	return &brokerSubResource{b: br.b, id: id}, nil
}

// brokerSelfResource exposes broker-level resource properties.
type brokerSelfResource struct{ b *Broker }

// PropertyDocument returns the TopicSet and live statistics.
func (r brokerSelfResource) PropertyDocument() (*xmldom.Element, error) {
	ns := "urn:ws-messenger"
	doc := xmldom.NewElement(xmldom.N(ns, "BrokerProperties"))
	doc.Append(r.b.space.TopicSetElement())
	st := r.b.Stats()
	doc.Append(xmldom.Elem(ns, "Subscriptions", fmt.Sprint(r.b.SubscriptionCount())))
	doc.Append(xmldom.Elem(ns, "Published", fmt.Sprint(st.Published)))
	doc.Append(xmldom.Elem(ns, "Delivered", fmt.Sprint(st.Delivered)))
	doc.Append(xmldom.Elem(ns, "Mediations", fmt.Sprint(st.Mediations)))
	return doc, nil
}

// SetTerminationTime is not meaningful for the broker resource.
func (brokerSelfResource) SetTerminationTime(time.Time) (time.Time, error) {
	return time.Time{}, soap.Faultf(soap.FaultSender, "the broker's lifetime cannot be scheduled")
}

// Destroy is not meaningful for the broker resource.
func (brokerSelfResource) Destroy() error {
	return soap.Faultf(soap.FaultSender, "the broker cannot be destroyed through WSRF")
}

type brokerSubResource struct {
	b  *Broker
	id string
}

func (r *brokerSubResource) PropertyDocument() (*xmldom.Element, error) {
	sn, err := r.b.store.Get(r.id)
	if err != nil {
		return nil, err
	}
	st := sn.Data.(*subState)
	ns := wsnt.NS1_0
	doc := xmldom.NewElement(xmldom.N(ns, "SubscriptionProperties"))
	doc.Append(xmldom.Elem(ns, "CreationTime", xsdt.FormatDateTime(sn.CreatedAt)))
	if !sn.Expires.IsZero() {
		doc.Append(xmldom.Elem(ns, "TerminationTime", xsdt.FormatDateTime(sn.Expires)))
	}
	if st.canon.TopicExpr != "" {
		doc.Append(xmldom.Elem(ns, "TopicExpression", st.canon.TopicExpr))
	}
	status := "Active"
	if sn.Paused {
		status = "Paused"
	}
	doc.Append(xmldom.Elem(ns, "Status", status))
	return doc, nil
}

func (r *brokerSubResource) SetTerminationTime(t time.Time) (time.Time, error) {
	return r.b.store.Renew(r.id, t)
}

func (r *brokerSubResource) Destroy() error {
	return r.b.store.Cancel(r.id, sublease.EndCancelled)
}
