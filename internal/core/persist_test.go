package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
)

// TestPersistenceRoundTrip saves a populated broker and restores it into a
// fresh one: the same subscription ids keep working, filters still apply,
// and cross-spec delivery resumes.
func TestPersistenceRoundTrip(t *testing.T) {
	f := newFixture(t)
	wseHandle := f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{
		Expires:    "PT1H",
		FilterExpr: "//g:val != 'drop'",
		FilterNS:   map[string]string{"g": "urn:grid"},
	})
	f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{
		TopicExpression: "tns:jobs",
		TopicDialect:    topics.DialectSimple,
		TopicNS:         map[string]string{"tns": "urn:grid"},
	})
	// Pause the WSN subscription so the flag round-trips too.
	s3 := &wsnt.Subscriber{Client: f.lb, Version: wsnt.V1_3}
	hs := f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://wsn-consumer"),
	})
	if err := s3.Pause(context.Background(), hs); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := f.broker.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.String()
	if !strings.Contains(snapshot, wseHandle.ID) {
		t.Error("snapshot missing subscription id")
	}

	// A brand-new broker on the same network restores the snapshot.
	b2, err := New(Config{
		Address:        "svc://wsm",
		ManagerAddress: "svc://wsm-subs",
		Client:         f.lb,
		Clock:          f.clock.now,
		SyncDelivery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := b2.RestoreSubscriptions(strings.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || b2.SubscriptionCount() != 3 {
		t.Fatalf("restored %d, count %d", n, b2.SubscriptionCount())
	}
	f.lb.Register("svc://wsm", b2.FrontHandler())
	f.lb.Register("svc://wsm-subs", b2.ManagerHandler())

	// Filters still apply; paused stays paused; spec of each subscriber
	// is preserved (WSE gets raw, WSN gets wrapped).
	f.publishWSN(t, grid, event("keep"))
	f.publishWSN(t, grid, event("drop"))
	if f.wseSink.Count() != 1 {
		t.Errorf("restored WSE filter delivered %d", f.wseSink.Count())
	}
	if f.wsnSink.Count() != 2 { // two 'jobs' publishes pass the topic filter; paused sub silent
		t.Errorf("restored WSN delivered %d", f.wsnSink.Count())
	}
	if got := f.wsnSink.Received()[0]; !got.Wrapped {
		t.Error("restored WSN subscriber lost its wrapped format")
	}

	// The pre-restart handle still manages the subscription (same id).
	ws := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	if _, err := ws.Renew(context.Background(), wseHandle, "PT2H"); err != nil {
		t.Fatalf("renew with pre-restart handle: %v", err)
	}
	if err := ws.Unsubscribe(context.Background(), wseHandle); err != nil {
		t.Fatalf("unsubscribe with pre-restart handle: %v", err)
	}
	// Resuming the paused one works too.
	if err := s3.Resume(context.Background(), hs); err != nil {
		t.Fatalf("resume after restore: %v", err)
	}
}

func TestRestoreRejectsDuplicatesAndGarbage(t *testing.T) {
	f := newFixture(t)
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	var buf bytes.Buffer
	if err := f.broker.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	// Restoring into the SAME broker collides on ids.
	if _, err := f.broker.RestoreSubscriptions(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("duplicate restore accepted")
	}
	// Garbage input.
	b2, _ := New(Config{Address: "svc://y", Client: transport.NewLoopback(), SyncDelivery: true})
	if _, err := b2.RestoreSubscriptions(strings.NewReader("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := b2.RestoreSubscriptions(strings.NewReader(`{"format":99}`)); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRestoredIDsDoNotCollideWithNewOnes(t *testing.T) {
	f := newFixture(t)
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	var buf bytes.Buffer
	f.broker.SaveSubscriptions(&buf)

	b2, err := New(Config{Address: "svc://wsm", ManagerAddress: "svc://wsm-subs",
		Client: f.lb, Clock: f.clock.now, SyncDelivery: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.RestoreSubscriptions(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	f.lb.Register("svc://wsm", b2.FrontHandler())
	// New subscriptions after restore must get fresh ids.
	h := f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	if h.ID == "wsm-1" || h.ID == "wsm-2" {
		t.Errorf("new id %q collides with restored ids", h.ID)
	}
	if b2.SubscriptionCount() != 3 {
		t.Errorf("count = %d", b2.SubscriptionCount())
	}
}

func TestSaveSkipsExpired(t *testing.T) {
	f := newFixture(t)
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{Expires: "PT5M"})
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{Expires: "PT5H"})
	f.clock.advance(10 * time.Minute)
	var buf bytes.Buffer
	if err := f.broker.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	b2, _ := New(Config{Address: "svc://z", Client: f.lb, Clock: f.clock.now, SyncDelivery: true})
	n, err := b2.RestoreSubscriptions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("restored %d, want only the live one", n)
	}
}

func TestPersistenceKeepsWrapAndPullModes(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.WrapBatchSize = 2 })
	s := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
	if _, err := s.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
		Mode:     wse.V200408.DeliveryModeWrap(),
	}); err != nil {
		t.Fatal(err)
	}
	hPull, err := s.Subscribe(context.Background(), "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
		Mode:     wse.V200408.DeliveryModePull(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f.broker.SaveSubscriptions(&buf)

	b2, err := New(Config{Address: "svc://wsm", ManagerAddress: "svc://wsm-subs",
		Client: f.lb, Clock: f.clock.now, SyncDelivery: true, WrapBatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.RestoreSubscriptions(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	f.lb.Register("svc://wsm", b2.FrontHandler())
	f.lb.Register("svc://wsm-subs", b2.ManagerHandler())

	// Wrap mode still batches after restore; pull mode still queues.
	f.publishWSN(t, grid, event("1"))
	if f.wseSink.Count() != 0 {
		t.Error("wrap batch flushed early after restore")
	}
	f.publishWSN(t, grid, event("2"))
	if f.wseSink.Count() != 2 {
		t.Errorf("restored wrap mode delivered %d, want batch of 2", f.wseSink.Count())
	}
	msgs, err := s.Pull(context.Background(), hPull, 0)
	if err != nil || len(msgs) != 2 {
		t.Errorf("restored pull mode: %d %v", len(msgs), err)
	}
}
