package core

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/dispatch/faulty"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// scrape renders the registry's Prometheus exposition as a string.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBrokerObsMetrics pins the broker-level series: per-operation and
// mediation-render timings show up under the right labels, the engine
// counters agree with Stats, and the WSRF property document grows a
// DeliveryLatency block when instrumentation is on.
func TestBrokerObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, "broker", obs.RecorderConfig{SampleEvery: 1})
	f := newFixture(t, func(c *Config) { c.Obs = rec })
	defer f.broker.Shutdown()

	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{})
	f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{})
	f.publishWSE(t, grid, event("a"))
	f.publishWSN(t, grid, event("b"))
	f.broker.Flush()

	text := scrape(t, reg)
	for _, want := range []string{
		`wsm_op_seconds_count{component="broker",op="Subscribe",spec="WS-Eventing 8/2004"} 1`,
		`wsm_op_seconds_count{component="broker",op="Subscribe",spec="WS-Notification 1.3"} 1`,
		`wsm_op_seconds_count{component="broker",op="Notify",spec="WS-Eventing 8/2004"} 1`,
		`wsm_op_seconds_count{component="broker",op="Notify",spec="WS-Notification 1.3"} 1`,
		`wsm_mediation_render_seconds_count{component="broker"} 4`,
		`wsm_published_total{component="broker"} 2`,
		`wsm_delivered_total{component="broker"} 4`,
		`wsm_subscribers{component="broker"} 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The delivery-stage percentiles surface as a WSRF resource property
	// alongside DeadLetters.
	doc, err := brokerSelfResource{f.broker}.PropertyDocument()
	if err != nil {
		t.Fatal(err)
	}
	lat := doc.Child(xmldom.N("urn:ws-messenger", "DeliveryLatency"))
	if lat == nil {
		t.Fatal("property document has no DeliveryLatency")
	}
	for _, q := range []string{"P50", "P95", "P99"} {
		if lat.ChildText(xmldom.N("urn:ws-messenger", q)) == "" {
			t.Errorf("DeliveryLatency missing %s", q)
		}
	}

	// An uninstrumented broker must not advertise latencies it isn't
	// measuring.
	plain := newFixture(t)
	defer plain.broker.Shutdown()
	doc, err = brokerSelfResource{plain.broker}.PropertyDocument()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Child(xmldom.N("urn:ws-messenger", "DeliveryLatency")) != nil {
		t.Error("uninstrumented property document advertises DeliveryLatency")
	}
}

// TestHealthzFlipsOnOpenBreaker drives a consumer with the fault injector
// until its circuit breaker opens and asserts /healthz flips 200 → 503,
// naming the failed check.
func TestHealthzFlipsOnOpenBreaker(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, "broker")
	f := newFixture(t, func(c *Config) {
		c.Obs = rec
		c.Breaker = &dispatch.BreakerPolicy{Window: 2, FailureRate: 0.5, Cooldown: time.Hour}
	})
	defer f.broker.Shutdown()

	inj := faulty.New(faulty.Script{FailAlways: true}, nil)
	f.lb.Register("svc://down", transport.HandlerFunc(
		func(ctx context.Context, _ *soap.Envelope) (*soap.Envelope, error) {
			return nil, inj.DeliverCtx(ctx, nil)
		}))
	f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wse.V200408.WSAVersion(), "svc://down"),
	})

	healthz := obs.HealthHandler(f.broker.HealthChecks(0))
	get := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		healthz.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
		return w
	}

	if w := get(); w.Code != 200 {
		t.Fatalf("healthy broker: /healthz = %d, want 200", w.Code)
	}

	// Two failed deliveries fill the window and trip the breaker.
	f.publishWSE(t, grid, event("1"))
	f.publishWSE(t, grid, event("2"))
	f.broker.Flush()
	if inj.Failures() == 0 {
		t.Fatal("injector saw no delivery attempts")
	}
	if f.broker.OpenBreakerCount() != 1 {
		t.Fatalf("OpenBreakerCount = %d, want 1", f.broker.OpenBreakerCount())
	}

	w := get()
	if w.Code != 503 {
		t.Fatalf("open breaker: /healthz = %d, want 503", w.Code)
	}
	if body := w.Body.String(); !strings.Contains(body, "breakers: fail") {
		t.Errorf("healthz body does not name the failed check:\n%s", body)
	}
	if !strings.Contains(scrape(t, reg), `wsm_breakers_open{component="broker"} 1`+"\n") {
		t.Error("wsm_breakers_open does not report the open breaker")
	}

	// The DLQ watermark is the other degradation source: terminal failures
	// from the two publishes sit in the dead-letter queue.
	checks := f.broker.HealthChecks(1)()
	var dlqOK, found bool
	for _, c := range checks {
		if c.Name == "dlq" {
			found, dlqOK = true, c.OK
		}
	}
	if !found || dlqOK {
		t.Errorf("dlq check above watermark = %+v, want a failing dlq entry", checks)
	}
}
