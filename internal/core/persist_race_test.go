package core

// Persistence under load: SaveSubscriptions is an operator-facing call that
// runs against a live broker — snapshots race with publishes and renews in
// any real deployment. This test drives all three concurrently through the
// queued delivery pipeline (run it under -race), then proves two things:
// the dispatch counters still satisfy the conservation law at quiescence,
// and the last snapshot taken mid-storm restores into a working broker.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/soap"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
)

func TestSnapshotUnderLoadRace(t *testing.T) {
	f := newFixture(t, func(c *Config) {
		c.SyncDelivery = false // the real queued pipeline, with worker concurrency
	})

	// A population of both families: unfiltered WSE push subscribers and
	// topic-filtered WSN subscribers.
	var wseHandles []*wse.Handle
	for i := 0; i < 4; i++ {
		wseHandles = append(wseHandles, f.subscribeWSE(t, wse.V200408, &wse.SubscribeRequest{Expires: "PT1H"}))
	}
	for i := 0; i < 4; i++ {
		f.subscribeWSN(t, wsnt.V1_3, &wsnt.SubscribeRequest{})
	}

	// publish mirrors fixture.publishWSN but reports failures with Errorf
	// (Fatalf must not be called off the test goroutine).
	publish := func(val string) error {
		env := soap.New(soap.V11)
		(&wsa.MessageHeaders{Version: wsa.V200508, To: "svc://wsm",
			Action: wsnt.V1_3.ActionNotify()}).Apply(env)
		env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{
			{Topic: grid, Payload: event(val)},
		}))
		return f.lb.Send(context.Background(), "svc://wsm", env)
	}

	const (
		publishers   = 3
		perPublisher = 40
		renewRounds  = 25
		snapshotters = 2
	)
	var (
		wg       sync.WaitGroup
		snapMu   sync.Mutex
		lastSnap []byte
	)
	// Publishers.
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for j := 0; j < perPublisher; j++ {
				if err := publish(fmt.Sprintf("p%d-%d", p, j)); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}(p)
	}
	// A renewer cycling the WSE handles against the manager endpoint.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := &wse.Subscriber{Client: f.lb, Version: wse.V200408}
		for j := 0; j < renewRounds; j++ {
			h := wseHandles[j%len(wseHandles)]
			if _, err := s.Renew(context.Background(), h, "PT2H"); err != nil {
				t.Errorf("renew under load: %v", err)
			}
		}
	}()
	// Snapshotters racing both of the above.
	for s := 0; s < snapshotters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				var buf bytes.Buffer
				if err := f.broker.SaveSubscriptions(&buf); err != nil {
					t.Errorf("snapshot under load: %v", err)
					return
				}
				snapMu.Lock()
				lastSnap = buf.Bytes()
				snapMu.Unlock()
			}
		}()
	}
	wg.Wait()
	f.broker.Flush()

	// Conservation at quiescence: every matched delivery is accounted for.
	st := f.broker.DispatchStats()
	if st.Matched != st.Delivered+st.Dropped+st.Failed+st.DeadLettered {
		t.Errorf("conservation violated after storm: %+v", st)
	}
	if want := uint64(publishers * perPublisher); st.Published != want {
		t.Errorf("published = %d, want %d", st.Published, want)
	}
	total := publishers * perPublisher
	if got := f.wseSink.Count(); got != total*len(wseHandles) {
		t.Errorf("wse sink received %d, want %d", got, total*len(wseHandles))
	}

	// The mid-storm snapshot is complete and restores into a broker that
	// delivers: all 8 subscriptions, filters and formats intact.
	if lastSnap == nil {
		t.Fatal("no snapshot captured")
	}
	b2, err := New(Config{
		Address:        "svc://wsm2",
		ManagerAddress: "svc://wsm2-subs",
		Client:         f.lb,
		Clock:          f.clock.now,
		SyncDelivery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := b2.RestoreSubscriptions(bytes.NewReader(lastSnap))
	if err != nil {
		t.Fatalf("restore mid-storm snapshot: %v", err)
	}
	if n != 8 || b2.SubscriptionCount() != 8 {
		t.Fatalf("restored %d subscriptions (count %d), want 8", n, b2.SubscriptionCount())
	}
	f.lb.Register("svc://wsm2", b2.FrontHandler())
	f.lb.Register("svc://wsm2-subs", b2.ManagerHandler())

	wseBefore, wsnBefore := f.wseSink.Count(), f.wsnSink.Count()
	if err := b2.Publish(grid, event("after-restore")); err != nil {
		t.Fatal(err)
	}
	if got := f.wseSink.Count() - wseBefore; got != 4 {
		t.Errorf("restored broker delivered %d to WSE sinks, want 4", got)
	}
	if got := f.wsnSink.Count() - wsnBefore; got != 4 {
		t.Errorf("restored broker delivered %d to WSN consumers, want 4", got)
	}
	st2 := b2.DispatchStats()
	if st2.Matched != st2.Delivered+st2.Dropped+st2.Failed+st2.DeadLettered {
		t.Errorf("conservation violated on restored broker: %+v", st2)
	}
}
