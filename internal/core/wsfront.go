package core

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cloudevents"
	"repro/internal/mediation"
	"repro/internal/topics"
	"repro/internal/wsa"
	"repro/internal/wspush"
)

// The WebSocket front door (mounted at /ws): push delivery without a
// consumer-side HTTP server. A client upgrades, subscribes over the socket
// and receives every matching publish — whichever front door it entered —
// as a CloudEvents structured-mode JSON frame. The session vocabulary is
// line-of-sight JSON:
//
//	→ {"action":"subscribe","topic":"{ns}a/b"}   (topic optional)
//	← {"action":"subscribed","sid":"wsm-1"}
//	→ {"action":"unsubscribe","sid":"wsm-1"}
//	→ {"action":"publish","event":{...CloudEvents JSON...}}
//	← {"action":"event","sid":"wsm-1","event":{...}}
//
// Liveness: the broker pings every wsPingInterval; a connection that stays
// silent for wsLivenessGrace intervals is declared dead, which fails its
// pending deliveries into the same retry/breaker/DLQ machinery HTTP
// consumers use — the conservation law holds for sockets too. A client
// close frame is honoured gracefully: queued events drain before the
// close handshake completes.
//
// Connection-bound subscriptions are local: they die with the socket and
// are never persisted in subscription snapshots.

const (
	// wsPingInterval is how often the broker pings an idle connection.
	wsPingInterval = 15 * time.Second
	// wsLivenessGrace is how many silent ping intervals a connection
	// survives before it is declared dead.
	wsLivenessGrace = 2
	// wsOutDepth bounds the per-connection outbound frame queue; a full
	// queue pushes back into the subscriber's dispatch queue.
	wsOutDepth = 64
)

// wsRequest is a client→broker session frame.
type wsRequest struct {
	Action string          `json:"action"`
	Topic  string          `json:"topic,omitempty"`
	SID    string          `json:"sid,omitempty"`
	Event  json.RawMessage `json:"event,omitempty"`
}

// wsReply is a broker→client session frame.
type wsReply struct {
	Action string          `json:"action"`
	SID    string          `json:"sid,omitempty"`
	ID     string          `json:"id,omitempty"`
	Event  json.RawMessage `json:"event,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// wsSession is one upgraded connection's state.
type wsSession struct {
	b   *Broker
	c   *wspush.Conn
	out chan []byte
	// dead closes when the session stops delivering (liveness timeout, IO
	// error or close handshake); closing closes when the client asked for a
	// graceful close and queued frames should drain first; wdone closes
	// when the write loop has exited.
	dead     chan struct{}
	closing  chan struct{}
	wdone    chan struct{}
	deadOnce func()
	closeOn  func()
	lastSeen atomic.Int64 // UnixNano of the last frame read
	subs     map[string]struct{}
}

var errWSClosed = errors.New("core: websocket connection closed")

// WSHandler returns the broker's WebSocket front door.
func (b *Broker) WSHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := wspush.Upgrade(w, r)
		if err != nil {
			return // Upgrade already wrote the HTTP error
		}
		b.wsConns.Add(1)
		inc(b.wsConnsTotal)
		defer b.wsConns.Add(-1)
		s := &wsSession{
			b: b, c: c,
			out:     make(chan []byte, wsOutDepth),
			dead:    make(chan struct{}),
			closing: make(chan struct{}),
			wdone:   make(chan struct{}),
			subs:    map[string]struct{}{},
		}
		s.deadOnce = onceClose(s.dead)
		s.closeOn = onceClose(s.closing)
		s.lastSeen.Store(time.Now().UnixNano())
		go s.writeLoop()
		graceful := s.readLoop()
		if !graceful {
			// Abnormal exit: stop the writer now rather than waiting for
			// its next ping tick to discover the broken socket.
			s.deadOnce()
		}
		// Let the writer finish (on a graceful close it is draining queued
		// events first); a consumer that stops reading mid-drain is cut off.
		select {
		case <-s.wdone:
		case <-time.After(5 * time.Second):
			s.deadOnce()
			_ = c.Close()
			<-s.wdone
		}
		s.deadOnce()
		// The socket is done: connection-bound subscriptions die with it.
		for id := range s.subs {
			_ = b.cancelSubscription(id)
		}
		_ = c.Close()
	})
}

// onceClose returns an idempotent closer for ch.
func onceClose(ch chan struct{}) func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			close(ch)
		}
	}
}

// readLoop pumps client frames until the socket fails or the client sends
// a close frame; it reports whether the exit was a graceful close.
func (s *wsSession) readLoop() (graceful bool) {
	grace := wsPingInterval * (wsLivenessGrace + 1)
	for {
		_ = s.c.SetReadDeadline(time.Now().Add(grace))
		op, p, err := s.c.ReadMessage()
		if err != nil {
			return false
		}
		s.lastSeen.Store(time.Now().UnixNano())
		switch op {
		case wspush.OpPing:
			_ = s.c.WritePong(p)
		case wspush.OpPong:
			// lastSeen already refreshed
		case wspush.OpClose:
			s.closeOn()
			return true
		case wspush.OpText:
			s.handle(p)
		}
	}
}

func (s *wsSession) writeLoop() {
	defer close(s.wdone)
	ticker := time.NewTicker(wsPingInterval)
	defer ticker.Stop()
	for {
		select {
		case msg := <-s.out:
			if err := s.c.WriteMessage(wspush.OpText, msg); err != nil {
				s.deadOnce()
				return
			}
			inc(s.b.wsEvents)
		case <-ticker.C:
			silent := time.Since(time.Unix(0, s.lastSeen.Load()))
			if silent > wsPingInterval*wsLivenessGrace {
				// The consumer stopped answering pings: declare the
				// connection dead so pending deliveries fail into the
				// subscriber's retry/breaker path instead of queueing
				// forever behind a black hole.
				inc(s.b.wsPingTimeouts)
				s.deadOnce()
				_ = s.c.Close()
				return
			}
			if err := s.c.WritePing(nil); err != nil {
				s.deadOnce()
				return
			}
		case <-s.closing:
			// Graceful close: drain what is already queued, then complete
			// the close handshake.
			for {
				select {
				case msg := <-s.out:
					if err := s.c.WriteMessage(wspush.OpText, msg); err != nil {
						s.deadOnce()
						return
					}
					inc(s.b.wsEvents)
				default:
					_ = s.c.WriteClose(wspush.CloseNormal, "")
					s.deadOnce()
					return
				}
			}
		case <-s.dead:
			return
		}
	}
}

// handle processes one client JSON frame.
func (s *wsSession) handle(p []byte) {
	var req wsRequest
	if err := json.Unmarshal(p, &req); err != nil {
		s.reply(wsReply{Action: "error", Error: "bad frame: " + err.Error()})
		return
	}
	switch req.Action {
	case "subscribe":
		id, err := s.b.SubscribeLocal(req.Topic, s.deliver)
		if err != nil {
			s.reply(wsReply{Action: "error", Error: err.Error()})
			return
		}
		s.subs[id] = struct{}{}
		s.reply(wsReply{Action: "subscribed", SID: id})
	case "unsubscribe":
		if _, mine := s.subs[req.SID]; !mine {
			s.reply(wsReply{Action: "error", SID: req.SID, Error: "unknown subscription"})
			return
		}
		delete(s.subs, req.SID)
		_ = s.b.cancelSubscription(req.SID)
		s.reply(wsReply{Action: "unsubscribed", SID: req.SID})
	case "publish":
		ev, err := cloudevents.ParseJSON(req.Event)
		if err != nil {
			s.reply(wsReply{Action: "error", Error: err.Error()})
			return
		}
		if err := s.b.PublishCE(ev); err != nil {
			s.reply(wsReply{Action: "error", Error: err.Error()})
			return
		}
		s.reply(wsReply{Action: "published", ID: ev.ID})
	default:
		s.reply(wsReply{Action: "error", Error: "unknown action " + req.Action})
	}
}

// reply enqueues a session frame (dropped once the session is dead).
func (s *wsSession) reply(r wsReply) {
	b, _ := json.Marshal(r)
	select {
	case s.out <- b:
	case <-s.dead:
	}
}

// deliver is the dispatch-side delivery hook for this session's
// subscriptions: it frames the rendered CloudEvent and enqueues it. A full
// queue blocks until the delivery context gives up, feeding the
// subscription's retry policy exactly like a slow HTTP consumer.
func (s *wsSession) deliver(ctx context.Context, sid string, event []byte) error {
	b, _ := json.Marshal(wsReply{Action: "event", SID: sid, Event: event})
	select {
	case s.out <- b:
		return nil
	case <-s.dead:
		return errWSClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubscribeLocal creates a connection-bound subscription delivering
// CloudEvents structured-mode bodies through deliver instead of a network
// transport. clarkTopic optionally filters ("{ns}a/b"; empty matches
// everything). Local subscriptions ride the same dispatch queues, retry
// policies and conservation accounting as remote ones, but are skipped by
// subscription snapshots — they cannot outlive their connection.
func (b *Broker) SubscribeLocal(clarkTopic string, deliver func(ctx context.Context, sid string, event []byte) error) (string, error) {
	canon := &mediation.Subscribe{
		Origin:   mediation.Dialect{Family: mediation.FamilyCE},
		Consumer: wsa.NewEPR(wsa.V200508, "urn:ws-messenger:websocket"),
		CEMode:   mediation.CEStructured,
	}
	if clarkTopic != "" {
		expr, ns, err := ceTopicExpr(clarkTopic)
		if err != nil {
			return "", err
		}
		canon.TopicExpr, canon.TopicDialect, canon.TopicNS = expr, topics.DialectConcrete, ns
	}
	flt, err := canon.BuildFilter()
	if err != nil {
		return "", err
	}
	expires, err := b.grantExpiry("", canon.Origin)
	if err != nil {
		return "", err
	}
	st := &subState{canon: canon, flt: flt}
	st.plan = mediation.DeliveryPlan{
		Dialect:         canon.Origin,
		ManagerAddress:  b.cfg.ManagerAddress,
		ProducerAddress: b.cfg.Address,
		CEMode:          canon.CEMode,
	}
	lease := b.store.CreateFunc(func(id string) any {
		st.plan.SubscriptionID = id
		st.local = func(ctx context.Context, event []byte) error {
			return deliver(ctx, id, event)
		}
		b.attach(id, st, false, expires)
		return st
	}, expires)
	return lease.ID, nil
}
