package core

// Subscribe conformance matrix: every supported spec version's front door
// is probed over the real HTTP stack with one valid subscribe and three
// canonical abuse classes, asserting the broker answers each with that
// version's own fault vocabulary (Table 2's fault columns). The "WSN 1.2"
// row drives the same wire namespace as 1.0 — the OASIS 1.2 submission is
// the 1.2-draft-01 namespace this implementation binds V1_0 to, and the
// paper folds the two together — but it earns its own row so the matrix
// mirrors the five specifications the paper compares.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
	"repro/internal/xsdt"
)

// Abuse classes applied uniformly to every version row.
const (
	confValid         = "valid"
	confGarbageExpiry = "garbage-expiry"
	confBadFilter     = "bad-filter"
	confUnknownTopic  = "unknown-topic"
)

var confClasses = []string{confValid, confGarbageExpiry, confBadFilter, confUnknownTopic}

const confTopicNS = "urn:grid"

// confRow is one spec version's column of the matrix: how to phrase each
// request class in that version's dialect, and which fault subcode the
// spec prescribes for the three abuse classes.
type confRow struct {
	name string
	ns   string // namespace the SubscribeResponse must answer in
	body func(class, sink string) *xmldom.Element
	want map[string]xmldom.Name // class → required fault subcode
}

// wseConfRow builds a WS-Eventing row. WSE has a single filtering fault —
// FilteringRequestedUnavailable covers both an uncompilable expression and
// a filter dialect the source does not support, so the unknown-topic class
// (phrased as a WS-Topics dialect in wse:Filter, which WSE cannot
// evaluate) lands on the same subcode as bad-filter.
func wseConfRow(name string, v wse.Version) confRow {
	return confRow{
		name: name,
		ns:   v.NS(),
		body: func(class, sink string) *xmldom.Element {
			req := &wse.SubscribeRequest{
				NotifyTo: wsa.NewEPR(v.WSAVersion(), sink),
				Expires:  "PT1H",
			}
			switch class {
			case confGarbageExpiry:
				req.Expires = "quarter-past-never"
			case confBadFilter:
				req.FilterExpr = "///[" // unparseable XPath in the default dialect
			case confUnknownTopic:
				req.FilterExpr = "t:jobs"
				req.FilterDialect = topics.DialectConcrete
				req.FilterNS = map[string]string{"t": confTopicNS}
			}
			return req.Element(v)
		},
		want: map[string]xmldom.Name{
			confGarbageExpiry: xmldom.N(v.NS(), "UnsupportedExpirationType"),
			confBadFilter:     xmldom.N(v.NS(), "FilteringRequestedUnavailable"),
			confUnknownTopic:  xmldom.N(v.NS(), "FilteringRequestedUnavailable"),
		},
	}
}

// wsnConfRow builds a WS-Notification row. WSN's fault vocabulary is
// finer-grained than WSE's: topics have their own fault distinct from
// filter compilation errors.
func wsnConfRow(name string, v wsnt.Version) confRow {
	return confRow{
		name: name,
		ns:   v.NS(),
		body: func(class, sink string) *xmldom.Element {
			req := &wsnt.SubscribeRequest{
				ConsumerReference: wsa.NewEPR(v.WSAVersion(), sink),
				// Every class carries a valid topic (required in 1.0) so
				// each abuse isolates exactly one defect.
				TopicExpression: "t:jobs",
				TopicDialect:    topics.DialectConcrete,
				TopicNS:         map[string]string{"t": confTopicNS},
			}
			switch class {
			case confGarbageExpiry:
				req.InitialTerminationTime = "quarter-past-never"
			case confBadFilter:
				req.ContentExpr = "///[" // 1.0 Selector / 1.3 MessageContent
			case confUnknownTopic:
				req.TopicDialect = "urn:example:bogus-topic-dialect"
			}
			return req.Element(v)
		},
		want: map[string]xmldom.Name{
			confGarbageExpiry: xmldom.N(v.NS(), "UnacceptableInitialTerminationTimeFault"),
			confBadFilter:     xmldom.N(v.NS(), "InvalidFilterFault"),
			confUnknownTopic:  xmldom.N(v.NS(), "TopicNotSupportedFault"),
		},
	}
}

// TestSubscribeConformanceMatrix drives the 5 × 4 matrix through one
// broker over httptest — the same parse → mediate → fault path a real
// deployment exercises, HTTP status codes included.
func TestSubscribeConformanceMatrix(t *testing.T) {
	client := &transport.HTTPClient{HC: &http.Client{Timeout: 5 * time.Second}}
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	broker, err := New(Config{
		Address:        srv.URL + "/",
		ManagerAddress: srv.URL + "/manage",
		Client:         client,
		SyncDelivery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux.Handle("/", transport.NewHTTPHandler(broker.FrontHandler()))
	mux.Handle("/manage", transport.NewHTTPHandler(broker.ManagerHandler()))
	sink := srv.URL + "/sink" // subscribe-time only; nothing is published

	rows := []confRow{
		wseConfRow("wse-1-2004", wse.V200401),
		wseConfRow("wse-8-2004", wse.V200408),
		wsnConfRow("wsn-1.0", wsnt.V1_0),
		wsnConfRow("wsn-1.2", wsnt.V1_0), // 1.2 submission: same wire namespace as 1.0
		wsnConfRow("wsn-1.3", wsnt.V1_3),
	}

	for _, row := range rows {
		for _, class := range confClasses {
			t.Run(row.name+"/"+class, func(t *testing.T) {
				env := soap.New(soap.V11)
				env.AddBody(row.body(class, sink))
				resp, err := client.Call(context.Background(), srv.URL+"/", env)

				want, wantFault := row.want[class]
				if !wantFault {
					if err != nil {
						t.Fatalf("valid subscribe rejected: %v", err)
					}
					if resp == nil || resp.FirstBody() == nil {
						t.Fatal("valid subscribe got an empty response")
					}
					if got := resp.FirstBody().Name; got != xmldom.N(row.ns, "SubscribeResponse") {
						t.Errorf("response body = %v, want SubscribeResponse in %s", got, row.ns)
					}
					return
				}

				if err == nil {
					t.Fatalf("%s subscribe accepted; want fault %s", class, want.Local)
				}
				f, ok := soap.ErrFault(err)
				if !ok {
					t.Fatalf("%s produced a non-fault error: %v", class, err)
				}
				if f.Subcode != want {
					t.Errorf("%s fault subcode = %v, want %v (reason: %s)", class, f.Subcode, want, f.Reason)
				}
				if f.Code != soap.FaultSender {
					t.Errorf("%s fault code = %v, want Sender", class, f.Code)
				}
			})
		}
	}
}

// TestPauseResumeFaultConformance pins the management-fault column of the
// matrix: WSN 1.3 distinguishes a pause/resume that fails for a known
// subscription (PauseFailedFault / ResumeFailedFault) from an unknown
// subscription reference (ResourceUnknownFault), while 1.0's coarser
// vocabulary answers ResourceUnknownFault for both. The "known but
// unpausable" state is an expired lease still in the store, reached by
// advancing an injected clock past the granted expiry.
func TestPauseResumeFaultConformance(t *testing.T) {
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	client := &transport.HTTPClient{HC: &http.Client{Timeout: 5 * time.Second}}
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	broker, err := New(Config{
		Address:        srv.URL + "/",
		ManagerAddress: srv.URL + "/manage",
		Client:         client,
		SyncDelivery:   true,
		Clock:          clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux.Handle("/", transport.NewHTTPHandler(broker.FrontHandler()))
	mux.Handle("/manage", transport.NewHTTPHandler(broker.ManagerHandler()))
	ctx := context.Background()
	sink := srv.URL + "/sink"

	subscribe := func(v wsnt.Version, expires string) (*wsnt.Subscriber, *wsnt.Handle) {
		t.Helper()
		s := &wsnt.Subscriber{Client: client, Version: v}
		h, err := s.Subscribe(ctx, srv.URL+"/", &wsnt.SubscribeRequest{
			ConsumerReference:      wsa.NewEPR(v.WSAVersion(), sink),
			TopicExpression:        "t:jobs",
			TopicDialect:           topics.DialectConcrete,
			TopicNS:                map[string]string{"t": confTopicNS},
			InitialTerminationTime: expires,
		})
		if err != nil {
			t.Fatalf("subscribe %v: %v", v, err)
		}
		return s, h
	}
	wantFault := func(err error, want xmldom.Name) {
		t.Helper()
		if err == nil {
			t.Fatalf("management call succeeded; want fault %s", want.Local)
		}
		f, ok := soap.ErrFault(err)
		if !ok {
			t.Fatalf("non-fault error: %v", err)
		}
		if f.Subcode != want {
			t.Errorf("fault subcode = %v, want %v (reason: %s)", f.Subcode, want, f.Reason)
		}
		if f.Code != soap.FaultSender {
			t.Errorf("fault code = %v, want Sender", f.Code)
		}
	}

	// A live 1.3 subscription pauses and resumes cleanly (control case).
	s13, h13 := subscribe(wsnt.V1_3, "PT1H")
	if err := s13.Pause(ctx, h13); err != nil {
		t.Fatalf("pause live: %v", err)
	}
	if err := s13.Resume(ctx, h13); err != nil {
		t.Fatalf("resume live: %v", err)
	}

	// A cancelled subscription is unknown, not pause-failed.
	sGone, hGone := subscribe(wsnt.V1_3, "PT1H")
	if err := sGone.Unsubscribe(ctx, hGone); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	wantFault(sGone.Pause(ctx, hGone), xmldom.N(wsnt.V1_3.NS(), "ResourceUnknownFault"))

	// 1.0 pins durations to absolute dateTimes (Table 2).
	s10, h10 := subscribe(wsnt.V1_0, xsdt.FormatDateTime(clock().Add(time.Hour)))

	advance(2 * time.Hour)

	// Expired but still in the store: 1.3 answers with the operation's own
	// failure fault, 1.0 with its only management fault.
	wantFault(s13.Pause(ctx, h13), xmldom.N(wsnt.V1_3.NS(), "PauseFailedFault"))
	wantFault(s13.Resume(ctx, h13), xmldom.N(wsnt.V1_3.NS(), "ResumeFailedFault"))
	wantFault(s10.Pause(ctx, h10), xmldom.N(wsnt.V1_0.NS(), "ResourceUnknownFault"))
	wantFault(s10.Resume(ctx, h10), xmldom.N(wsnt.V1_0.NS(), "ResourceUnknownFault"))
}
