package core

// Subscribe conformance matrix: every supported spec version's front door
// is probed over the real HTTP stack with one valid subscribe and three
// canonical abuse classes, asserting the broker answers each with that
// version's own fault vocabulary (Table 2's fault columns). The "WSN 1.2"
// row drives the same wire namespace as 1.0 — the OASIS 1.2 submission is
// the 1.2-draft-01 namespace this implementation binds V1_0 to, and the
// paper folds the two together — but it earns its own row so the matrix
// mirrors the five specifications the paper compares.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// Abuse classes applied uniformly to every version row.
const (
	confValid         = "valid"
	confGarbageExpiry = "garbage-expiry"
	confBadFilter     = "bad-filter"
	confUnknownTopic  = "unknown-topic"
)

var confClasses = []string{confValid, confGarbageExpiry, confBadFilter, confUnknownTopic}

const confTopicNS = "urn:grid"

// confRow is one spec version's column of the matrix: how to phrase each
// request class in that version's dialect, and which fault subcode the
// spec prescribes for the three abuse classes.
type confRow struct {
	name string
	ns   string // namespace the SubscribeResponse must answer in
	body func(class, sink string) *xmldom.Element
	want map[string]xmldom.Name // class → required fault subcode
}

// wseConfRow builds a WS-Eventing row. WSE has a single filtering fault —
// FilteringRequestedUnavailable covers both an uncompilable expression and
// a filter dialect the source does not support, so the unknown-topic class
// (phrased as a WS-Topics dialect in wse:Filter, which WSE cannot
// evaluate) lands on the same subcode as bad-filter.
func wseConfRow(name string, v wse.Version) confRow {
	return confRow{
		name: name,
		ns:   v.NS(),
		body: func(class, sink string) *xmldom.Element {
			req := &wse.SubscribeRequest{
				NotifyTo: wsa.NewEPR(v.WSAVersion(), sink),
				Expires:  "PT1H",
			}
			switch class {
			case confGarbageExpiry:
				req.Expires = "quarter-past-never"
			case confBadFilter:
				req.FilterExpr = "///[" // unparseable XPath in the default dialect
			case confUnknownTopic:
				req.FilterExpr = "t:jobs"
				req.FilterDialect = topics.DialectConcrete
				req.FilterNS = map[string]string{"t": confTopicNS}
			}
			return req.Element(v)
		},
		want: map[string]xmldom.Name{
			confGarbageExpiry: xmldom.N(v.NS(), "UnsupportedExpirationType"),
			confBadFilter:     xmldom.N(v.NS(), "FilteringRequestedUnavailable"),
			confUnknownTopic:  xmldom.N(v.NS(), "FilteringRequestedUnavailable"),
		},
	}
}

// wsnConfRow builds a WS-Notification row. WSN's fault vocabulary is
// finer-grained than WSE's: topics have their own fault distinct from
// filter compilation errors.
func wsnConfRow(name string, v wsnt.Version) confRow {
	return confRow{
		name: name,
		ns:   v.NS(),
		body: func(class, sink string) *xmldom.Element {
			req := &wsnt.SubscribeRequest{
				ConsumerReference: wsa.NewEPR(v.WSAVersion(), sink),
				// Every class carries a valid topic (required in 1.0) so
				// each abuse isolates exactly one defect.
				TopicExpression: "t:jobs",
				TopicDialect:    topics.DialectConcrete,
				TopicNS:         map[string]string{"t": confTopicNS},
			}
			switch class {
			case confGarbageExpiry:
				req.InitialTerminationTime = "quarter-past-never"
			case confBadFilter:
				req.ContentExpr = "///[" // 1.0 Selector / 1.3 MessageContent
			case confUnknownTopic:
				req.TopicDialect = "urn:example:bogus-topic-dialect"
			}
			return req.Element(v)
		},
		want: map[string]xmldom.Name{
			confGarbageExpiry: xmldom.N(v.NS(), "UnacceptableInitialTerminationTimeFault"),
			confBadFilter:     xmldom.N(v.NS(), "InvalidFilterFault"),
			confUnknownTopic:  xmldom.N(v.NS(), "TopicNotSupportedFault"),
		},
	}
}

// TestSubscribeConformanceMatrix drives the 5 × 4 matrix through one
// broker over httptest — the same parse → mediate → fault path a real
// deployment exercises, HTTP status codes included.
func TestSubscribeConformanceMatrix(t *testing.T) {
	client := &transport.HTTPClient{HC: &http.Client{Timeout: 5 * time.Second}}
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	broker, err := New(Config{
		Address:        srv.URL + "/",
		ManagerAddress: srv.URL + "/manage",
		Client:         client,
		SyncDelivery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux.Handle("/", transport.NewHTTPHandler(broker.FrontHandler()))
	mux.Handle("/manage", transport.NewHTTPHandler(broker.ManagerHandler()))
	sink := srv.URL + "/sink" // subscribe-time only; nothing is published

	rows := []confRow{
		wseConfRow("wse-1-2004", wse.V200401),
		wseConfRow("wse-8-2004", wse.V200408),
		wsnConfRow("wsn-1.0", wsnt.V1_0),
		wsnConfRow("wsn-1.2", wsnt.V1_0), // 1.2 submission: same wire namespace as 1.0
		wsnConfRow("wsn-1.3", wsnt.V1_3),
	}

	for _, row := range rows {
		for _, class := range confClasses {
			t.Run(row.name+"/"+class, func(t *testing.T) {
				env := soap.New(soap.V11)
				env.AddBody(row.body(class, sink))
				resp, err := client.Call(context.Background(), srv.URL+"/", env)

				want, wantFault := row.want[class]
				if !wantFault {
					if err != nil {
						t.Fatalf("valid subscribe rejected: %v", err)
					}
					if resp == nil || resp.FirstBody() == nil {
						t.Fatal("valid subscribe got an empty response")
					}
					if got := resp.FirstBody().Name; got != xmldom.N(row.ns, "SubscribeResponse") {
						t.Errorf("response body = %v, want SubscribeResponse in %s", got, row.ns)
					}
					return
				}

				if err == nil {
					t.Fatalf("%s subscribe accepted; want fault %s", class, want.Local)
				}
				f, ok := soap.ErrFault(err)
				if !ok {
					t.Fatalf("%s produced a non-fault error: %v", class, err)
				}
				if f.Subcode != want {
					t.Errorf("%s fault subcode = %v, want %v (reason: %s)", class, f.Subcode, want, f.Reason)
				}
				if f.Code != soap.FaultSender {
					t.Errorf("%s fault code = %v, want Sender", class, f.Code)
				}
			})
		}
	}
}
