package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cloudevents"
	"repro/internal/mqtt"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/wspush"
	"repro/internal/xmldom"
)

// ceSink is an HTTP CloudEvents consumer: it records every delivery's
// content type and body.
type ceSink struct {
	mu     sync.Mutex
	bodies [][]byte
	types  []string
}

func (s *ceSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	s.mu.Lock()
	s.bodies = append(s.bodies, body)
	s.types = append(s.types, r.Header.Get("Content-Type"))
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *ceSink) received() ([][]byte, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.bodies...), append([]string(nil), s.types...)
}

// TestFrontDoorInterop is the four-front-doors end-to-end story over real
// sockets: a WSE 8/2004 SOAP publish reaches a CloudEvents HTTP consumer, a
// WebSocket consumer and an MQTT QoS 1 consumer; a CloudEvents POST and an
// MQTT QoS 1 PUBLISH each reach the WSN 1.3 SOAP sink and the modern
// consumers. The dispatch conservation law and the wsm_ce_* / wsm_ws_* /
// wsm_mqtt_* metrics cover all four front doors at once.
func TestFrontDoorInterop(t *testing.T) {
	client := &transport.HTTPClient{HC: &http.Client{Timeout: 10 * time.Second}}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, "broker")

	sink := &ceSink{}
	ceSrv := httptest.NewServer(sink)
	defer ceSrv.Close()
	wsnConsumer := &wsnt.Consumer{}
	wsnSrv := httptest.NewServer(transport.NewHTTPHandler(wsnConsumer))
	defer wsnSrv.Close()

	mux := http.NewServeMux()
	brokerSrv := httptest.NewServer(mux)
	defer brokerSrv.Close()
	broker, err := New(Config{
		Address:        brokerSrv.URL + "/",
		ManagerAddress: brokerSrv.URL + "/manage",
		Client:         client,
		SyncDelivery:   true,
		Obs:            rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux.Handle("/", transport.NewHTTPHandler(broker.FrontHandler()))
	mux.Handle("/manage", transport.NewHTTPHandler(broker.ManagerHandler()))
	mux.Handle("/ce", broker.CEHandler())
	mux.Handle("/ws", broker.WSHandler())
	mux.Handle("/metrics", reg.Handler())

	mqttLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mqttLn.Close()
	go broker.ServeMQTT(mqttLn)

	ctx := context.Background()
	topic := topics.NewPath("urn:grid", "jobs")

	// CloudEvents consumer subscribes through the JSON control vocabulary.
	ctrl := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(brokerSrv.URL+"/ce", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("/ce control: %v", err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	status, out := ctrl(fmt.Sprintf(`{"sink":%q,"topic":"{urn:grid}jobs"}`, ceSrv.URL))
	if status != http.StatusCreated || out["id"] == "" {
		t.Fatalf("ce subscribe: status=%d out=%v", status, out)
	}
	ceSubID := out["id"].(string)

	// WebSocket consumer subscribes over the socket.
	wsCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	conn, err := wspush.Dial(wsCtx, brokerSrv.URL+"/ws")
	if err != nil {
		t.Fatalf("ws dial: %v", err)
	}
	defer conn.Close()
	readReply := func() wsReply {
		t.Helper()
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		op, p, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("ws read: %v", err)
		}
		if op != wspush.OpText {
			t.Fatalf("ws read op = %d", op)
		}
		var r wsReply
		if err := json.Unmarshal(p, &r); err != nil {
			t.Fatalf("ws reply: %v (%q)", err, p)
		}
		if r.Action == "error" {
			t.Fatalf("ws error reply: %s", r.Error)
		}
		return r
	}
	if err := conn.WriteMessage(wspush.OpText, []byte(`{"action":"subscribe","topic":"{urn:grid}jobs"}`)); err != nil {
		t.Fatalf("ws subscribe: %v", err)
	}
	sub := readReply()
	if sub.Action != "subscribed" || sub.SID == "" {
		t.Fatalf("ws subscribe reply: %+v", sub)
	}

	// MQTT consumer subscribes at QoS 1 over raw TCP.
	mc, _, err := mqtt.Dial(mqttLn.Addr().String(), mqtt.ConnectOptions{
		ClientID: "interop-consumer", CleanSession: true,
	})
	if err != nil {
		t.Fatalf("mqtt dial: %v", err)
	}
	defer mc.Close()
	codes, err := mc.Subscribe(mqtt.TopicFilterQoS{Filter: "{urn:grid}jobs", QoS: 1})
	if err != nil || len(codes) != 1 || codes[0] != 1 {
		t.Fatalf("mqtt subscribe: codes=%v err=%v", codes, err)
	}
	readMQTT := func() mqtt.Message {
		t.Helper()
		select {
		case m, ok := <-mc.Messages():
			if !ok {
				t.Fatalf("mqtt consumer died: %v", mc.Err())
			}
			return m
		case <-time.After(5 * time.Second):
			t.Fatal("mqtt consumer: no delivery")
		}
		return mqtt.Message{}
	}

	// WSN 1.3 SOAP consumer subscribes on the classic front door.
	ns := &wsnt.Subscriber{Client: client, Version: wsnt.V1_3}
	if _, err := ns.Subscribe(ctx, brokerSrv.URL+"/", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, wsnSrv.URL),
		TopicExpression:   "g:jobs",
		TopicDialect:      topics.DialectConcrete,
		TopicNS:           map[string]string{"g": "urn:grid"},
	}); err != nil {
		t.Fatalf("wsn subscribe: %v", err)
	}

	// A WSE 8/2004 raw SOAP publish crosses into both modern front doors.
	env := soap.New(soap.V11)
	(&wsa.MessageHeaders{Version: wsa.V200408, To: brokerSrv.URL + "/",
		Action: "urn:test:publish"}).Apply(env)
	env.AddHeader(xmldom.Elem(wse.TopicHeaderName.Space, wse.TopicHeaderName.Local, topic.String()))
	env.AddBody(xmldom.Elem("urn:grid", "Ev", xmldom.Elem("urn:grid", "v", "interop")))
	if err := client.Send(ctx, brokerSrv.URL+"/", env); err != nil {
		t.Fatalf("wse publish: %v", err)
	}

	// The CloudEvents HTTP consumer got it in structured mode.
	bodies, ctypes := sink.received()
	if len(bodies) != 1 {
		t.Fatalf("ce sink deliveries = %d, want 1", len(bodies))
	}
	if !strings.HasPrefix(ctypes[0], cloudevents.ContentTypeJSON) {
		t.Errorf("ce delivery content type = %q", ctypes[0])
	}
	ev, err := cloudevents.ParseJSON(bodies[0])
	if err != nil {
		t.Fatalf("ce delivery not a CloudEvent: %v (%s)", err, bodies[0])
	}
	if ev.Type != "{urn:grid}jobs" {
		t.Errorf("ce delivery type = %q, want {urn:grid}jobs", ev.Type)
	}
	if !strings.Contains(string(ev.Data), "interop") {
		t.Errorf("ce delivery lost the payload: %s", ev.Data)
	}

	// The WebSocket consumer got the same event as a session frame.
	frame := readReply()
	if frame.Action != "event" || frame.SID != sub.SID {
		t.Fatalf("ws event frame: %+v", frame)
	}
	wsEv, err := cloudevents.ParseJSON(frame.Event)
	if err != nil {
		t.Fatalf("ws event not a CloudEvent: %v", err)
	}
	if wsEv.Type != "{urn:grid}jobs" || !strings.Contains(string(wsEv.Data), "interop") {
		t.Errorf("ws event = type %q data %s", wsEv.Type, wsEv.Data)
	}

	// The MQTT consumer got it too, as a QoS 1 PUBLISH it had to PUBACK.
	mm := readMQTT()
	if mm.Topic != "{urn:grid}jobs" || mm.QoS != 1 {
		t.Fatalf("mqtt delivery: topic=%q qos=%d", mm.Topic, mm.QoS)
	}
	if !strings.Contains(string(mm.Payload), "interop") {
		t.Errorf("mqtt delivery lost the payload: %s", mm.Payload)
	}

	// A CloudEvents POST crosses back into the SOAP world (and fans out to
	// the two modern consumers as well).
	ceBody := `{"specversion":"1.0","id":"ce-interop-1","source":"urn:test:producer",` +
		`"type":"{urn:grid}jobs","datacontenttype":"application/json","data":{"n":7}}`
	resp, err := http.Post(brokerSrv.URL+"/ce", cloudevents.ContentTypeJSON, strings.NewReader(ceBody))
	if err != nil {
		t.Fatalf("ce publish: %v", err)
	}
	receipt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ce publish status = %d (%s)", resp.StatusCode, receipt)
	}
	if !bytes.Contains(receipt, []byte(`"accepted":1`)) && !bytes.Contains(receipt, []byte(`"accepted": 1`)) {
		t.Errorf("ce publish receipt = %s", receipt)
	}
	if got := wsnConsumer.Count(); got != 2 {
		t.Fatalf("wsn consumer deliveries = %d, want 2 (WSE publish + CE publish)", got)
	}
	// CE→CE round trip preserves the producer's own attributes.
	bodies, _ = sink.received()
	if len(bodies) != 2 {
		t.Fatalf("ce sink deliveries = %d, want 2", len(bodies))
	}
	ev2, err := cloudevents.ParseJSON(bodies[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev2.ID != "ce-interop-1" || ev2.Source != "urn:test:producer" {
		t.Errorf("ce round trip rewrote identity: id=%q source=%q", ev2.ID, ev2.Source)
	}
	frame = readReply()
	if frame.Action != "event" {
		t.Fatalf("ws second frame: %+v", frame)
	}
	if mm = readMQTT(); !strings.Contains(string(mm.Payload), `"n":7`) {
		t.Errorf("mqtt second delivery = %s", mm.Payload)
	}

	// An MQTT QoS 1 PUBLISH crosses into all three other doors: PUBACK
	// from the broker means the common ingress accepted it.
	mp, _, err := mqtt.Dial(mqttLn.Addr().String(), mqtt.ConnectOptions{
		ClientID: "interop-producer", CleanSession: true,
	})
	if err != nil {
		t.Fatalf("mqtt producer dial: %v", err)
	}
	defer mp.Close()
	if err := mp.Publish("{urn:grid}jobs", []byte(`{"job":"fan-in"}`), 1, false); err != nil {
		t.Fatalf("mqtt publish: %v", err)
	}
	if got := wsnConsumer.Count(); got != 3 {
		t.Fatalf("wsn consumer deliveries = %d, want 3 (WSE + CE + MQTT publishes)", got)
	}
	bodies, _ = sink.received()
	if len(bodies) != 3 {
		t.Fatalf("ce sink deliveries = %d, want 3", len(bodies))
	}
	ev3, err := cloudevents.ParseJSON(bodies[2])
	if err != nil {
		t.Fatal(err)
	}
	if ev3.Source != "urn:ws-messenger:mqtt:interop-producer" || ev3.Type != "{urn:grid}jobs" {
		t.Errorf("mqtt-origin event: source=%q type=%q", ev3.Source, ev3.Type)
	}
	if !strings.Contains(string(ev3.Data), "fan-in") {
		t.Errorf("mqtt-origin event lost the payload: %s", ev3.Data)
	}
	if frame = readReply(); frame.Action != "event" {
		t.Fatalf("ws third frame: %+v", frame)
	}
	if mm = readMQTT(); !strings.Contains(string(mm.Payload), "fan-in") {
		t.Errorf("mqtt third delivery = %s", mm.Payload)
	}

	// Unsubscribe all modern consumers through their own vocabularies.
	if err := conn.WriteMessage(wspush.OpText,
		[]byte(`{"action":"unsubscribe","sid":"`+sub.SID+`"}`)); err != nil {
		t.Fatalf("ws unsubscribe: %v", err)
	}
	if r := readReply(); r.Action != "unsubscribed" {
		t.Fatalf("ws unsubscribe reply: %+v", r)
	}
	if status, out := ctrl(fmt.Sprintf(`{"unsubscribe":%q}`, ceSubID)); status != http.StatusOK {
		t.Fatalf("ce unsubscribe: status=%d out=%v", status, out)
	}
	if err := mc.Unsubscribe("{urn:grid}jobs"); err != nil {
		t.Fatalf("mqtt unsubscribe: %v", err)
	}
	_ = mc.Disconnect()
	_ = mp.Disconnect()

	// Conservation law across all four front doors.
	es := broker.DispatchStats()
	if es.Matched == 0 {
		t.Fatal("no dispatches recorded")
	}
	if es.Matched != es.Delivered+es.Dropped+es.Failed+es.DeadLettered {
		t.Fatalf("conservation violated: %+v", es)
	}

	// The new front doors are observable: scrape the registry.
	mresp, err := http.Get(brokerSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"wsm_ce_published_total",
		"wsm_ce_deliveries_total",
		"wsm_ce_subscriptions",
		"wsm_ws_connections",
		"wsm_ws_connections_total",
		"wsm_ws_events_total",
		"wsm_mqtt_connections",
		"wsm_mqtt_connections_total",
		"wsm_mqtt_subscriptions",
		"wsm_mqtt_published_total",
		"wsm_mqtt_deliveries_total",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("metrics exposition lacks %s", want)
		}
	}
	for _, wantNonZero := range []string{
		"wsm_ce_published_total", "wsm_ws_events_total",
		"wsm_mqtt_published_total", "wsm_mqtt_deliveries_total",
	} {
		found := false
		for _, line := range strings.Split(string(metrics), "\n") {
			if strings.HasPrefix(line, wantNonZero) && !strings.HasSuffix(line, " 0") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s never incremented", wantNonZero)
		}
	}
}
