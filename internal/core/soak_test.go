package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/workload"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// TestSoakConcurrentChurn drives the async broker with concurrent
// subscribers (both specs), publishers (both specs), unsubscribers, a
// running scavenger and short-lived subscriptions, then checks the
// system-level invariants: no panic, no deadlock, accounting consistent,
// and a quiescent final state.
func TestSoakConcurrentChurn(t *testing.T) {
	lb := transport.NewLoopback()
	broker, err := New(Config{
		Address:        "svc://wsm",
		ManagerAddress: "svc://wsm-subs",
		Client:         lb,
		QueueDepth:     512,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("svc://wsm", broker.FrontHandler())
	lb.Register("svc://wsm-subs", broker.ManagerHandler())

	var received atomic.Int64
	counter := transport.HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		received.Add(1)
		return nil, nil
	})
	for i := 0; i < 8; i++ {
		lb.Register(fmt.Sprintf("svc://sink%d", i), counter)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go broker.Store().Run(ctx, 5*time.Millisecond)

	gen := workload.New(workload.Config{Seed: 99, Size: workload.Small})
	events := gen.Batch(64)

	var wg sync.WaitGroup
	const workers = 4
	const iters = 60
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ws := &wse.Subscriber{Client: lb, Version: wse.V200408}
			ns := &wsnt.Subscriber{Client: lb, Version: wsnt.V1_3}
			var wseHandles []*wse.Handle
			var wsnHandles []*wsnt.Handle
			for i := 0; i < iters; i++ {
				sink := fmt.Sprintf("svc://sink%d", rng.Intn(8))
				switch rng.Intn(6) {
				case 0:
					h, err := ws.Subscribe(ctx, "svc://wsm", &wse.SubscribeRequest{
						NotifyTo: wsa.NewEPR(wsa.V200408, sink),
						Expires:  "PT0.05S", // lapses quickly: scavenger food
					})
					if err == nil {
						wseHandles = append(wseHandles, h)
					}
				case 1:
					h, err := ns.Subscribe(ctx, "svc://wsm", &wsnt.SubscribeRequest{
						ConsumerReference: wsa.NewEPR(wsa.V200508, sink),
					})
					if err == nil {
						wsnHandles = append(wsnHandles, h)
					}
				case 2, 3:
					ev := events[rng.Intn(len(events))]
					broker.Publish(ev.Topic, ev.Payload)
				case 4:
					if len(wseHandles) > 0 {
						h := wseHandles[len(wseHandles)-1]
						wseHandles = wseHandles[:len(wseHandles)-1]
						ws.Unsubscribe(ctx, h) // may already be expired: fine
					}
				case 5:
					if len(wsnHandles) > 0 {
						h := wsnHandles[len(wsnHandles)-1]
						wsnHandles = wsnHandles[:len(wsnHandles)-1]
						ns.Renew(ctx, h, "PT1H")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	broker.Flush()
	cancel()

	st := broker.Stats()
	if st.Published == 0 {
		t.Fatal("soak published nothing")
	}
	// Accounting: every delivery attempt is either delivered or failed;
	// drops are counted separately and no sink ever errors here.
	if st.Failures != 0 {
		t.Errorf("unexpected delivery failures: %d", st.Failures)
	}
	if int64(st.Delivered) != received.Load() {
		t.Errorf("delivered counter %d != sink receipts %d", st.Delivered, received.Load())
	}
	// Final publish to whoever is left must still work.
	if err := broker.Publish(topics.NewPath("urn:t", "final"), xmldom.Elem("urn:t", "bye")); err != nil {
		t.Fatal(err)
	}
	broker.Flush()
	broker.Shutdown()
	if broker.SubscriptionCount() != 0 {
		t.Errorf("subscriptions after shutdown: %d", broker.SubscriptionCount())
	}
}
