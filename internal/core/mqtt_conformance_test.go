package core

// MQTT QoS conformance matrix: the MQTT front door is probed at the packet
// level — a raw codec connection, no auto-acking client — across QoS 0/1/2
// × clean/persistent sessions × a connection restart mid-handshake,
// pinning the exact ack-packet sequence the 3.1.1 spec prescribes for each
// cell. It is the MQTT analogue of the five-version subscribe conformance
// matrix: same broker, same dispatch machinery, a different front door's
// fault and retry vocabulary.
//
// The restart column is where the QoS contracts earn their names:
//
//	QoS 0  the message is gone (clean) or replayed from the pause buffer
//	       (persistent) — at most once, never a duplicate
//	QoS 1  persistent sessions see the same packet id again with DUP=1;
//	       clean sessions see nothing — at least once, dupes possible
//	QoS 2  persistent sessions resume at PUBREL without a second PUBLISH
//	       ([MQTT-4.3.3]); inbound, a DUP re-PUBLISH of an id the broker
//	       already owns is absorbed by the dedup set — exactly once
import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cloudevents"
	"repro/internal/dispatch"
	"repro/internal/mqtt"
	"repro/internal/obs"
	"repro/internal/transport"
)

// confMQTT is a packet-level MQTT connection: every inbound packet is read
// and asserted explicitly, so tests pin exact wire sequences.
type confMQTT struct {
	t  *testing.T
	nc net.Conn
	c  *mqtt.Conn
}

// confDial connects and runs the CONNECT/CONNACK handshake, asserting the
// broker's session-present flag ([MQTT-3.2.2-2]).
func confDial(t *testing.T, addr, clientID string, clean, wantPresent bool) *confMQTT {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := &confMQTT{t: t, nc: nc, c: mqtt.NewConn(nc)}
	c.send(&mqtt.Connect{ClientID: clientID, CleanSession: clean})
	ack, ok := c.read().(*mqtt.Connack)
	if !ok || ack.Code != mqtt.ConnAccepted {
		t.Fatalf("handshake: got %#v", ack)
	}
	if ack.SessionPresent != wantPresent {
		t.Fatalf("session present = %v, want %v", ack.SessionPresent, wantPresent)
	}
	return c
}

func (c *confMQTT) send(p mqtt.Packet) {
	c.t.Helper()
	if err := c.c.WritePacket(p, 5*time.Second); err != nil {
		c.t.Fatalf("write %T: %v", p, err)
	}
}

func (c *confMQTT) read() mqtt.Packet {
	c.t.Helper()
	p, err := c.c.ReadPacket(time.Now().Add(5 * time.Second))
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	return p
}

// expectPublish pins the next packet as a PUBLISH with the given shape.
func (c *confMQTT) expectPublish(topic string, qos byte, dup bool) *mqtt.Publish {
	c.t.Helper()
	p, ok := c.read().(*mqtt.Publish)
	if !ok {
		c.t.Fatalf("expected PUBLISH, got %#v", p)
	}
	if p.Topic != topic || p.QoS != qos || p.Dup != dup {
		c.t.Fatalf("PUBLISH topic=%q qos=%d dup=%v, want %q/%d/%v", p.Topic, p.QoS, p.Dup, topic, qos, dup)
	}
	if qos == 0 && p.PacketID != 0 {
		c.t.Fatalf("QoS 0 PUBLISH carries packet id %d", p.PacketID)
	}
	if qos > 0 && p.PacketID == 0 {
		c.t.Fatal("QoS >0 PUBLISH without a packet id")
	}
	return p
}

// expectAck pins the next packet as the given acknowledgement.
func (c *confMQTT) expectAck(ptype byte, pid uint16) {
	c.t.Helper()
	a, ok := c.read().(*mqtt.Ack)
	if !ok || a.PacketType != ptype || a.PacketID != pid {
		c.t.Fatalf("expected ack type %d pid %d, got %#v", ptype, pid, a)
	}
}

// subscribe pins the SUBSCRIBE → SUBACK exchange with the granted code.
func (c *confMQTT) subscribe(pid uint16, filter string, qos byte) {
	c.t.Helper()
	c.send(&mqtt.Subscribe{PacketID: pid, Filters: []mqtt.TopicFilterQoS{{Filter: filter, QoS: qos}}})
	sa, ok := c.read().(*mqtt.Suback)
	if !ok || sa.PacketID != pid || len(sa.Codes) != 1 || sa.Codes[0] != qos {
		c.t.Fatalf("SUBACK = %#v, want pid %d code %d", sa, pid, qos)
	}
}

// expectSilence asserts nothing arrives within d — the sequence is over.
func (c *confMQTT) expectSilence(d time.Duration) {
	c.t.Helper()
	p, err := c.c.ReadPacket(time.Now().Add(d))
	if err == nil {
		c.t.Fatalf("expected silence, got %#v", p)
	}
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		c.t.Fatalf("expected read timeout, got %v", err)
	}
}

func (c *confMQTT) disconnect() {
	c.t.Helper()
	c.send(mqtt.Disconnect{})
	c.nc.Close()
}

func (c *confMQTT) drop() { c.nc.Close() } // abrupt: no DISCONNECT

// TestMQTTQoSConformanceMatrix drives the matrix through one broker over a
// real TCP listener. Publishes enter through the common CloudEvents
// ingress, so every cell exercises the full dispatch path — match, filter,
// retry — not an MQTT-only shortcut.
func TestMQTTQoSConformanceMatrix(t *testing.T) {
	reg := obs.NewRegistry()
	broker, err := New(Config{
		Address:      "svc://conf/",
		Client:       &transport.HTTPClient{},
		SyncDelivery: true,
		// Fast retries so the restart column's reconnect lands inside the
		// redelivery window; closed subscriptions abort the cycle early.
		Retry: &dispatch.RetryPolicy{MaxAttempts: 100, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond},
		Obs:   obs.NewRecorder(reg, "broker"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go broker.ServeMQTT(ln)
	addr := ln.Addr().String()

	// publish pushes one event for the arm through the CE ingress; with
	// SyncDelivery it returns only after the delivery cycle settles, so
	// arms run it on a goroutine while the test drives the consumer side.
	publish := func(topic, arm string) chan error {
		done := make(chan error, 1)
		path, err := mqtt.PathForTopic(topic)
		if err != nil {
			t.Fatalf("path for %q: %v", topic, err)
		}
		ev := &cloudevents.Event{
			SpecVersion: cloudevents.SpecVersion,
			ID:          "conf-" + strings.ReplaceAll(topic, "/", "-") + "-" + arm,
			Source:      "urn:conf:producer",
			Type:        cloudevents.TypeForTopic(path),
			Data:        json.RawMessage(fmt.Sprintf(`{"arm":%q}`, arm)),
		}
		go func() { done <- broker.PublishCE(ev) }()
		return done
	}
	settle := func(done chan error) {
		t.Helper()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("publish: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("publish never settled")
		}
	}
	// waitGone blocks until the arm's subscription has left the topic
	// index (clean-session teardown runs on the serve goroutine).
	waitGone := func(topic string) {
		t.Helper()
		path, _ := mqtt.PathForTopic(topic)
		for deadline := time.Now().Add(5 * time.Second); ; {
			if len(broker.engine.Candidates(path)) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("subscription never cancelled")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// waitPaused blocks until the persistent session's subscription is
	// pause-buffering (detach pauses the engine before the store).
	waitPaused := func(clientID string) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); ; {
			paused := true
			broker.mqtt.mu.Lock()
			s := broker.mqtt.sessions[clientID]
			broker.mqtt.mu.Unlock()
			if s == nil {
				t.Fatal("persistent session evaporated")
			}
			s.mu.Lock()
			offline := s.conn == nil
			subs := make([]*mqttSub, 0, len(s.subs))
			for _, sub := range s.subs {
				subs = append(subs, sub)
			}
			s.mu.Unlock()
			for _, sub := range subs {
				sn, err := broker.store.Get(sub.subID)
				if err != nil || !sn.Paused {
					paused = false
				}
			}
			if offline && paused && len(subs) > 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("session never paused")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	sessions := []struct {
		name  string
		clean bool
	}{{"clean", true}, {"persistent", false}}

	// Steady column: one PUBLISH at the granted QoS, the spec's exact ack
	// handshake, then wire silence.
	for _, ses := range sessions {
		for qos := byte(0); qos <= 2; qos++ {
			t.Run(fmt.Sprintf("qos%d/%s/steady", qos, ses.name), func(t *testing.T) {
				topic := fmt.Sprintf("conf/%s/q%d", ses.name, qos)
				id := fmt.Sprintf("conf-%s-q%d", ses.name, qos)
				c := confDial(t, addr, id, ses.clean, false)
				defer c.drop()
				c.subscribe(1, topic, qos)
				done := publish(topic, "steady")
				p := c.expectPublish(topic, qos, false)
				if !strings.Contains(string(p.Payload), `"arm":"steady"`) {
					t.Errorf("payload = %s", p.Payload)
				}
				switch qos {
				case 1:
					c.send(&mqtt.Ack{PacketType: mqtt.PUBACK, PacketID: p.PacketID})
				case 2:
					c.send(&mqtt.Ack{PacketType: mqtt.PUBREC, PacketID: p.PacketID})
					c.expectAck(mqtt.PUBREL, p.PacketID)
					c.send(&mqtt.Ack{PacketType: mqtt.PUBCOMP, PacketID: p.PacketID})
				}
				settle(done)
				c.expectSilence(150 * time.Millisecond) // exactly one delivery
				c.send(&mqtt.Unsubscribe{PacketID: 2, Filters: []string{topic}})
				c.expectAck(mqtt.UNSUBACK, 2)
				c.disconnect()
			})
		}
	}

	// Restart column: tear the TCP connection mid-contract and pin what
	// each QoS × session cell does about it.
	t.Run("qos0/clean/restart", func(t *testing.T) {
		topic := "conf/restart/q0c"
		c := confDial(t, addr, "conf-r-q0c", true, false)
		c.subscribe(1, topic, 0)
		c.drop()
		waitGone(topic) // clean teardown cancels the subscription
		settle(publish(topic, "lost"))
		// At most once: the message is gone; a reconnect starts empty.
		c2 := confDial(t, addr, "conf-r-q0c", true, false)
		defer c2.drop()
		c2.expectSilence(150 * time.Millisecond)
		c2.disconnect()
	})
	t.Run("qos0/persistent/restart", func(t *testing.T) {
		topic := "conf/restart/q0p"
		c := confDial(t, addr, "conf-r-q0p", false, false)
		c.subscribe(1, topic, 0)
		c.drop()
		waitPaused("conf-r-q0p")
		settle(publish(topic, "buffered")) // accept buffers; publish settles
		// The pause buffer replays on reconnect — after the CONNACK.
		c2 := confDial(t, addr, "conf-r-q0p", false, true)
		defer c2.drop()
		p := c2.expectPublish(topic, 0, false)
		if !strings.Contains(string(p.Payload), `"arm":"buffered"`) {
			t.Errorf("payload = %s", p.Payload)
		}
		c2.expectSilence(150 * time.Millisecond)
		c2.disconnect()
	})
	t.Run("qos1/clean/restart", func(t *testing.T) {
		topic := "conf/restart/q1c"
		c := confDial(t, addr, "conf-r-q1c", true, false)
		c.subscribe(1, topic, 1)
		done := publish(topic, "unacked")
		c.expectPublish(topic, 1, false)
		c.drop() // crash before PUBACK
		settle(done)
		// Clean sessions forget in-flight state: no DUP redelivery.
		c2 := confDial(t, addr, "conf-r-q1c", true, false)
		defer c2.drop()
		c2.expectSilence(150 * time.Millisecond)
		c2.disconnect()
	})
	t.Run("qos1/persistent/restart", func(t *testing.T) {
		topic := "conf/restart/q1p"
		c := confDial(t, addr, "conf-r-q1p", false, false)
		c.subscribe(1, topic, 1)
		done := publish(topic, "redelivered")
		first := c.expectPublish(topic, 1, false)
		c.drop() // crash before PUBACK
		// At least once: the same packet id comes back with DUP=1.
		c2 := confDial(t, addr, "conf-r-q1p", false, true)
		defer c2.drop()
		again := c2.expectPublish(topic, 1, true)
		if again.PacketID != first.PacketID {
			t.Fatalf("redelivery pid = %d, want %d", again.PacketID, first.PacketID)
		}
		c2.send(&mqtt.Ack{PacketType: mqtt.PUBACK, PacketID: again.PacketID})
		settle(done)
		c2.expectSilence(150 * time.Millisecond)
		c2.disconnect()
	})
	t.Run("qos2/clean/restart", func(t *testing.T) {
		topic := "conf/restart/q2c"
		c := confDial(t, addr, "conf-r-q2c", true, false)
		c.subscribe(1, topic, 2)
		done := publish(topic, "halfway")
		p := c.expectPublish(topic, 2, false)
		c.send(&mqtt.Ack{PacketType: mqtt.PUBREC, PacketID: p.PacketID})
		c.expectAck(mqtt.PUBREL, p.PacketID)
		c.drop() // crash before PUBCOMP
		settle(done)
		c2 := confDial(t, addr, "conf-r-q2c", true, false)
		defer c2.drop()
		c2.expectSilence(150 * time.Millisecond)
		c2.disconnect()
	})
	t.Run("qos2/persistent/restart", func(t *testing.T) {
		topic := "conf/restart/q2p"
		c := confDial(t, addr, "conf-r-q2p", false, false)
		c.subscribe(1, topic, 2)
		done := publish(topic, "resumed")
		p := c.expectPublish(topic, 2, false)
		c.send(&mqtt.Ack{PacketType: mqtt.PUBREC, PacketID: p.PacketID})
		c.expectAck(mqtt.PUBREL, p.PacketID)
		c.drop() // crash before PUBCOMP
		// Exactly once: the handshake resumes at PUBREL with the same id —
		// never a second PUBLISH after PUBREC ([MQTT-4.3.3]).
		c2 := confDial(t, addr, "conf-r-q2p", false, true)
		defer c2.drop()
		c2.expectAck(mqtt.PUBREL, p.PacketID)
		c2.send(&mqtt.Ack{PacketType: mqtt.PUBCOMP, PacketID: p.PacketID})
		settle(done)
		c2.expectSilence(150 * time.Millisecond)
		c2.disconnect()
	})

	// Inbound exactly-once: the broker is the receiver of the QoS 2
	// handshake, and a restart must not double-ingest. A QoS 0 observer
	// counts what actually reached dispatch.
	t.Run("inbound-qos2/persistent/restart", func(t *testing.T) {
		topic := "conf/inbound/persistent"
		obsClient, _, err := mqtt.Dial(addr, mqtt.ConnectOptions{ClientID: "conf-in-obs-p", CleanSession: true})
		if err != nil {
			t.Fatal(err)
		}
		defer obsClient.Close()
		if _, err := obsClient.Subscribe(mqtt.TopicFilterQoS{Filter: topic, QoS: 0}); err != nil {
			t.Fatal(err)
		}

		c := confDial(t, addr, "conf-in-p", false, false)
		c.send(&mqtt.Publish{Topic: topic, Payload: []byte(`{"n":1}`), QoS: 2, PacketID: 7})
		c.expectAck(mqtt.PUBREC, 7)
		c.drop() // crash before PUBREL
		// The sender must resend with DUP=1; the broker already owns id 7,
		// so the dedup set absorbs it and the handshake completes.
		c2 := confDial(t, addr, "conf-in-p", false, true)
		defer c2.drop()
		c2.send(&mqtt.Publish{Topic: topic, Payload: []byte(`{"n":1}`), QoS: 2, PacketID: 7, Dup: true})
		c2.expectAck(mqtt.PUBREC, 7)
		c2.send(&mqtt.Ack{PacketType: mqtt.PUBREL, PacketID: 7})
		c2.expectAck(mqtt.PUBCOMP, 7)
		c2.disconnect()

		select {
		case m := <-obsClient.Messages():
			if string(m.Payload) != `{"n":1}` {
				t.Fatalf("observer payload = %s", m.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("observer saw nothing")
		}
		select {
		case m := <-obsClient.Messages():
			t.Fatalf("exactly-once violated: observer saw a second message %q", m.Payload)
		case <-time.After(200 * time.Millisecond):
		}
	})
	t.Run("inbound-qos2/clean/restart", func(t *testing.T) {
		topic := "conf/inbound/clean"
		obsClient, _, err := mqtt.Dial(addr, mqtt.ConnectOptions{ClientID: "conf-in-obs-c", CleanSession: true})
		if err != nil {
			t.Fatal(err)
		}
		defer obsClient.Close()
		if _, err := obsClient.Subscribe(mqtt.TopicFilterQoS{Filter: topic, QoS: 0}); err != nil {
			t.Fatal(err)
		}

		c := confDial(t, addr, "conf-in-c", true, false)
		c.send(&mqtt.Publish{Topic: topic, Payload: []byte(`{"n":1}`), QoS: 2, PacketID: 7})
		c.expectAck(mqtt.PUBREC, 7)
		c.drop() // crash before PUBREL
		// A clean session dropped the dedup state with the connection: the
		// DUP resend ingests again — QoS 2 degrades to at-least-once when
		// the publisher refuses session state, which is the spec's bargain.
		c2 := confDial(t, addr, "conf-in-c", true, false)
		defer c2.drop()
		c2.send(&mqtt.Publish{Topic: topic, Payload: []byte(`{"n":1}`), QoS: 2, PacketID: 7, Dup: true})
		c2.expectAck(mqtt.PUBREC, 7)
		c2.send(&mqtt.Ack{PacketType: mqtt.PUBREL, PacketID: 7})
		c2.expectAck(mqtt.PUBCOMP, 7)
		c2.disconnect()

		for i := 0; i < 2; i++ {
			select {
			case m := <-obsClient.Messages():
				if string(m.Payload) != `{"n":1}` {
					t.Fatalf("observer payload %d = %s", i, m.Payload)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("observer saw %d messages, want 2", i)
			}
		}
	})

	// Conservation across every cell: nothing dispatched went missing.
	es := broker.DispatchStats()
	if es.Matched == 0 {
		t.Fatal("no dispatches recorded")
	}
	if es.Matched != es.Delivered+es.Dropped+es.Failed+es.DeadLettered {
		t.Fatalf("conservation violated: %+v", es)
	}
}
