package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/mediation"
	"repro/internal/sublease"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// Subscription persistence: a JSON snapshot of the broker's durable state
// (canonical subscriptions and their leases), so a restarted broker keeps
// honouring the subscription references its clients hold. In-flight
// delivery queues and pull queues are intentionally NOT persisted — they
// are transient, exactly like non-persistent messages in the JMS baseline.

type persistedEPR struct {
	Version int      `json:"version"`
	Address string   `json:"address"`
	Params  []string `json:"params,omitempty"` // marshalled identity parameters
}

func eprOut(e *wsa.EndpointReference) *persistedEPR {
	if e == nil {
		return nil
	}
	out := &persistedEPR{Version: int(e.Version), Address: e.Address}
	for _, p := range e.IdentityParameters() {
		out.Params = append(out.Params, xmldom.Marshal(p))
	}
	return out
}

func eprIn(p *persistedEPR) (*wsa.EndpointReference, error) {
	if p == nil {
		return nil, nil
	}
	e := wsa.NewEPR(wsa.Version(p.Version), p.Address)
	for _, raw := range p.Params {
		el, err := xmldom.ParseString(raw)
		if err != nil {
			return nil, fmt.Errorf("core: persisted EPR parameter: %w", err)
		}
		e.AddReferenceParameter(el)
	}
	return e, nil
}

type persistedSub struct {
	ID        string    `json:"id"`
	CreatedAt time.Time `json:"createdAt"`
	Expires   time.Time `json:"expires,omitempty"`
	Paused    bool      `json:"paused,omitempty"`

	Family int `json:"family"`
	WSE    int `json:"wse,omitempty"`
	WSN    int `json:"wsn,omitempty"`

	Consumer *persistedEPR `json:"consumer"`
	EndTo    *persistedEPR `json:"endTo,omitempty"`

	TopicExpr    string            `json:"topicExpr,omitempty"`
	TopicDialect string            `json:"topicDialect,omitempty"`
	TopicNS      map[string]string `json:"topicNS,omitempty"`

	ContentExpr    string            `json:"contentExpr,omitempty"`
	ContentDialect string            `json:"contentDialect,omitempty"`
	ContentNS      map[string]string `json:"contentNS,omitempty"`

	ProducerPropsExpr    string            `json:"producerPropsExpr,omitempty"`
	ProducerPropsDialect string            `json:"producerPropsDialect,omitempty"`
	ProducerPropsNS      map[string]string `json:"producerPropsNS,omitempty"`

	UseRaw   bool `json:"useRaw,omitempty"`
	PullMode bool `json:"pullMode,omitempty"`
	WrapMode bool `json:"wrapMode,omitempty"`
	// CEMode is the CloudEvents delivery content mode (FamilyCE only).
	CEMode string `json:"ceMode,omitempty"`
}

type persistedState struct {
	Format        int            `json:"format"`
	Subscriptions []persistedSub `json:"subscriptions"`
}

// SaveSubscriptions writes the durable subscription state as JSON.
func (b *Broker) SaveSubscriptions(w io.Writer) error {
	state := persistedState{Format: 1}
	for _, sn := range b.store.Active() {
		st, ok := sn.Data.(*subState)
		if !ok {
			continue
		}
		if st.local != nil || st.localRaw != nil {
			// Connection-bound (WebSocket) and session-bound (MQTT)
			// subscriptions cannot outlive the process; a restarted broker
			// could never deliver to them.
			continue
		}
		c := st.canon
		state.Subscriptions = append(state.Subscriptions, persistedSub{
			ID: sn.ID, CreatedAt: sn.CreatedAt, Expires: sn.Expires, Paused: sn.Paused,
			Family: int(c.Origin.Family), WSE: int(c.Origin.WSE), WSN: int(c.Origin.WSN),
			Consumer: eprOut(c.Consumer), EndTo: eprOut(c.EndTo),
			TopicExpr: c.TopicExpr, TopicDialect: c.TopicDialect, TopicNS: c.TopicNS,
			ContentExpr: c.ContentExpr, ContentDialect: c.ContentDialect, ContentNS: c.ContentNS,
			ProducerPropsExpr: c.ProducerPropsExpr, ProducerPropsDialect: c.ProducerPropsDialect,
			ProducerPropsNS: c.ProducerPropsNS,
			UseRaw:          c.UseRaw, PullMode: c.PullMode, WrapMode: c.WrapMode,
			CEMode: c.CEMode,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(state)
}

// SaveSubscriptionsFile writes the snapshot to path crash-safely: the JSON
// goes to a temp file in the same directory, is fsynced, then atomically
// renamed over path (and the directory fsynced so the rename itself is
// durable). A crash at any instant leaves either the old snapshot or the
// new one — never a truncated mix.
func (b *Broker) SaveSubscriptionsFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once the rename lands
	if err := b.SaveSubscriptions(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: snapshot rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// RestoreSubscriptions reloads a snapshot produced by SaveSubscriptions,
// recompiling every filter and re-creating the delivery machinery. It
// returns how many subscriptions were restored; a filter that no longer
// compiles aborts the restore with an error naming the subscription.
func (b *Broker) RestoreSubscriptions(r io.Reader) (int, error) {
	var state persistedState
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return 0, fmt.Errorf("core: restore: %w", err)
	}
	if state.Format != 1 {
		return 0, fmt.Errorf("core: restore: unsupported snapshot format %d", state.Format)
	}
	restored := 0
	for _, ps := range state.Subscriptions {
		consumer, err := eprIn(ps.Consumer)
		if err != nil {
			return restored, fmt.Errorf("core: restore %s: %w", ps.ID, err)
		}
		if consumer == nil {
			return restored, fmt.Errorf("core: restore %s: no consumer", ps.ID)
		}
		endTo, err := eprIn(ps.EndTo)
		if err != nil {
			return restored, fmt.Errorf("core: restore %s: %w", ps.ID, err)
		}
		canon := &mediation.Subscribe{
			Origin: mediation.Dialect{
				Family: mediation.Family(ps.Family),
				WSE:    wse.Version(ps.WSE),
				WSN:    wsnt.Version(ps.WSN),
			},
			Consumer: consumer, EndTo: endTo,
			TopicExpr: ps.TopicExpr, TopicDialect: ps.TopicDialect, TopicNS: ps.TopicNS,
			ContentExpr: ps.ContentExpr, ContentDialect: ps.ContentDialect, ContentNS: ps.ContentNS,
			ProducerPropsExpr: ps.ProducerPropsExpr, ProducerPropsDialect: ps.ProducerPropsDialect,
			ProducerPropsNS: ps.ProducerPropsNS,
			UseRaw:          ps.UseRaw, PullMode: ps.PullMode, WrapMode: ps.WrapMode,
			CEMode: ps.CEMode,
		}
		flt, err := canon.BuildFilter()
		if err != nil {
			return restored, fmt.Errorf("core: restore %s: filter: %w", ps.ID, err)
		}
		st := &subState{canon: canon, flt: flt}
		st.plan = mediation.DeliveryPlan{
			Dialect:         canon.Origin,
			UseRaw:          canon.UseRaw,
			SubscriptionID:  ps.ID,
			ManagerAddress:  b.cfg.ManagerAddress,
			ProducerAddress: b.cfg.Address,
			CEMode:          canon.CEMode,
		}
		if err := b.store.Restore(sublease.Snapshot{
			ID: ps.ID, CreatedAt: ps.CreatedAt, Expires: ps.Expires,
			Paused: ps.Paused, Data: st,
		}); err != nil {
			return restored, err
		}
		b.attach(ps.ID, st, ps.Paused, ps.Expires)
		restored++
	}
	return restored, nil
}
