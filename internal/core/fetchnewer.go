package core

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/eventlog"
	"repro/internal/mediation"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/xmldom"
)

// FetchNewer is the log's cursor operation on the broker's front door:
// "give me every publish newer than cursor X", the pull-is-fundamental
// primitive remote consumers re-sync with. Two cursor spaces exist:
//
//   - no Origin: the cursor is a position in THIS broker's log; the reply
//     pages local entries in position order.
//   - Origin set: the cursor is a position in the ORIGIN broker's log; the
//     reply pages this broker's retained entries that originated there,
//     ordered by origin position. This is what a recovering federation
//     peer uses — it knows its per-origin high water marks, not its
//     neighbours' local numbering.
//
// The operation lives in the broker's own namespace (it extends both spec
// families rather than belonging to either), and the front door intercepts
// it before the raw-publish fallback.

// WSMNS is the broker's extension namespace.
const WSMNS = "urn:ws-messenger"

func init() { xmldom.RegisterPrefix(WSMNS, "wsm") }

var fetchNewerName = xmldom.N(WSMNS, "FetchNewer")

// DefaultFetchPage caps how many entries one FetchNewer reply carries when
// the request does not say (bounded catch-up: a cursor far behind pages,
// never floods).
const DefaultFetchPage = 256

// LogEntry is one FetchNewer result on the client side.
type LogEntry struct {
	// Pos is the entry's position in the serving broker's log.
	Pos uint64
	// Topic is the publish's topic (zero when it had none).
	Topic topics.Path
	// Relay is the entry's federation provenance; for entries that
	// originated at the serving broker it carries that broker's identity
	// and the entry's own position. Nil for unfederated brokers.
	Relay *mediation.Relay
	// Payload is the published notification body.
	Payload *xmldom.Element
}

func (b *Broker) handleFetchNewer(env *soap.Envelope, body *xmldom.Element) (*soap.Envelope, error) {
	done := b.opDone("FetchNewer")
	defer func() { done("wsm") }()
	if b.log == nil {
		return nil, soap.Faultf(soap.FaultSender, "ws-messenger: this broker keeps no event log")
	}
	origin := strings.TrimSpace(body.ChildText(xmldom.N(WSMNS, "Origin")))
	var cursor uint64
	if c := strings.TrimSpace(body.ChildText(xmldom.N(WSMNS, "Cursor"))); c != "" {
		n, err := strconv.ParseUint(c, 10, 64)
		if err != nil {
			return nil, soap.Faultf(soap.FaultSender, "ws-messenger: bad Cursor %q", c)
		}
		cursor = n
	}
	max := DefaultFetchPage
	if m := strings.TrimSpace(body.ChildText(xmldom.N(WSMNS, "MaxEntries"))); m != "" {
		n, err := strconv.Atoi(m)
		if err != nil || n < 0 {
			return nil, soap.Faultf(soap.FaultSender, "ws-messenger: bad MaxEntries %q", m)
		}
		if n > 0 && n < max {
			max = n
		}
	}

	var entries []eventlog.Entry
	var next uint64
	var gap uint64
	if origin == "" {
		entries, next, gap = b.log.ReadAfterFunc(cursor, max, func(e eventlog.Entry) bool {
			return e.Key == ""
		})
	} else {
		// Origin-space cursor: scan the retained window for entries from
		// that origin past the cursor. Origin positions arrive in order
		// over a peer link, so local order preserves origin order.
		next = cursor
		entries, _, _ = b.log.ReadAfterFunc(0, max, func(e eventlog.Entry) bool {
			return e.Key == "" && entryOrigin(e, b.cfg.BrokerID) == origin && originPos(e) > cursor
		})
		if n := len(entries); n > 0 {
			next = originPos(entries[n-1])
		}
	}

	out := soap.New(env.Version)
	b.applyReply(out, env, wsa.V200508, WSMNS+"/FetchNewerResponse")
	resp := xmldom.NewElement(xmldom.N(WSMNS, "FetchNewerResponse"))
	for _, e := range entries {
		resp.Append(b.renderLogEntry(e))
	}
	resp.Append(xmldom.Elem(WSMNS, "Cursor", strconv.FormatUint(next, 10)))
	if gap > 0 {
		// The cursor predates the retained window: gap positions were
		// compacted away and can never be served. Clients surface this as
		// "missed events", exactly like a pull point's drop counter.
		resp.Append(xmldom.Elem(WSMNS, "Gap", strconv.FormatUint(gap, 10)))
	}
	out.AddBody(resp)
	return out, nil
}

// entryOrigin resolves which broker an entry originated at: its recorded
// relay origin, or the serving broker itself for unrelayed entries.
func entryOrigin(e eventlog.Entry, selfID string) string {
	if e.Origin != "" {
		return e.Origin
	}
	return selfID
}

func (b *Broker) renderLogEntry(e eventlog.Entry) *xmldom.Element {
	el := xmldom.NewElement(xmldom.N(WSMNS, "Entry"))
	el.SetAttr(xmldom.N("", "pos"), strconv.FormatUint(e.Pos, 10))
	if e.Topic != "" {
		el.Append(xmldom.Elem(WSMNS, "Topic", e.Topic))
	}
	if origin := entryOrigin(e, b.cfg.BrokerID); origin != "" {
		r := mediation.Relay{Origin: origin, ID: e.RelayID, Hops: e.Hops, Pos: originPos(e)}
		if r.ID == "" {
			// Pre-federation local entries have no message id; synthesise a
			// stable one from the position so peers can still dedup.
			r.ID = "urn:wsm-pos-" + strconv.FormatUint(e.Pos, 10)
		}
		el.Append(r.Element())
	}
	if payload, err := xmldom.ParseString(string(e.Body)); err == nil {
		el.Append(xmldom.Elem(WSMNS, "Payload", payload))
	}
	return el
}

// FetchNewer asks a broker for log entries newer than cursor. origin == ""
// pages the remote broker's own log positions; otherwise the cursor and
// returned next are positions in the named origin broker's log. gap > 0
// reports positions compacted away before they could be served.
func FetchNewer(ctx context.Context, client transport.Client, addr, origin string, cursor uint64, max int) (entries []LogEntry, next uint64, gap uint64, err error) {
	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: addr, Action: WSMNS + "/FetchNewer"}
	h.Apply(env)
	req := xmldom.NewElement(fetchNewerName)
	if origin != "" {
		req.Append(xmldom.Elem(WSMNS, "Origin", origin))
	}
	req.Append(xmldom.Elem(WSMNS, "Cursor", strconv.FormatUint(cursor, 10)))
	if max > 0 {
		req.Append(xmldom.Elem(WSMNS, "MaxEntries", strconv.Itoa(max)))
	}
	env.AddBody(req)
	resp, err := client.Call(ctx, addr, env)
	if err != nil {
		return nil, cursor, 0, err
	}
	body := resp.FirstBody()
	if body == nil || body.Name != xmldom.N(WSMNS, "FetchNewerResponse") {
		return nil, cursor, 0, soap.Faultf(soap.FaultReceiver, "ws-messenger: unexpected FetchNewer reply")
	}
	next = cursor
	for _, child := range body.ChildElements() {
		switch child.Name {
		case xmldom.N(WSMNS, "Cursor"):
			if n, perr := strconv.ParseUint(strings.TrimSpace(child.Text()), 10, 64); perr == nil {
				next = n
			}
		case xmldom.N(WSMNS, "Gap"):
			if n, perr := strconv.ParseUint(strings.TrimSpace(child.Text()), 10, 64); perr == nil {
				gap = n
			}
		case xmldom.N(WSMNS, "Entry"):
			le := LogEntry{}
			if p, perr := strconv.ParseUint(child.AttrValue(xmldom.N("", "pos")), 10, 64); perr == nil {
				le.Pos = p
			}
			if ts := child.ChildText(xmldom.N(WSMNS, "Topic")); ts != "" {
				if tp, perr := topics.ParseClark(ts); perr == nil {
					le.Topic = tp
				}
			}
			if rel := child.Child(mediation.RelayHeaderName); rel != nil {
				if r, perr := mediation.ParseRelayElement(rel); perr == nil {
					le.Relay = r
				}
			}
			if pl := child.Child(xmldom.N(WSMNS, "Payload")); pl != nil {
				if els := pl.ChildElements(); len(els) > 0 {
					le.Payload = els[0]
				}
			}
			if le.Payload != nil {
				entries = append(entries, le)
			}
		}
	}
	return entries, next, gap, nil
}
