package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wsnt"
)

// rawWire records every wire send the dest pool makes and can be told to
// fail, standing in for the destination hosts of the batching fan-out.
type rawWire struct {
	mu       sync.Mutex
	bodies   [][]byte
	addrs    []string
	attempts int
	fail     error
}

func (c *rawWire) Call(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
	return nil, nil
}

func (c *rawWire) Send(_ context.Context, addr string, env *soap.Envelope) error {
	return c.SendBytes(nil, addr, "", env.Marshal())
}

func (c *rawWire) SendBytes(_ context.Context, addr, _ string, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts++
	if c.fail != nil {
		return c.fail
	}
	c.bodies = append(c.bodies, append([]byte(nil), body...))
	c.addrs = append(c.addrs, addr)
	return nil
}

func (c *rawWire) sends() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.bodies))
	copy(out, c.bodies)
	return out
}

// wireEntries counts NotificationMessage elements in a serialised Notify.
func wireEntries(body []byte) int {
	return bytes.Count(body, []byte("NotificationMessage>")) / 2
}

// destBroker builds an async broker with per-destination batching on.
func destBroker(t *testing.T, wire *rawWire, mutate ...func(*Config)) (*Broker, *transport.Loopback) {
	t.Helper()
	lb := transport.NewLoopback()
	cfg := Config{
		Address:        "svc://wsm",
		ManagerAddress: "svc://wsm-subs",
		Client:         wire,
		BatchMax:       8,
		BatchWindow:    300 * time.Millisecond,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("svc://wsm", b.FrontHandler())
	lb.Register("svc://wsm-subs", b.ManagerHandler())
	return b, lb
}

func subscribeShared(t *testing.T, lb *transport.Loopback, addr string) *wsnt.Handle {
	t.Helper()
	s := &wsnt.Subscriber{Client: lb, Version: wsnt.V1_3}
	h, err := s.Subscribe(context.Background(), "svc://wsm", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, addr),
		TopicExpression:   "tns:jobs",
		TopicDialect:      topics.DialectSimple,
		TopicNS:           map[string]string{"tns": "urn:grid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// conserve asserts the dispatch conservation law at whatever the engine's
// counters currently read.
func conserve(t *testing.T, b *Broker) dispatch.Stats {
	t.Helper()
	st := b.DispatchStats()
	if st.Matched != st.Delivered+st.Dropped+st.Failed+st.DeadLettered {
		t.Errorf("conservation violated: Matched=%d Delivered=%d Dropped=%d Failed=%d DeadLettered=%d",
			st.Matched, st.Delivered, st.Dropped, st.Failed, st.DeadLettered)
	}
	return st
}

// TestDestBatchCoalescesSharedConsumer: two subscriptions on one consumer
// endpoint, one publish — the dest writer coalesces both deliveries into a
// single two-entry Notify, the engine still counts two deliveries, and the
// wsm_dest_* series expose the coalescing.
func TestDestBatchCoalescesSharedConsumer(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, "broker", obs.RecorderConfig{SampleEvery: 1})
	wire := &rawWire{}
	b, lb := destBroker(t, wire, func(c *Config) { c.Obs = rec })
	defer b.Shutdown()

	h1 := subscribeShared(t, lb, "svc://shared-sink/notify")
	h2 := subscribeShared(t, lb, "svc://shared-sink/notify")
	if h1.ID == h2.ID {
		t.Fatalf("subscriptions share an id: %s", h1.ID)
	}

	if err := b.Publish(grid, event("a")); err != nil {
		t.Fatal(err)
	}
	b.Flush()

	sends := wire.sends()
	if len(sends) != 1 {
		t.Fatalf("wire saw %d envelopes, want 1 coalesced", len(sends))
	}
	if n := wireEntries(sends[0]); n != 2 {
		t.Fatalf("coalesced envelope carries %d entries, want 2:\n%s", n, sends[0])
	}
	env, err := soap.ParseBytes(sends[0])
	if err != nil {
		t.Fatalf("coalesced envelope is not parseable SOAP: %v", err)
	}
	msgs, _, err := wsnt.ParseNotify(env.FirstBody())
	if err != nil || len(msgs) != 2 {
		t.Fatalf("ParseNotify: %d messages, err %v; want 2", len(msgs), err)
	}

	pool := b.DestWriter()
	if pool == nil {
		t.Fatal("DestWriter is nil with BatchMax set")
	}
	if pool.Envelopes() != 1 || pool.CoalescedEntries() != 2 {
		t.Errorf("pool counters: envelopes=%d entries=%d, want 1/2", pool.Envelopes(), pool.CoalescedEntries())
	}
	if r := pool.CoalesceRatio(); r != 2 {
		t.Errorf("coalesce ratio = %v, want 2", r)
	}
	st := conserve(t, b)
	if st.Matched != 2 || st.Delivered != 2 {
		t.Errorf("stats: Matched=%d Delivered=%d, want 2/2", st.Matched, st.Delivered)
	}

	text := scrape(t, reg)
	for _, want := range []string{
		`wsm_dest_envelopes_total{component="broker"} 1`,
		`wsm_dest_entries_total{component="broker"} 2`,
		`wsm_dest_batch_size_count{component="broker"} 1`,
		`wsm_dest_batch_size_sum{component="broker"} 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDestBatchDistinctHostsStaySeparate: subscribers on different hosts
// never share an envelope, and each host gets its own writer.
func TestDestBatchDistinctHostsStaySeparate(t *testing.T) {
	wire := &rawWire{}
	b, lb := destBroker(t, wire, func(c *Config) { c.BatchWindow = 50 * time.Millisecond })
	defer b.Shutdown()

	for i := 0; i < 3; i++ {
		subscribeShared(t, lb, fmt.Sprintf("svc://host-%d/notify", i))
	}
	if err := b.Publish(grid, event("a")); err != nil {
		t.Fatal(err)
	}
	b.Flush()

	sends := wire.sends()
	if len(sends) != 3 {
		t.Fatalf("wire saw %d envelopes, want 3 (one per host)", len(sends))
	}
	for i, body := range sends {
		if n := wireEntries(body); n != 1 {
			t.Errorf("envelope %d carries %d entries, want 1", i, n)
		}
	}
	st := conserve(t, b)
	if st.Delivered != 3 {
		t.Errorf("Delivered = %d, want 3", st.Delivered)
	}
}

// TestDestBatchCancelledMidWindowNotDelivered is the mid-window
// cancellation case: a subscription whose batch is queued but not yet
// flushed is cancelled; nothing reaches the wire, the suppression counts
// as delivered (not failed), and the conservation law holds.
func TestDestBatchCancelledMidWindowNotDelivered(t *testing.T) {
	wire := &rawWire{}
	b, lb := destBroker(t, wire, func(c *Config) { c.BatchWindow = 400 * time.Millisecond })
	defer b.Shutdown()

	h := subscribeShared(t, lb, "svc://doomed-sink/notify")
	if err := b.Publish(grid, event("a")); err != nil {
		t.Fatal(err)
	}
	// Wait until the batch is in the writer's hands (the writer spawns on
	// first Deliver), then cancel inside the batch window.
	deadline := time.Now().Add(5 * time.Second)
	for b.DestWriter().ActiveWriters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never spawned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := b.cancelSubscription(h.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	b.Flush()

	if sends := wire.sends(); len(sends) != 0 {
		t.Fatalf("cancelled subscription still reached the wire: %d envelopes", len(sends))
	}
	if got := b.DestWriter().Canceled(); got != 1 {
		t.Errorf("Canceled = %d, want 1", got)
	}
	conserve(t, b)
}

// TestDestBatchBreakerOpensMidStream: a dead destination fails its batch
// sends; retry exhaustion dead-letters at batch granularity, the breaker
// opens, and the conservation law survives the whole episode.
func TestDestBatchBreakerOpensMidStream(t *testing.T) {
	wire := &rawWire{fail: errors.New("connection refused")}
	b, lb := destBroker(t, wire, func(c *Config) {
		c.BatchWindow = 10 * time.Millisecond
		c.Retry = &dispatch.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
		c.Breaker = &dispatch.BreakerPolicy{Window: 2, FailureRate: 0.5, Cooldown: 50 * time.Millisecond}
		c.DeadLetterCap = 100
	})
	defer b.Shutdown()

	h := subscribeShared(t, lb, "svc://dead-host/notify")
	// Each publish+Flush round is at least one failing delivery cycle (the
	// backlog pops as one batch); two rounds fill the breaker window and
	// trip it. The third round's payloads arrive against an open breaker:
	// they buffer, the cool-down probe re-attempts them as a batch, the
	// probe fails, and the batch routes to the DLQ — "remaining payloads
	// through retry/DLQ at batch granularity".
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if err := b.Publish(grid, event(fmt.Sprintf("e%d-%d", i, j))); err != nil {
				t.Fatal(err)
			}
		}
		b.Flush()
	}

	st := conserve(t, b)
	if st.Delivered != 0 {
		t.Errorf("Delivered = %d, want 0 (every send failed)", st.Delivered)
	}
	if st.Matched != 6 {
		t.Errorf("Matched = %d, want 6", st.Matched)
	}
	if st.DeadLettered != 6 {
		t.Errorf("DeadLettered = %d, want 6 (every payload routed to the DLQ)", st.DeadLettered)
	}
	if state, ok := b.BreakerState(h.ID); !ok || state == dispatch.BreakerClosed {
		t.Errorf("breaker state = %v (ok=%v), want tripped", state, ok)
	}
	if b.DeadLetterCount() != 6 {
		t.Errorf("DLQ holds %d letters, want 6", b.DeadLetterCount())
	}
	wire.mu.Lock()
	attempts := wire.attempts
	wire.mu.Unlock()
	if attempts == 0 {
		t.Error("no wire attempts recorded")
	}
}
