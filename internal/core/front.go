package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/filter"
	"repro/internal/mediation"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/sublease"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/wsrf"
	"repro/internal/xmldom"
	"repro/internal/xsdt"
)

// FrontHandler returns the broker's front door: Subscribe in either
// specification, published notifications in either specification, and
// GetCurrentMessage. When no separate manager address is configured it
// also accepts subscription management.
func (b *Broker) FrontHandler() transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.FirstBody()
		if body == nil {
			return nil, soap.Faultf(soap.FaultSender, "ws-messenger: empty body")
		}
		// FetchNewer must be intercepted before every fallback: the final
		// arm treats any unrecognised body as a raw publish.
		if body.Name == fetchNewerName {
			return b.handleFetchNewer(env, body)
		}
		if d, ok := mediation.DetectBody(body); ok {
			switch body.Name.Local {
			case "Subscribe":
				return b.handleSubscribe(env, d)
			case "GetCurrentMessage":
				return b.handleGetCurrentMessage(env, d)
			case "Notify":
				return nil, b.handlePublish(env)
			case "Renew", "GetStatus", "Unsubscribe", "Pull",
				"PauseSubscription", "ResumeSubscription":
				if b.cfg.ManagerAddress == b.cfg.Address {
					return b.handleManagement(ctx, env, d)
				}
				return nil, soap.Faultf(soap.FaultSender,
					"ws-messenger: %s must be sent to the subscription manager at %s",
					body.Name.Local, b.cfg.ManagerAddress)
			}
		}
		if wsrf.Handles(env) {
			if b.cfg.ManagerAddress == b.cfg.Address {
				return b.wsrfSvc.ServeSOAP(ctx, env)
			}
			return nil, soap.Faultf(soap.FaultSender,
				"ws-messenger: WSRF management belongs at %s", b.cfg.ManagerAddress)
		}
		// Anything else is treated as a raw published notification — the
		// WS-Eventing publishing style.
		return nil, b.handlePublish(env)
	})
}

// ManagerHandler returns the subscription-management endpoint, accepting
// the management vocabulary of every supported spec version.
func (b *Broker) ManagerHandler() transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.FirstBody()
		if body == nil {
			return nil, soap.Faultf(soap.FaultSender, "ws-messenger: empty body")
		}
		if wsrf.Handles(env) {
			return b.wsrfSvc.ServeSOAP(ctx, env)
		}
		d, ok := mediation.DetectBody(body)
		if !ok {
			return nil, soap.Faultf(soap.FaultSender, "ws-messenger: unknown management request %v", body.Name)
		}
		return b.handleManagement(ctx, env, d)
	})
}

// opDone starts timing one front-door operation and returns its completion
// hook. The spec-version label is supplied at completion because some
// handlers only learn the dialect mid-flight (raw publishes). On an
// uninstrumented broker both halves are no-ops.
func (b *Broker) opDone(op string) func(spec string) {
	rec := b.cfg.Obs
	if rec == nil {
		return func(string) {}
	}
	start := rec.Now()
	return func(spec string) {
		rec.Registry().Histogram("wsm_op_seconds",
			"Front-door SOAP operation handling latency by operation and spec version.",
			nil,
			obs.L("component", rec.Component()), obs.L("op", op), obs.L("spec", spec),
		).Observe(rec.Now().Sub(start))
	}
}

// handlePublish accepts a published notification in either family and
// routes it through the backend.
func (b *Broker) handlePublish(env *soap.Envelope) error {
	done := b.opDone("Notify")
	ns, d, err := mediation.ParseIncoming(env)
	if err != nil {
		done("unknown")
		return soap.Faultf(soap.FaultSender, "ws-messenger: %v", err)
	}
	defer func() { done(d.String()) }()
	// A relay header on a front-door publish is deliberately ignored: only
	// the federation ingest endpoint may republish with preserved
	// provenance, because honoring it here would let any publisher forge
	// dedup state. The front door always stamps fresh provenance.
	for _, n := range ns {
		if err := b.publish(n.Topic, n.Payload, d.Family.String(), nil); err != nil {
			return soap.Faultf(soap.FaultReceiver, "ws-messenger: backend: %v", err)
		}
	}
	return nil
}

// handleSubscribe accepts a subscribe of either family, creates the
// canonical subscription and answers in the requester's dialect.
func (b *Broker) handleSubscribe(env *soap.Envelope, d mediation.Dialect) (*soap.Envelope, error) {
	done := b.opDone("Subscribe")
	defer func() { done(d.String()) }()
	var canon *mediation.Subscribe
	switch d.Family {
	case mediation.FamilyWSE:
		req, v, err := wse.ParseSubscribe(env.FirstBody())
		if err != nil {
			return nil, wse.FaultInvalidMessage(d.WSE, err.Error())
		}
		if req.NotifyTo == nil {
			return nil, wse.FaultInvalidMessage(v, "Subscribe has no NotifyTo")
		}
		mode := req.Mode
		switch mode {
		case "", v.DeliveryModePush():
		case v.DeliveryModePull():
			if !v.SupportsPull() {
				return nil, wse.FaultDeliveryModeUnavailable(v, mode)
			}
		case v.DeliveryModeWrap():
			if !v.SupportsWrapped() {
				return nil, wse.FaultDeliveryModeUnavailable(v, mode)
			}
		default:
			return nil, wse.FaultDeliveryModeUnavailable(v, mode)
		}
		canon = mediation.FromWSE(req, v)
	case mediation.FamilyWSN:
		req, v, err := wsnt.ParseSubscribe(env.FirstBody())
		if err != nil {
			return nil, wsnt.FaultSubscribeCreationFailed(d.WSN, err.Error())
		}
		if req.ConsumerReference == nil {
			return nil, wsnt.FaultSubscribeCreationFailed(v, "missing ConsumerReference")
		}
		if v.RequiresTopic() && req.TopicExpression == "" {
			return nil, wsnt.FaultSubscribeCreationFailed(v, "version 1.0 requires a TopicExpression")
		}
		canon = mediation.FromWSN(req, v)
	default:
		return nil, soap.Faultf(soap.FaultSender, "ws-messenger: unsupported subscribe dialect")
	}

	flt, err := canon.BuildFilter()
	if err != nil {
		if d.Family == mediation.FamilyWSE {
			return nil, wse.FaultFilteringNotSupported(d.WSE, err.Error())
		}
		// WS-BaseNotification distinguishes topic faults from filter
		// faults: an unsupported topic-expression dialect is
		// TopicNotSupportedFault, while an uncompilable expression in a
		// supported dialect is InvalidFilterFault.
		var ude *filter.UnknownDialectError
		if errors.As(err, &ude) && canon.TopicExpr != "" && ude.Dialect == canon.TopicDialect {
			return nil, wsnt.FaultTopicNotSupported(d.WSN, canon.TopicExpr)
		}
		return nil, wsnt.FaultInvalidFilter(d.WSN, err.Error())
	}
	expires, err := b.grantExpiry(canon.Expires, d)
	if err != nil {
		if d.Family == mediation.FamilyWSE {
			return nil, wse.FaultUnsupportedExpirationType(d.WSE)
		}
		return nil, wsnt.FaultUnacceptableTerminationTime(d.WSN, err.Error())
	}
	lease := b.register(canon, flt, expires)

	out := soap.New(env.Version)
	switch d.Family {
	case mediation.FamilyWSE:
		v := d.WSE
		b.applyReply(out, env, v.WSAVersion(), v.ActionSubscribeResponse())
		resp := &wse.SubscribeResponse{
			Manager: wsa.NewEPR(v.WSAVersion(), b.cfg.ManagerAddress),
			ID:      lease.ID,
		}
		if !expires.IsZero() {
			resp.Expires = xsdt.FormatDateTime(expires)
		}
		out.AddBody(resp.Element(v))
	case mediation.FamilyWSN:
		v := d.WSN
		b.applyReply(out, env, v.WSAVersion(), v.ActionSubscribeResponse())
		resp := &wsnt.SubscribeResponse{
			SubscriptionReference: wsa.NewEPR(v.WSAVersion(), b.cfg.ManagerAddress),
			ID:                    lease.ID,
			CurrentTime:           xsdt.FormatDateTime(b.cfg.Clock()),
		}
		if !expires.IsZero() {
			resp.TerminationTime = xsdt.FormatDateTime(expires)
		}
		out.AddBody(resp.Element(v))
	}
	return out, nil
}

func (b *Broker) applyReply(out, in *soap.Envelope, wv wsa.Version, action string) {
	h := &wsa.MessageHeaders{Version: wv, Action: action, MessageID: b.nextMessageID()}
	if ih, ok := wsa.ParseHeaders(in); ok {
		h.RelatesTo = ih.MessageID
	}
	h.Apply(out)
}

func (b *Broker) handleGetCurrentMessage(env *soap.Envelope, d mediation.Dialect) (*soap.Envelope, error) {
	done := b.opDone("GetCurrentMessage")
	defer func() { done(d.String()) }()
	v := d.WSN
	if d.Family != mediation.FamilyWSN {
		return nil, soap.Faultf(soap.FaultSender, "ws-messenger: GetCurrentMessage is a WS-Notification operation")
	}
	ns := v.NS()
	te := env.FirstBody().Child(xmldom.N(ns, "Topic"))
	if te == nil {
		return nil, wsnt.FaultInvalidFilter(v, "GetCurrentMessage requires a Topic")
	}
	dialect := te.AttrValue(xmldom.N("", "Dialect"))
	if dialect == "" {
		dialect = topics.DialectConcrete
	}
	expr, err := topics.ParseExpression(dialect, strings.TrimSpace(te.Text()), te.ScopeBindings())
	if err != nil {
		return nil, wsnt.FaultInvalidFilter(v, err.Error())
	}
	cp, ok := expr.ConcretePath()
	if !ok {
		return nil, wsnt.FaultInvalidFilter(v, "GetCurrentMessage requires a concrete topic")
	}
	b.mu.Lock()
	msg := b.current[cp.String()]
	b.mu.Unlock()
	if msg == nil {
		return nil, wsnt.FaultNoCurrentMessage(v, cp.String())
	}
	out := soap.New(env.Version)
	b.applyReply(out, env, v.WSAVersion(), v.NS()+"/GetCurrentMessageResponse")
	out.AddBody(xmldom.Elem(ns, "GetCurrentMessageResponse", msg.Clone()))
	return out, nil
}

// subscriptionIDFromHeaders recovers the subscription id from whichever
// reference parameter the requester's spec uses: wse:Identifier (8/2004),
// wsnt SubscriptionId (both WSN versions) or wsrl:ResourceID.
func (b *Broker) subscriptionIDFromHeaders(env *soap.Envelope) string {
	for _, name := range []xmldom.Name{
		wse.V200408.IdentifierName(),
		wsnt.V1_0.SubscriptionIDName(),
		wsnt.V1_3.SubscriptionIDName(),
		wsrf.ResourceIDHeader,
	} {
		if h := env.Header(name); h != nil {
			return strings.TrimSpace(h.Text())
		}
	}
	return ""
}

// subscriptionID also checks the 1/2004 body form.
func (b *Broker) subscriptionID(env *soap.Envelope, d mediation.Dialect) string {
	if id := b.subscriptionIDFromHeaders(env); id != "" {
		return id
	}
	if d.Family == mediation.FamilyWSE && d.WSE == wse.V200401 {
		if body := env.FirstBody(); body != nil {
			if el := body.Child(wse.V200401.IdentifierName()); el != nil {
				return strings.TrimSpace(el.Text())
			}
		}
	}
	return ""
}

func (b *Broker) handleManagement(_ context.Context, env *soap.Envelope, d mediation.Dialect) (*soap.Envelope, error) {
	body := env.FirstBody()
	done := b.opDone(body.Name.Local)
	defer func() { done(d.String()) }()
	id := b.subscriptionID(env, d)
	out := soap.New(env.Version)

	switch d.Family {
	case mediation.FamilyWSE:
		v := d.WSE
		ns := v.NS()
		switch body.Name.Local {
		case "Renew":
			expires, err := b.grantExpiry(body.ChildText(xmldom.N(ns, "Expires")), d)
			if err != nil {
				return nil, wse.FaultUnsupportedExpirationType(v)
			}
			granted, err := b.renewSubscription(id, expires)
			if err != nil {
				return nil, wse.FaultInvalidMessage(v, "unknown subscription "+id)
			}
			b.applyReply(out, env, v.WSAVersion(), v.ActionRenewResponse())
			expText := ""
			if !granted.IsZero() {
				expText = xsdt.FormatDateTime(granted)
			}
			out.AddBody(xmldom.Elem(ns, "RenewResponse", xmldom.Elem(ns, "Expires", expText)))
			return out, nil
		case "GetStatus":
			if !v.SupportsGetStatus() {
				return nil, wse.FaultInvalidMessage(v, "GetStatus is not defined in "+v.String())
			}
			sn, err := b.store.Get(id)
			if err != nil {
				return nil, wse.FaultInvalidMessage(v, "unknown subscription "+id)
			}
			b.applyReply(out, env, v.WSAVersion(), v.ActionGetStatusResponse())
			expText := ""
			if !sn.Expires.IsZero() {
				expText = xsdt.FormatDateTime(sn.Expires)
			}
			out.AddBody(xmldom.Elem(ns, "GetStatusResponse", xmldom.Elem(ns, "Expires", expText)))
			return out, nil
		case "Unsubscribe":
			if err := b.cancelSubscription(id); err != nil {
				return nil, wse.FaultInvalidMessage(v, "unknown subscription "+id)
			}
			b.applyReply(out, env, v.WSAVersion(), v.ActionUnsubscribeResponse())
			out.AddBody(xmldom.NewElement(xmldom.N(ns, "UnsubscribeResponse")))
			return out, nil
		case "Pull":
			if !v.SupportsPull() {
				return nil, wse.FaultInvalidMessage(v, "Pull is not defined in "+v.String())
			}
			if _, err := b.store.Get(id); err != nil {
				return nil, wse.FaultInvalidMessage(v, "unknown subscription "+id)
			}
			max := 0
			if m := body.ChildText(xmldom.N(ns, "MaxElements")); m != "" {
				fmt.Sscanf(m, "%d", &max)
			}
			batch, err := b.engine.Pull(id, max)
			if err != nil {
				return nil, wse.FaultInvalidMessage(v, "unknown subscription "+id)
			}
			b.applyReply(out, env, v.WSAVersion(), v.ActionPullResponse())
			resp := xmldom.NewElement(xmldom.N(ns, "PullResponse"))
			for _, m := range batch {
				resp.Append(xmldom.Elem(ns, "Message", m.Payload.(fanMsg).payload))
			}
			out.AddBody(resp)
			return out, nil
		}
		return nil, wse.FaultInvalidMessage(v, "unknown operation "+body.Name.Local)

	case mediation.FamilyWSN:
		v := d.WSN
		ns := v.NS()
		switch body.Name.Local {
		case "PauseSubscription":
			if err := b.store.Pause(id); err != nil {
				// Unknown id → ResourceUnknownFault; a pause that fails for a
				// known subscription (e.g. an expired lease) is 1.3's
				// distinct PauseFailedFault.
				if v == wsnt.V1_3 && !errors.Is(err, sublease.ErrNotFound) {
					return nil, wsnt.FaultPauseFailed(v, err.Error())
				}
				return nil, wsnt.FaultUnknownSubscription(v, id)
			}
			b.engine.Pause(id)
			b.applyReply(out, env, v.WSAVersion(), ns+"/PauseSubscriptionResponse")
			out.AddBody(xmldom.NewElement(xmldom.N(ns, "PauseSubscriptionResponse")))
			return out, nil
		case "ResumeSubscription":
			if err := b.store.Resume(id); err != nil {
				if v == wsnt.V1_3 && !errors.Is(err, sublease.ErrNotFound) {
					return nil, wsnt.FaultResumeFailed(v, err.Error())
				}
				return nil, wsnt.FaultUnknownSubscription(v, id)
			}
			b.engine.Resume(id)
			b.applyReply(out, env, v.WSAVersion(), ns+"/ResumeSubscriptionResponse")
			out.AddBody(xmldom.NewElement(xmldom.N(ns, "ResumeSubscriptionResponse")))
			return out, nil
		case "Renew":
			if !v.SupportsNativeManagement() {
				return nil, wsnt.FaultUnsupportedOperation(v, "Renew")
			}
			expires, err := b.grantExpiry(body.ChildText(xmldom.N(ns, "TerminationTime")), d)
			if err != nil {
				return nil, wsnt.FaultUnacceptableTerminationTime(v, err.Error())
			}
			granted, err := b.renewSubscription(id, expires)
			if err != nil {
				return nil, wsnt.FaultUnknownSubscription(v, id)
			}
			b.applyReply(out, env, v.WSAVersion(), ns+"/RenewResponse")
			resp := xmldom.NewElement(xmldom.N(ns, "RenewResponse"))
			if !granted.IsZero() {
				resp.Append(xmldom.Elem(ns, "TerminationTime", xsdt.FormatDateTime(granted)))
			}
			resp.Append(xmldom.Elem(ns, "CurrentTime", xsdt.FormatDateTime(b.cfg.Clock())))
			out.AddBody(resp)
			return out, nil
		case "Unsubscribe":
			if !v.SupportsNativeManagement() {
				return nil, wsnt.FaultUnsupportedOperation(v, "Unsubscribe")
			}
			if err := b.cancelSubscription(id); err != nil {
				return nil, wsnt.FaultUnknownSubscription(v, id)
			}
			b.applyReply(out, env, v.WSAVersion(), ns+"/UnsubscribeResponse")
			out.AddBody(xmldom.NewElement(xmldom.N(ns, "UnsubscribeResponse")))
			return out, nil
		}
		return nil, wsnt.FaultUnsupportedOperation(v, body.Name.Local)
	}
	return nil, soap.Faultf(soap.FaultSender, "ws-messenger: unknown management dialect")
}
