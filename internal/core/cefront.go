package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/cloudevents"
	"repro/internal/mediation"
	"repro/internal/topics"
	"repro/internal/wsa"
	"repro/internal/xsdt"
)

// The CloudEvents front door (mounted at /ce): the modern, JSON-native
// counterpart of the SOAP front door. One endpoint serves both directions:
//
//   - POST with a CloudEvents content type (structured, batched or binary
//     mode) publishes the event(s) into the broker. The event's type
//     attribute carries the topic in Clark form ("{ns}a/b"), so a
//     CloudEvents producer addresses the same topic space SOAP publishers
//     use; ingressed events are preserved end to end, so a CE→CE round
//     trip keeps the producer's id, source and data untouched.
//   - POST application/json manages subscriptions: {"sink": url} creates
//     one (optionally with "topic", "mode" and "expires"), {"unsubscribe":
//     id} cancels. CloudEvents subscribers receive mediated deliveries of
//     every matching publish regardless of which front door it entered.
//
// Relay extension attributes on ingressed events are stripped for the same
// anti-forgery reason the SOAP front door ignores inbound wsmf:Relay
// headers: only the federation ingest may assert provenance. Egress adds
// them back from the broker's own relay state, so federation dedup holds
// across the protocol boundary.

// ceMaxBody caps a /ce request body (publishes and control calls alike).
const ceMaxBody = 4 << 20

// ceSubscribeRequest is the /ce control vocabulary.
type ceSubscribeRequest struct {
	// Sink is the consumer's HTTP endpoint (required to subscribe).
	Sink string `json:"sink"`
	// Topic optionally filters by Clark-form topic path "{ns}a/b".
	Topic string `json:"topic,omitempty"`
	// Mode is the delivery content mode: structured (default), batched or
	// binary.
	Mode string `json:"mode,omitempty"`
	// Expires optionally bounds the subscription (xsd:dateTime or
	// xsd:duration, same grammar as the SOAP front door).
	Expires string `json:"expires,omitempty"`
	// Unsubscribe cancels the named subscription instead.
	Unsubscribe string `json:"unsubscribe,omitempty"`
}

// CEHandler returns the broker's CloudEvents front door.
func (b *Broker) CEHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "ws-messenger: /ce accepts POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, ceMaxBody+1))
		if err != nil {
			http.Error(w, "ws-messenger: read: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > ceMaxBody {
			http.Error(w, "ws-messenger: event too large", http.StatusRequestEntityTooLarge)
			return
		}
		ct := r.Header.Get("Content-Type")
		switch {
		case cloudevents.IsBinaryRequest(r.Header):
			ev, err := cloudevents.FromBinary(r.Header, body)
			if err != nil {
				ceError(w, http.StatusBadRequest, err)
				return
			}
			b.ceAccept(w, ev)
		case strings.HasPrefix(ct, cloudevents.ContentTypeBatch):
			evs, err := cloudevents.ParseBatchJSON(body)
			if err != nil {
				ceError(w, http.StatusBadRequest, err)
				return
			}
			b.ceAccept(w, evs...)
		case strings.HasPrefix(ct, cloudevents.ContentTypeJSON):
			ev, err := cloudevents.ParseJSON(body)
			if err != nil {
				ceError(w, http.StatusBadRequest, err)
				return
			}
			b.ceAccept(w, ev)
		case ct == "" || strings.HasPrefix(ct, "application/json"):
			b.ceControl(w, body)
		default:
			http.Error(w, "ws-messenger: unsupported media type "+ct, http.StatusUnsupportedMediaType)
		}
	})
}

// ceAccept publishes ingressed events and writes the acceptance receipt.
func (b *Broker) ceAccept(w http.ResponseWriter, evs ...*cloudevents.Event) {
	for i, ev := range evs {
		if err := b.PublishCE(ev); err != nil {
			// Events before i were accepted (and durably logged, when the
			// broker keeps a log); the receipt says how far we got.
			ceJSON(w, http.StatusBadRequest, map[string]any{
				"accepted": i, "error": err.Error(),
			})
			return
		}
	}
	ceJSON(w, http.StatusAccepted, map[string]any{"accepted": len(evs)})
}

// PublishCE publishes one CloudEvent into the broker: the ingress behind
// the /ce and /ws front doors, also usable by embedded deployments. The
// event is wrapped into its XML bridge form so CloudEvents egress can
// unwrap it faithfully; inbound relay extension attributes are stripped
// (only the federation ingest may assert provenance).
func (b *Broker) PublishCE(ev *cloudevents.Event) error {
	if err := ev.Valid(); err != nil {
		return err
	}
	for _, k := range []string{
		cloudevents.ExtRelayOrigin, cloudevents.ExtRelayID,
		cloudevents.ExtRelayHops, cloudevents.ExtRelayPos,
	} {
		delete(ev.Extensions, k)
	}
	topic := cloudevents.TopicForType(ev.Type)
	if err := b.publish(topic, cloudevents.WrapXML(ev), mediation.FamilyCE.String(), nil); err != nil {
		return err
	}
	inc(b.cePublished)
	return nil
}

// ceControl handles the JSON subscription-management vocabulary.
func (b *Broker) ceControl(w http.ResponseWriter, body []byte) {
	var req ceSubscribeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		ceError(w, http.StatusBadRequest, err)
		return
	}
	if req.Unsubscribe != "" {
		if err := b.cancelSubscription(req.Unsubscribe); err != nil {
			ceError(w, http.StatusNotFound, err)
			return
		}
		ceJSON(w, http.StatusOK, map[string]any{"unsubscribed": req.Unsubscribe})
		return
	}
	if req.Sink == "" {
		ceError(w, http.StatusBadRequest, fmt.Errorf("subscribe needs a sink"))
		return
	}
	if b.ceClient == nil {
		// The configured transport has no raw HTTP path (e.g. a SOAP-only
		// loopback), so CloudEvents deliveries could never leave the broker.
		// Reject up front instead of dead-lettering every future publish.
		ceError(w, http.StatusNotImplemented,
			fmt.Errorf("this broker's transport cannot deliver CloudEvents over HTTP"))
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = mediation.CEStructured
	}
	switch mode {
	case mediation.CEStructured, mediation.CEBatched, mediation.CEBinary:
	default:
		ceError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", mode))
		return
	}
	canon := &mediation.Subscribe{
		Origin:   mediation.Dialect{Family: mediation.FamilyCE},
		Consumer: wsa.NewEPR(wsa.V200508, req.Sink),
		Expires:  req.Expires,
		CEMode:   mode,
	}
	if req.Topic != "" {
		expr, ns, err := ceTopicExpr(req.Topic)
		if err != nil {
			ceError(w, http.StatusBadRequest, err)
			return
		}
		canon.TopicExpr, canon.TopicDialect, canon.TopicNS = expr, topics.DialectConcrete, ns
	}
	flt, err := canon.BuildFilter()
	if err != nil {
		ceError(w, http.StatusBadRequest, err)
		return
	}
	expires, err := b.grantExpiry(canon.Expires, canon.Origin)
	if err != nil {
		ceError(w, http.StatusBadRequest, err)
		return
	}
	lease := b.register(canon, flt, expires)
	resp := map[string]any{"id": lease.ID, "mode": mode}
	if !expires.IsZero() {
		resp["expires"] = xsdt.FormatDateTime(expires)
	}
	ceJSON(w, http.StatusCreated, resp)
}

// ceTopicExpr converts a Clark-form topic path into the concrete-dialect
// expression and prefix bindings the canonical filter machinery compiles.
func ceTopicExpr(clark string) (string, map[string]string, error) {
	p, err := topics.ParseClark(clark)
	if err != nil {
		return "", nil, err
	}
	expr := strings.Join(p.Segments, "/")
	if p.Namespace == "" {
		return expr, nil, nil
	}
	return "t:" + expr, map[string]string{"t": p.Namespace}, nil
}

func ceJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func ceError(w http.ResponseWriter, status int, err error) {
	ceJSON(w, status, map[string]any{"error": err.Error()})
}
