// Package load is the synthetic fan-out load harness: it boots a real
// broker delivering over real loopback HTTP to subscriptions generated
// by package workload, measuring throughput, coalescing, connection/fd
// budgets and the dispatch conservation law. It lives one level below
// internal/workload so the generator package stays importable from
// internal/core's own tests without an import cycle.
package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/workload"
	"repro/internal/wsa"
	"repro/internal/wsnt"
)

// Config parameterises a synthetic fan-out run: one broker delivering
// generated events over real HTTP to Subscribers subscriptions spread
// across Hosts loopback listener hosts. It is the scaled-down stand-in
// for the paper's "many consumers behind few gateways" deployment shape,
// and the vehicle for the per-destination batching measurements: the
// coalesce ratio, the connection/fd budget, the conservation law.
type Config struct {
	// Subscribers is the number of subscriptions created (default 500).
	Subscribers int
	// Hosts is the number of distinct loopback HTTP hosts the
	// subscriptions spread over round-robin (default 10). Subscriptions
	// sharing a host share its notify URL, so their deliveries coalesce.
	Hosts int
	// Publishes is the number of events published (default 20). Every
	// event matches every subscription — the worst-case fan-out.
	Publishes int
	// BatchMax enables per-destination batching when > 1 (entries per
	// coalesced envelope). Zero runs the per-subscriber arm.
	BatchMax int
	// BatchWindow is the dest writer's coalescing window (default 2ms
	// when batching is on).
	BatchWindow time.Duration
	// QueueDepth bounds each subscription's dispatch queue (default:
	// enough to hold every publish, so the load measures delivery, not
	// drop policy).
	QueueDepth int
	// MaxConnsPerHost caps the pooled HTTP client's per-host connections
	// (default 16) — the fd bound under test.
	MaxConnsPerHost int
	// MaxInflightPerHost caps concurrent in-flight sends per destination
	// host (default/1 = the serial writer). Only meaningful with
	// BatchMax > 1.
	MaxInflightPerHost int
	// AdaptiveWindow turns on AIMD control of the per-host window.
	AdaptiveWindow bool
	// MaxDispatchWorkers caps the engine's dynamic delivery worker pool
	// (0 = the engine default). Pipelining arms raise it: per-host window
	// occupancy is bounded by how many workers can block on one host.
	MaxDispatchWorkers int
	// FaultEvery makes every Nth request per destination host fail with
	// a 500 after reading the body — the flaky-consumer arm. Zero
	// disables injection.
	FaultEvery int
	// Retry, when non-nil, is the per-subscription retry policy — the
	// flaky arms need it so injected faults recover instead of evicting
	// subscribers.
	Retry *dispatch.RetryPolicy
	// CheckOrder makes every destination host parse acknowledged
	// envelopes and verify that, per subscription, payload sequence
	// numbers arrive monotonically — the pipelining ordering guarantee,
	// asserted from the receiver's side of the wire.
	CheckOrder bool
	// DestLatency is the per-request service time each destination host
	// spends before acknowledging (default 0: bare loopback). Non-zero
	// models the consumer processing / WAN round trip the paper's
	// deployments pay per notification — the cost batching amortises.
	DestLatency time.Duration
	// Size selects the generated payload class (default Small).
	Size workload.Size
	// SampleEvery is the fd/connection sampling cadence (default 20ms).
	SampleEvery time.Duration
	// ProfileDir, when set, writes cpu.pprof and heap.pprof there.
	ProfileDir string
}

func (c Config) withDefaults() Config {
	if c.Subscribers <= 0 {
		c.Subscribers = 500
	}
	if c.Hosts <= 0 {
		c.Hosts = 10
	}
	if c.Hosts > c.Subscribers {
		c.Hosts = c.Subscribers
	}
	if c.Publishes <= 0 {
		c.Publishes = 20
	}
	if c.BatchMax > 1 && c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Publishes + 16
	}
	if c.MaxConnsPerHost <= 0 {
		c.MaxConnsPerHost = 16
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 20 * time.Millisecond
	}
	return c
}

// Result is what a run measured.
type Result struct {
	// Engine accounting (the conservation law's terms).
	Published, Matched, Delivered, Dropped, Failed, DeadLettered uint64

	// Dest-writer accounting (zero in the per-subscriber arm).
	Envelopes, CoalescedEntries, RawSends, Canceled uint64
	CoalesceRatio                                   float64

	// Receiver-side ground truth, counted by the destination hosts.
	WireEnvelopes, WireEntries uint64

	// Connection/fd accounting from the pooled client and /proc.
	Dials, PeakConns, OpenConnsAfter int64
	FDsBefore, FDsPeak, FDsAfter     int

	// In-flight window occupancy: PeakInflight is the sampled pool-wide
	// peak of concurrent sends, PeakWindow the sampled widest per-host
	// window, PeakHostInflight the writer pool's own record of the most
	// concurrent sends one host ever held (exact, not sampled).
	PeakInflight, PeakWindow, PeakHostInflight int
	// WindowDecreases counts AIMD multiplicative decreases.
	WindowDecreases uint64

	// Faults is how many requests the destination hosts failed on
	// purpose; OrderViolations counts acknowledged envelopes whose
	// per-subscription sequence numbers went backwards (must be 0).
	Faults          uint64
	OrderViolations uint64

	Elapsed time.Duration
}

// Conserved reports whether the dispatch conservation law held: every
// matched delivery is accounted delivered, dropped, failed or
// dead-lettered — nothing lost, nothing double-counted.
func (r Result) Conserved() bool {
	return r.Matched == r.Delivered+r.Dropped+r.Failed+r.DeadLettered
}

// CountFDs reports the process's open file descriptors via /proc/self/fd,
// or -1 where /proc is unavailable.
func CountFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// orderTracker verifies, from the receiver's side, that each subscription's
// payload sequence numbers first arrive in increasing order — the
// wire-level form of the per-subscriber ordering guarantee. Delivery is
// at-least-once: a batch that fails mid-round is retried wholesale, so a
// receiver may legitimately see sequences it already acknowledged replayed
// (a rewind of duplicates). What must never happen is a sequence it has NOT
// seen arriving below its high-water mark — that is a genuinely new
// notification overtaken by a later one, the reordering the in-flight
// window's Key discipline exists to prevent.
type orderTracker struct {
	mu         sync.Mutex
	last       map[string]int
	seen       map[string]map[int]bool
	violations uint64
}

// Serialized entries carry the SubscriptionId reference parameter before
// the payload, and every generated payload embeds one <seq> element, so
// pairing each SubscriptionId with the next seq in document order
// reconstructs (subscriber, sequence) per entry whatever prefix the
// marshaller chose.
var (
	sidRe = regexp.MustCompile(`SubscriptionId[^>]*>([^<]+)<`)
	seqRe = regexp.MustCompile(`[<:]seq>([0-9]+)<`)
)

func (t *orderTracker) observe(body []byte) {
	sids := sidRe.FindAllSubmatchIndex(body, -1)
	seqs := seqRe.FindAllSubmatchIndex(body, -1)
	t.mu.Lock()
	defer t.mu.Unlock()
	j := 0
	for i, sm := range sids {
		for j < len(seqs) && seqs[j][0] < sm[0] {
			j++
		}
		if j >= len(seqs) {
			return
		}
		if i+1 < len(sids) && seqs[j][0] > sids[i+1][0] {
			continue // entry without a payload seq; nothing to order
		}
		sid := string(body[sm[2]:sm[3]])
		n, err := strconv.Atoi(string(body[seqs[j][2]:seqs[j][3]]))
		if err != nil {
			continue
		}
		if t.seen[sid] == nil {
			if t.seen == nil {
				t.seen = map[string]map[int]bool{}
			}
			t.seen[sid] = map[int]bool{}
		}
		if t.seen[sid][n] {
			continue // retransmission of an already-seen sequence
		}
		t.seen[sid][n] = true
		if last, ok := t.last[sid]; ok && n < last {
			t.violations++
		} else if n > t.last[sid] {
			t.last[sid] = n
		}
	}
}

func (t *orderTracker) count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.violations
}

// destHost is one loopback listener counting what actually arrived.
type destHost struct {
	srv       *http.Server
	url       string
	envelopes atomic.Uint64
	entries   atomic.Uint64
	requests  atomic.Uint64
	faults    atomic.Uint64
}

var notifyMarker = []byte("NotificationMessage>")

func startHost(latency time.Duration, faultEvery int, order *orderTracker) (*destHost, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &destHost{url: "http://" + ln.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/notify", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if latency > 0 {
			time.Sleep(latency)
		}
		if n := h.requests.Add(1); faultEvery > 0 && n%uint64(faultEvery) == 0 {
			// An injected fault is "not received": nothing is counted and
			// the sender sees a 5xx, exercising retry and the AIMD
			// decrease path.
			h.faults.Add(1)
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if order != nil {
			order.observe(body)
		}
		h.envelopes.Add(1)
		h.entries.Add(uint64(bytes.Count(body, notifyMarker) / 2))
		w.WriteHeader(http.StatusAccepted)
	})
	h.srv = &http.Server{Handler: mux}
	go func() { _ = h.srv.Serve(ln) }()
	return h, nil
}

// loadTopic is the single topic every load subscription binds to, making
// each publish a full fan-out.
var loadTopic = topics.NewPath(workload.NS, "jobs")

// Run executes one synthetic load: boot broker and hosts, subscribe,
// publish, drain, measure, tear down. The returned result is complete
// only if err is nil.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var res Result
	res.FDsBefore = CountFDs()

	if cfg.ProfileDir != "" {
		f, err := os.Create(cfg.ProfileDir + "/cpu.pprof")
		if err != nil {
			return res, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return res, err
		}
		defer pprof.StopCPUProfile()
	}

	var order *orderTracker
	if cfg.CheckOrder {
		order = &orderTracker{last: map[string]int{}}
	}
	hosts := make([]*destHost, cfg.Hosts)
	for i := range hosts {
		h, err := startHost(cfg.DestLatency, cfg.FaultEvery, order)
		if err != nil {
			return res, err
		}
		hosts[i] = h
		defer h.srv.Close()
	}

	cc := &transport.ConnCounter{}
	client := &transport.HTTPClient{HC: transport.NewPooledHTTPClient(transport.PoolConfig{
		MaxConnsPerHost: cfg.MaxConnsPerHost,
		Counter:         cc,
	})}
	broker, err := core.New(core.Config{
		Address:            "svc://wsm-load",
		ManagerAddress:     "svc://wsm-load-subs",
		Client:             client,
		QueueDepth:         cfg.QueueDepth,
		BatchMax:           cfg.BatchMax,
		BatchWindow:        cfg.BatchWindow,
		MaxInflightPerHost: cfg.MaxInflightPerHost,
		AdaptiveWindow:     cfg.AdaptiveWindow,
		MaxConnsPerHost:    cfg.MaxConnsPerHost,
		MaxDispatchWorkers: cfg.MaxDispatchWorkers,
		Retry:              cfg.Retry,
	})
	if err != nil {
		return res, err
	}
	var shutdownDone bool
	shutdown := func() {
		if !shutdownDone {
			shutdownDone = true
			broker.Shutdown()
		}
	}
	defer shutdown()

	// Subscriptions go in through the broker front door: real WSN 1.3
	// Subscribe envelopes, parsed and mediated like any external client's.
	lb := transport.NewLoopback()
	lb.Register("svc://wsm-load", broker.FrontHandler())
	lb.Register("svc://wsm-load-subs", broker.ManagerHandler())
	sub := &wsnt.Subscriber{Client: lb, Version: wsnt.V1_3}
	for i := 0; i < cfg.Subscribers; i++ {
		_, err := sub.Subscribe(context.Background(), "svc://wsm-load", &wsnt.SubscribeRequest{
			ConsumerReference: wsa.NewEPR(wsa.V200508, hosts[i%len(hosts)].url+"/notify"),
			TopicExpression:   "w:jobs",
			TopicDialect:      topics.DialectConcrete,
			TopicNS:           map[string]string{"w": workload.NS},
		})
		if err != nil {
			return res, fmt.Errorf("subscribe %d: %w", i, err)
		}
	}

	// Sample fds, open connections and in-flight window occupancy while
	// the run is hot. The sampler keeps its own peaks and hands them over
	// after it stops, so no field of res is ever shared between
	// goroutines.
	var peakConns atomic.Int64
	var peakFDs atomic.Int64
	var peakInflight atomic.Int64
	var peakWindow atomic.Int64
	destPool := broker.DestWriter()
	sampleDone := make(chan struct{})
	samplerStopped := make(chan struct{})
	go func() {
		defer close(samplerStopped)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-tick.C:
				if n := cc.Open(); n > peakConns.Load() {
					peakConns.Store(n)
				}
				if n := int64(CountFDs()); n > peakFDs.Load() {
					peakFDs.Store(n)
				}
				if destPool != nil {
					if n := int64(destPool.Inflight()); n > peakInflight.Load() {
						peakInflight.Store(n)
					}
					if n := int64(destPool.Window()); n > peakWindow.Load() {
						peakWindow.Store(n)
					}
				}
			}
		}
	}()
	defer func() {
		select {
		case <-sampleDone:
		default:
			close(sampleDone)
		}
	}()

	gen := workload.New(workload.Config{Seed: 1, Size: cfg.Size})
	start := time.Now()
	for i := 0; i < cfg.Publishes; i++ {
		ev := gen.Next()
		if err := broker.Publish(loadTopic, ev.Payload); err != nil {
			return res, fmt.Errorf("publish %d: %w", i, err)
		}
	}
	broker.Flush()
	res.Elapsed = time.Since(start)

	close(sampleDone)
	<-samplerStopped
	res.PeakConns = peakConns.Load()
	res.FDsPeak = int(peakFDs.Load())
	if n := cc.Open(); n > res.PeakConns {
		res.PeakConns = n
	}
	if n := CountFDs(); n > res.FDsPeak {
		res.FDsPeak = n
	}

	st := broker.DispatchStats()
	res.Published, res.Matched = st.Published, st.Matched
	res.Delivered, res.Dropped = st.Delivered, st.Dropped
	res.Failed, res.DeadLettered = st.Failed, st.DeadLettered
	if pool := broker.DestWriter(); pool != nil {
		res.Envelopes = pool.Envelopes()
		res.CoalescedEntries = pool.CoalescedEntries()
		res.RawSends = pool.RawSends()
		res.Canceled = pool.Canceled()
		res.CoalesceRatio = pool.CoalesceRatio()
		res.PeakHostInflight = pool.PeakInflight()
		res.WindowDecreases = pool.WindowDecreases()
	}
	res.PeakInflight = int(peakInflight.Load())
	res.PeakWindow = int(peakWindow.Load())
	for _, h := range hosts {
		res.WireEnvelopes += h.envelopes.Load()
		res.WireEntries += h.entries.Load()
		res.Faults += h.faults.Load()
	}
	if order != nil {
		res.OrderViolations = order.count()
	}
	res.Dials = cc.Dials()

	if cfg.ProfileDir != "" {
		f, err := os.Create(cfg.ProfileDir + "/heap.pprof")
		if err != nil {
			return res, err
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return res, err
		}
	}

	shutdown()
	for _, h := range hosts {
		h.srv.Close()
	}
	res.OpenConnsAfter = cc.Open()
	res.FDsAfter = CountFDs()
	return res, nil
}
