package load

import (
	"os"
	"strconv"
	"testing"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func smokeConfig() Config {
	return Config{
		Subscribers: envInt("WSM_LOAD_SUBS", 400),
		Hosts:       envInt("WSM_LOAD_HOSTS", 8),
		Publishes:   envInt("WSM_LOAD_PUBLISHES", 10),
		BatchMax:    envInt("WSM_LOAD_BATCH", 64),
		// The daemon's defaults: an adaptive in-flight window over each
		// per-host writer, so the smoke races the pipelined path.
		MaxInflightPerHost: envInt("WSM_LOAD_INFLIGHT", 4),
		AdaptiveWindow:     true,
		CheckOrder:         true,
	}
}

// TestLoadSmoke is the CI load gate (scaled up by WSM_LOAD_* in the
// load-smoke job): a full synthetic fan-out over real HTTP, with the
// dispatch conservation law asserted at exit, the receiver-side counts
// reconciled against the engine's, and per-subscriber delivery order
// verified at the receivers.
func TestLoadSmoke(t *testing.T) {
	cfg := smokeConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %d subs / %d hosts / %d publishes: delivered=%d envelopes=%d wire-entries=%d ratio=%.1f peak-conns=%d peak-inflight=%d elapsed=%s",
		cfg.Subscribers, cfg.Hosts, cfg.Publishes,
		res.Delivered, res.WireEnvelopes, res.WireEntries, res.CoalesceRatio, res.PeakConns, res.PeakHostInflight, res.Elapsed)
	if res.OrderViolations != 0 {
		t.Errorf("order violations = %d, want 0 (per-subscriber order must survive pipelining)", res.OrderViolations)
	}

	if !res.Conserved() {
		t.Errorf("conservation violated: Matched=%d Delivered=%d Dropped=%d Failed=%d DeadLettered=%d",
			res.Matched, res.Delivered, res.Dropped, res.Failed, res.DeadLettered)
	}
	want := uint64(cfg.Subscribers) * uint64(cfg.Publishes)
	if res.Matched != want {
		t.Errorf("Matched = %d, want %d (every publish matches every subscription)", res.Matched, want)
	}
	if res.Delivered != want {
		t.Errorf("Delivered = %d, want %d (healthy hosts drop nothing)", res.Delivered, want)
	}
	// Receiver-side ground truth: every delivered notification arrived on
	// the wire exactly once, as an entry of some envelope.
	if res.WireEntries != res.Delivered {
		t.Errorf("wire entries = %d, want %d (== Delivered)", res.WireEntries, res.Delivered)
	}
	if res.WireEnvelopes > res.WireEntries {
		t.Errorf("wire envelopes = %d > entries %d", res.WireEnvelopes, res.WireEntries)
	}
	if res.CoalesceRatio < 1 {
		t.Errorf("coalesce ratio = %v, want >= 1", res.CoalesceRatio)
	}
}

// TestLoadFDsBounded is the fd-leak regression at load scale: under the
// batched arm, the pooled client's connection count must stay within
// Hosts x MaxConnsPerHost no matter how many subscribers fan out — the
// bound the per-host writer plus the capped transport exist to enforce.
func TestLoadFDsBounded(t *testing.T) {
	cfg := smokeConfig()
	cfg.MaxConnsPerHost = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Errorf("conservation violated: %+v", res)
	}
	connBound := int64(cfg.Hosts) * int64(cfg.MaxConnsPerHost)
	if res.PeakConns > connBound {
		t.Errorf("peak open connections = %d, want <= hosts*maxConnsPerHost = %d", res.PeakConns, connBound)
	}
	if res.Dials > connBound {
		t.Errorf("total dials = %d, want <= %d (keep-alive reuse holds the bound)", res.Dials, connBound)
	}
	if res.FDsBefore >= 0 && res.FDsPeak >= 0 {
		// Both ends of every loopback connection live in this process, so
		// the in-process fd budget is two per connection plus one listener
		// per host plus runtime slack.
		fdBound := res.FDsBefore + int(connBound)*2 + cfg.Hosts + 64
		if res.FDsPeak > fdBound {
			t.Errorf("peak fds = %d, want <= %d (before=%d)", res.FDsPeak, fdBound, res.FDsBefore)
		}
	}
}

// TestLoadPerSubscriberArm sanity-checks the unbatched arm the benchmark
// compares against: no dest pool, one wire envelope per delivery.
func TestLoadPerSubscriberArm(t *testing.T) {
	cfg := smokeConfig()
	cfg.Subscribers = 100
	cfg.Hosts = 4
	cfg.Publishes = 5
	cfg.BatchMax = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Errorf("conservation violated: %+v", res)
	}
	if res.Envelopes != 0 || res.CoalescedEntries != 0 {
		t.Errorf("per-subscriber arm used the dest pool: envelopes=%d entries=%d", res.Envelopes, res.CoalescedEntries)
	}
	want := uint64(cfg.Subscribers) * uint64(cfg.Publishes)
	if res.Delivered != want || res.WireEnvelopes != want || res.WireEntries != want {
		t.Errorf("delivered=%d wire-envelopes=%d wire-entries=%d, want all %d",
			res.Delivered, res.WireEnvelopes, res.WireEntries, want)
	}
}
