package workload

import (
	"testing"

	"repro/internal/xmldom"
)

func TestDeterministicForSeed(t *testing.T) {
	a := New(Config{Seed: 42, Size: Medium})
	b := New(Config{Seed: 42, Size: Medium})
	for i := 0; i < 50; i++ {
		ea, eb := a.Next(), b.Next()
		if !ea.Topic.Equal(eb.Topic) || !ea.Payload.Equal(eb.Payload) {
			t.Fatalf("stream diverged at %d", i)
		}
	}
	c := New(Config{Seed: 7, Size: Medium})
	same := true
	a2 := New(Config{Seed: 42, Size: Medium})
	for i := 0; i < 20; i++ {
		if !a2.Next().Payload.Equal(c.Next().Payload) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSizeClassesOrdered(t *testing.T) {
	sizes := map[Size]int{}
	for _, s := range []Size{Small, Medium, Large} {
		g := New(Config{Seed: 1, Size: s})
		sizes[s] = len(xmldom.Marshal(g.Next().Payload))
	}
	if !(sizes[Small] < sizes[Medium] && sizes[Medium] < sizes[Large]) {
		t.Errorf("size ordering violated: %v", sizes)
	}
	if sizes[Large] < 5000 {
		t.Errorf("large payload only %d bytes", sizes[Large])
	}
}

func TestTopicDistribution(t *testing.T) {
	g := New(Config{Seed: 3, TopicFanout: 4, HotTopicBias: 0.9})
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[g.Next().Topic.String()]++
	}
	hot := g.Topics()[0].String()
	if counts[hot] < 800 {
		t.Errorf("hot topic got %d/1000 with 0.9 bias", counts[hot])
	}
	if len(counts) < 2 {
		t.Error("no spread across topics")
	}
}

func TestTopicsWithinAdvertisedSet(t *testing.T) {
	g := New(Config{Seed: 5, TopicFanout: 6})
	allowed := map[string]bool{}
	for _, tp := range g.Topics() {
		allowed[tp.String()] = true
	}
	if len(allowed) != 6 {
		t.Fatalf("fanout = %d", len(allowed))
	}
	for _, ev := range g.Batch(200) {
		if !allowed[ev.Topic.String()] {
			t.Fatalf("event on unadvertised topic %s", ev.Topic)
		}
	}
}

func TestBatchAdvancesSequence(t *testing.T) {
	g := New(Config{Seed: 9, Size: Small})
	evs := g.Batch(3)
	if len(evs) != 3 {
		t.Fatal("batch size wrong")
	}
	s1 := evs[0].Payload.ChildText(xmldom.N(NS, "seq"))
	s3 := evs[2].Payload.ChildText(xmldom.N(NS, "seq"))
	if s1 != "1" || s3 != "3" {
		t.Errorf("sequence = %s..%s", s1, s3)
	}
}
