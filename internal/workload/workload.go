// Package workload generates synthetic notification streams for the
// benchmark harness: parameterised event payloads over a topic
// distribution, standing in for the Grid traces (job status, monitoring,
// audit events) the paper's introduction motivates but never publishes.
// The generator is deterministic for a given seed, so benchmark runs are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/topics"
	"repro/internal/xmldom"
)

// Size classes for payloads, roughly matching small status pings, typical
// job-event documents, and bulky result summaries.
type Size int

const (
	// Small is a two-field status event (~120 bytes of XML).
	Small Size = iota
	// Medium is a job document with a dozen fields (~1 KiB).
	Medium
	// Large embeds a result table (~10 KiB).
	Large
)

// String names the size class.
func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// NS is the namespace of generated events.
const NS = "urn:workload:grid"

// Config parameterises a generator.
type Config struct {
	// Seed makes the stream deterministic.
	Seed int64
	// Size selects the payload class.
	Size Size
	// TopicFanout is the number of distinct leaf topics events spread
	// over (default 8); all share the root "cluster/jobs".
	TopicFanout int
	// HotTopicBias is the fraction (0..1) of events on the first topic —
	// a skewed distribution approximating one chatty job (default 0.5).
	HotTopicBias float64
}

// Generator produces a deterministic event stream.
type Generator struct {
	cfg Config
	rng *rand.Rand
	seq int
	tps []topics.Path
}

// New builds a generator.
func New(cfg Config) *Generator {
	if cfg.TopicFanout <= 0 {
		cfg.TopicFanout = 8
	}
	if cfg.HotTopicBias <= 0 || cfg.HotTopicBias > 1 {
		cfg.HotTopicBias = 0.5
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	states := []string{"submitted", "running", "completed", "failed", "suspended", "resumed", "migrated", "archived"}
	for i := 0; i < cfg.TopicFanout; i++ {
		g.tps = append(g.tps, topics.NewPath(NS, "cluster", "jobs", states[i%len(states)]+fmt.Sprint(i/len(states))))
	}
	return g
}

// Topics returns the topic set the generator publishes on.
func (g *Generator) Topics() []topics.Path {
	out := make([]topics.Path, len(g.tps))
	copy(out, g.tps)
	return out
}

// Event is one generated notification.
type Event struct {
	Topic   topics.Path
	Payload *xmldom.Element
}

// Next produces the next event in the stream.
func (g *Generator) Next() Event {
	g.seq++
	tp := g.tps[0]
	if g.rng.Float64() >= g.cfg.HotTopicBias {
		tp = g.tps[g.rng.Intn(len(g.tps))]
	}
	return Event{Topic: tp, Payload: g.payload(tp)}
}

// Batch produces n consecutive events.
func (g *Generator) Batch(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func (g *Generator) payload(tp topics.Path) *xmldom.Element {
	jobID := fmt.Sprintf("job-%06d", g.rng.Intn(1_000_000))
	e := xmldom.Elem(NS, "JobEvent",
		xmldom.Elem(NS, "seq", fmt.Sprint(g.seq)),
		xmldom.Elem(NS, "job", jobID),
		xmldom.Elem(NS, "state", tp.Segments[len(tp.Segments)-1]),
	)
	if g.cfg.Size == Small {
		return e
	}
	e.Append(xmldom.Elem(NS, "submitTime", "2006-02-01T00:00:00Z"))
	e.Append(xmldom.Elem(NS, "host", fmt.Sprintf("node-%03d.cluster", g.rng.Intn(512))))
	e.Append(xmldom.Elem(NS, "queue", []string{"batch", "interactive", "gpu"}[g.rng.Intn(3)]))
	e.Append(xmldom.Elem(NS, "user", fmt.Sprintf("user%02d", g.rng.Intn(50))))
	res := xmldom.Elem(NS, "resources",
		xmldom.Elem(NS, "cpuSeconds", fmt.Sprint(g.rng.Intn(100000))),
		xmldom.Elem(NS, "memMB", fmt.Sprint(g.rng.Intn(65536))),
		xmldom.Elem(NS, "diskMB", fmt.Sprint(g.rng.Intn(1<<20))),
		xmldom.Elem(NS, "exitCode", fmt.Sprint(g.rng.Intn(3))),
	)
	e.Append(res)
	if g.cfg.Size == Medium {
		return e
	}
	table := xmldom.NewElement(xmldom.N(NS, "resultSummary"))
	for i := 0; i < 100; i++ {
		table.Append(xmldom.Elem(NS, "row",
			xmldom.Elem(NS, "k", fmt.Sprintf("metric-%d", i)),
			xmldom.Elem(NS, "v", fmt.Sprint(g.rng.Float64()*1000)),
		))
	}
	e.Append(table)
	return e
}
