package topics

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// refMatch is a naive reference matcher for full-dialect expressions,
// implemented as regexp-free backtracking over string segments built
// independently of the production matcher.
func refMatch(exprNS string, segs []exprSeg, p Path) bool {
	if len(p.Segments) == 0 {
		return false
	}
	if exprNS != "" && exprNS != p.Namespace {
		return false
	}
	var rec func(ei, pi int) bool
	rec = func(ei, pi int) bool {
		if ei == len(segs) {
			return pi == len(p.Segments)
		}
		switch segs[ei].kind {
		case segSelf:
			return rec(ei+1, pi)
		case segName:
			return pi < len(p.Segments) && p.Segments[pi] == segs[ei].name && rec(ei+1, pi+1)
		case segWild:
			return pi < len(p.Segments) && rec(ei+1, pi+1)
		case segDeep:
			for skip := 0; pi+skip <= len(p.Segments); skip++ {
				if rec(ei+1, pi+skip) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, 0)
}

type genExprAndPath struct {
	expr string
	path Path
}

func (genExprAndPath) Generate(r *rand.Rand, _ int) reflect.Value {
	names := []string{"a", "b", "c"}
	// Random expression: root (name or *), then 0-3 steps of /name, /*,
	// //name, optionally ending //. .
	var sb strings.Builder
	sb.WriteString("t:")
	if r.Intn(4) == 0 {
		sb.WriteString("*")
	} else {
		sb.WriteString(names[r.Intn(len(names))])
	}
	for i := 0; i < r.Intn(4); i++ {
		switch r.Intn(3) {
		case 0:
			sb.WriteString("/" + names[r.Intn(len(names))])
		case 1:
			sb.WriteString("/*")
		case 2:
			sb.WriteString("//" + names[r.Intn(len(names))])
		}
	}
	if r.Intn(4) == 0 {
		sb.WriteString("//.")
	}
	segs := make([]string, 1+r.Intn(5))
	for i := range segs {
		segs[i] = names[r.Intn(len(names))]
	}
	return reflect.ValueOf(genExprAndPath{
		expr: sb.String(),
		path: Path{Namespace: "urn:gen", Segments: segs},
	})
}

// Property: the production matcher agrees with the reference matcher on
// random full-dialect expressions and paths.
func TestPropertyMatcherAgreesWithReference(t *testing.T) {
	ns := map[string]string{"t": "urn:gen"}
	f := func(g genExprAndPath) bool {
		e, err := ParseExpression(DialectFull, g.expr, ns)
		if err != nil {
			// Generated expressions are always syntactically valid; a
			// parse failure is itself a bug.
			t.Logf("parse %q: %v", g.expr, err)
			return false
		}
		return e.Matches(g.path) == refMatch(e.Namespace, e.segs, g.path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every concrete expression matches exactly the path it names.
func TestPropertyConcreteMatchesItself(t *testing.T) {
	names := []string{"x", "y", "z"}
	f := func(idxs []uint8) bool {
		if len(idxs) == 0 || len(idxs) > 6 {
			return true
		}
		segs := make([]string, len(idxs))
		for i, ix := range idxs {
			segs[i] = names[int(ix)%len(names)]
		}
		expr := "t:" + strings.Join(segs, "/")
		e, err := ParseExpression(DialectConcrete, expr, map[string]string{"t": "urn:p"})
		if err != nil {
			return false
		}
		self := Path{Namespace: "urn:p", Segments: segs}
		if !e.Matches(self) {
			return false
		}
		// Dropping or adding a segment breaks the match.
		if len(segs) > 1 && e.Matches(Path{Namespace: "urn:p", Segments: segs[:len(segs)-1]}) {
			return false
		}
		return !e.Matches(self.Child("extra"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: EscapeSegment always yields a valid NCName and UnescapeSegment
// inverts it — for arbitrary strings, including the MQTT topic-level
// alphabet (`+`/`#` literals, spaces, digits-first names, empty levels)
// that motivated the escaping.
func TestPropertyEscapeSegmentRoundTrip(t *testing.T) {
	f := func(s string) bool {
		esc := EscapeSegment(s)
		if !validNCName(esc) {
			t.Logf("EscapeSegment(%q) = %q is not a valid NCName", s, esc)
			return false
		}
		if got := UnescapeSegment(esc); got != s {
			t.Logf("UnescapeSegment(EscapeSegment(%q)) = %q", s, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// The cases that found the bug: wildcard literals, the escape
	// introducer itself, and empty levels.
	for _, s := range []string{"+", "#", "a+b", "a#", "_x", "_x2b_", "a_x5f_", "", "9temp", "-", ".", "sensor 1", "übung"} {
		esc := EscapeSegment(s)
		if !validNCName(esc) {
			t.Errorf("EscapeSegment(%q) = %q: not a valid NCName", s, esc)
		}
		if got := UnescapeSegment(esc); got != s {
			t.Errorf("round trip %q -> %q -> %q", s, esc, got)
		}
	}
}

// Property: segments that are already plain NCNames without escape
// sequences pass through both directions untouched.
func TestPropertyEscapeSegmentPlainNamesStable(t *testing.T) {
	names := []string{"jobs", "temp", "a", "B-2", "under_score", "dot.ted"}
	for _, s := range names {
		if EscapeSegment(s) != s {
			t.Errorf("EscapeSegment(%q) = %q, want unchanged", s, EscapeSegment(s))
		}
		if UnescapeSegment(s) != s {
			t.Errorf("UnescapeSegment(%q) = %q, want unchanged", s, UnescapeSegment(s))
		}
	}
}

// Property: Space.Expand returns exactly the registered topics the
// expression matches.
func TestPropertyExpandConsistent(t *testing.T) {
	f := func(g genExprAndPath, extra []uint8) bool {
		s := NewSpace()
		var all []Path
		add := func(p Path) {
			s.Add(p)
			all = append(all, p)
		}
		add(g.path)
		names := []string{"a", "b", "c"}
		for i := 0; i < len(extra)%5; i++ {
			segs := make([]string, 1+int(extra[i])%3)
			for j := range segs {
				segs[j] = names[int(extra[i]+uint8(j))%3]
			}
			add(Path{Namespace: "urn:gen", Segments: segs})
		}
		e, err := ParseExpression(DialectFull, g.expr, map[string]string{"t": "urn:gen"})
		if err != nil {
			return false
		}
		got := s.Expand(e)
		want := 0
		for _, p := range s.Topics() {
			if e.Matches(p) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, p := range got {
			if !e.Matches(p) {
				return false
			}
		}
		return s.Supports(e) == (want > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
