// Package topics implements the WS-Topics specification: hierarchical
// topic spaces and the three topic-expression dialects (Simple, Concrete,
// Full) that WS-Notification subscriptions use as their topic filter.
//
// WS-Eventing has no topic concept — the paper notes (§V.4 item 6) that an
// equivalent topic marker must travel in the SOAP header of a WSE message —
// so this package is also what the mediation layer consults when it
// relocates topic information between the two spec families.
package topics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/xmldom"
)

// Dialect URIs from WS-Topics 1.3.
const (
	// DialectSimple permits only a root topic name.
	DialectSimple = "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Simple"
	// DialectConcrete permits a fixed path of topic names.
	DialectConcrete = "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Concrete"
	// DialectFull adds the * wildcard, // descendant paths and the
	// trailing "." self marker.
	DialectFull = "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Full"
)

// NS is the WS-Topics namespace.
const NS = "http://docs.oasis-open.org/wsn/t-1"

func init() { xmldom.RegisterPrefix(NS, "wstop") }

// Path is a concrete topic: a topic namespace plus the path of topic names
// from the root topic down. Child topic names live implicitly in the root
// topic's namespace, per WS-Topics.
type Path struct {
	Namespace string
	Segments  []string
}

// NewPath builds a concrete topic path.
func NewPath(namespace string, segments ...string) Path {
	return Path{Namespace: namespace, Segments: segments}
}

// String renders the path in Clark-rooted form for logs and map keys.
func (p Path) String() string {
	if p.Namespace == "" {
		return strings.Join(p.Segments, "/")
	}
	return "{" + p.Namespace + "}" + strings.Join(p.Segments, "/")
}

// IsZero reports an empty path.
func (p Path) IsZero() bool { return len(p.Segments) == 0 }

// Root returns the root topic name.
func (p Path) Root() string {
	if len(p.Segments) == 0 {
		return ""
	}
	return p.Segments[0]
}

// Parent returns the path one level up, or a zero Path at the root.
func (p Path) Parent() Path {
	if len(p.Segments) <= 1 {
		return Path{}
	}
	return Path{Namespace: p.Namespace, Segments: p.Segments[:len(p.Segments)-1]}
}

// Child returns the path extended by one segment.
func (p Path) Child(name string) Path {
	seg := make([]string, 0, len(p.Segments)+1)
	seg = append(seg, p.Segments...)
	seg = append(seg, name)
	return Path{Namespace: p.Namespace, Segments: seg}
}

// Equal compares two paths.
func (p Path) Equal(q Path) bool {
	if p.Namespace != q.Namespace || len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		if p.Segments[i] != q.Segments[i] {
			return false
		}
	}
	return true
}

// DescendantOf reports whether p is strictly below q in the topic tree.
func (p Path) DescendantOf(q Path) bool {
	if p.Namespace != q.Namespace || len(p.Segments) <= len(q.Segments) {
		return false
	}
	for i := range q.Segments {
		if p.Segments[i] != q.Segments[i] {
			return false
		}
	}
	return true
}

// ParsePath parses a concrete topic path "pfx:root/child/..." resolving
// the root prefix via ns. An unprefixed root yields an empty namespace.
func ParsePath(s string, ns map[string]string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Path{}, fmt.Errorf("topics: empty topic path")
	}
	segs := strings.Split(s, "/")
	var space string
	if i := strings.Index(segs[0], ":"); i >= 0 {
		prefix := segs[0][:i]
		uri, ok := ns[prefix]
		if !ok {
			return Path{}, fmt.Errorf("topics: undeclared prefix %q in topic %q", prefix, s)
		}
		space = uri
		segs[0] = segs[0][i+1:]
	}
	for i, seg := range segs {
		if !validNCName(seg) {
			return Path{}, fmt.Errorf("topics: invalid topic segment %q (position %d) in %q", seg, i, s)
		}
	}
	return Path{Namespace: space, Segments: segs}, nil
}

// ParseClark parses the Clark-rooted form String renders — "{ns}a/b", or
// "a/b" when the namespace is empty — back into a Path. It is the inverse
// of String for non-zero paths, used where topics round-trip through flat
// storage (the durable event log's records).
func ParseClark(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Path{}, fmt.Errorf("topics: empty topic path")
	}
	var space string
	if strings.HasPrefix(s, "{") {
		i := strings.Index(s, "}")
		if i < 0 {
			return Path{}, fmt.Errorf("topics: unterminated namespace in %q", s)
		}
		space, s = s[1:i], s[i+1:]
		if s == "" {
			return Path{}, fmt.Errorf("topics: namespace without segments")
		}
	}
	segs := strings.Split(s, "/")
	for i, seg := range segs {
		if !validNCName(seg) {
			return Path{}, fmt.Errorf("topics: invalid topic segment %q (position %d)", seg, i)
		}
	}
	return Path{Namespace: space, Segments: segs}, nil
}

func validNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !(r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')) {
				return false
			}
			continue
		}
		if !(r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

// EscapeSegment maps an arbitrary string onto a valid NCName so that
// foreign topic alphabets (MQTT levels, which allow spaces, digits-first
// names and the `+`/`#` wildcard characters as literals) can live inside
// Clark-form topic paths. Characters that are invalid at their position —
// and any `_` that directly precedes an `x`, which would collide with the
// escape introducer — are replaced by `_x<hex>_` (lowercase hex of the
// code point). The empty string escapes to the marker "_x_".
// UnescapeSegment inverts it: UnescapeSegment(EscapeSegment(s)) == s for
// every s (the round-trip property test pins this).
func EscapeSegment(s string) string {
	if s == "" {
		return "_x_"
	}
	var b strings.Builder
	runes := []rune(s)
	for i, r := range runes {
		esc := false
		if i == 0 {
			esc = !(r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'))
		} else {
			esc = !(r == '_' || r == '-' || r == '.' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9'))
		}
		if r == '_' && i+1 < len(runes) && runes[i+1] == 'x' {
			esc = true
		}
		if esc {
			fmt.Fprintf(&b, "_x%x_", r)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeSegment decodes the `_x<hex>_` sequences EscapeSegment emits.
// Sequences that do not parse as an escape (non-hex digits, more than six
// of them, unterminated) pass through literally, so NCNames authored
// without EscapeSegment survive unchanged.
func UnescapeSegment(s string) string {
	if s == "_x_" {
		return ""
	}
	i := strings.Index(s, "_x")
	if i < 0 {
		return s
	}
	var b strings.Builder
	for {
		b.WriteString(s[:i])
		rest := s[i+2:]
		end := strings.IndexByte(rest, '_')
		ok := end > 0 && end <= 6
		var r int64
		if ok {
			var err error
			r, err = strconv.ParseInt(rest[:end], 16, 32)
			ok = err == nil && r >= 0 && r <= 0x10FFFF && utf8.ValidRune(rune(r))
		}
		if ok {
			b.WriteRune(rune(r))
			s = rest[end+1:]
		} else {
			b.WriteString("_x")
			s = rest
		}
		i = strings.Index(s, "_x")
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
	}
}

// segKind is one element of a compiled full-dialect expression.
type segKind int

const (
	segName segKind = iota // exact NCName
	segWild                // * — any single topic name
	segDeep                // // — zero or more intermediate topics
	segSelf                // . — the node reached so far (only meaningful last)
)

type exprSeg struct {
	kind segKind
	name string
}

// Expression is a compiled topic expression of a given dialect.
type Expression struct {
	Dialect   string
	Namespace string // resolved root namespace ("" = any/no namespace)
	raw       string
	segs      []exprSeg
}

// Raw returns the original expression text.
func (e *Expression) Raw() string { return e.raw }

// String renders the expression with its dialect for logs.
func (e *Expression) String() string {
	return fmt.Sprintf("%s [%s]", e.raw, dialectShort(e.Dialect))
}

func dialectShort(d string) string {
	switch d {
	case DialectSimple:
		return "Simple"
	case DialectConcrete:
		return "Concrete"
	case DialectFull:
		return "Full"
	}
	return d
}

// ParseExpression compiles a topic expression of the given dialect with the
// given prefix bindings.
func ParseExpression(dialect, expr string, ns map[string]string) (*Expression, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return nil, fmt.Errorf("topics: empty topic expression")
	}
	switch dialect {
	case DialectSimple:
		p, err := ParsePath(expr, ns)
		if err != nil {
			return nil, err
		}
		if len(p.Segments) != 1 {
			return nil, fmt.Errorf("topics: Simple dialect allows only a root topic, got %q", expr)
		}
		return &Expression{Dialect: dialect, Namespace: p.Namespace, raw: expr,
			segs: []exprSeg{{kind: segName, name: p.Segments[0]}}}, nil
	case DialectConcrete:
		p, err := ParsePath(expr, ns)
		if err != nil {
			return nil, err
		}
		segs := make([]exprSeg, len(p.Segments))
		for i, s := range p.Segments {
			segs[i] = exprSeg{kind: segName, name: s}
		}
		return &Expression{Dialect: dialect, Namespace: p.Namespace, raw: expr, segs: segs}, nil
	case DialectFull:
		return parseFull(expr, ns)
	default:
		return nil, &UnknownDialectError{Dialect: dialect}
	}
}

// UnknownDialectError reports an unsupported topic-expression dialect; the
// subscription layer converts it into the spec's InvalidFilterFault.
type UnknownDialectError struct{ Dialect string }

func (e *UnknownDialectError) Error() string {
	return fmt.Sprintf("topics: unknown topic expression dialect %q", e.Dialect)
}

func parseFull(expr string, ns map[string]string) (*Expression, error) {
	out := &Expression{Dialect: DialectFull, raw: expr}
	rest := expr
	// Leading "//" means "descend from the (virtual) namespace root".
	if strings.HasPrefix(rest, "//") {
		out.segs = append(out.segs, exprSeg{kind: segDeep})
		rest = rest[2:]
	}
	first := true
	for {
		var tok string
		if i := strings.Index(rest, "/"); i >= 0 {
			tok, rest = rest[:i], rest[i:]
		} else {
			tok, rest = rest, ""
		}
		if tok == "" {
			return nil, fmt.Errorf("topics: empty segment in %q", expr)
		}
		seg, err := fullSeg(tok, first, ns, out)
		if err != nil {
			return nil, err
		}
		out.segs = append(out.segs, seg)
		first = false
		switch {
		case rest == "":
			// done
		case strings.HasPrefix(rest, "//"):
			out.segs = append(out.segs, exprSeg{kind: segDeep})
			rest = rest[2:]
		default: // single '/'
			rest = rest[1:]
		}
		if rest == "" {
			break
		}
	}
	// "." is only meaningful as the final segment.
	for i, s := range out.segs[:len(out.segs)-1] {
		if s.kind == segSelf {
			return nil, fmt.Errorf("topics: '.' must be the last segment in %q (position %d)", expr, i)
		}
	}
	return out, nil
}

func fullSeg(tok string, first bool, ns map[string]string, out *Expression) (exprSeg, error) {
	switch tok {
	case "*":
		return exprSeg{kind: segWild}, nil
	case ".":
		return exprSeg{kind: segSelf}, nil
	}
	name := tok
	if i := strings.Index(tok, ":"); i >= 0 {
		if !first {
			return exprSeg{}, fmt.Errorf("topics: prefixed name %q allowed only at the root", tok)
		}
		uri, ok := ns[tok[:i]]
		if !ok {
			return exprSeg{}, fmt.Errorf("topics: undeclared prefix %q", tok[:i])
		}
		out.Namespace = uri
		name = tok[i+1:]
		if name == "*" { // prefixed wildcard: any root topic in the namespace
			return exprSeg{kind: segWild}, nil
		}
	}
	if name == "" || !validNCName(name) {
		return exprSeg{}, fmt.Errorf("topics: invalid topic name %q", tok)
	}
	return exprSeg{kind: segName, name: name}, nil
}

// Matches reports whether the expression selects the concrete topic path.
func (e *Expression) Matches(p Path) bool {
	if p.IsZero() {
		return false
	}
	if e.Namespace != "" && e.Namespace != p.Namespace {
		return false
	}
	return matchSegs(e.segs, p.Segments)
}

// matchSegs matches expression segments against path segments with
// backtracking for segDeep. segSelf consumes no path segments and matches
// if the path is exhausted or not: "a/." matches exactly "a"; "a//." has
// segDeep before it and so matches "a" and every descendant.
func matchSegs(es []exprSeg, ps []string) bool {
	if len(es) == 0 {
		return len(ps) == 0
	}
	switch es[0].kind {
	case segSelf:
		return matchSegs(es[1:], ps)
	case segName:
		if len(ps) == 0 || ps[0] != es[0].name {
			return false
		}
		return matchSegs(es[1:], ps[1:])
	case segWild:
		if len(ps) == 0 {
			return false
		}
		return matchSegs(es[1:], ps[1:])
	case segDeep:
		// Try consuming 0..len(ps) segments.
		for skip := 0; skip <= len(ps); skip++ {
			if matchSegs(es[1:], ps[skip:]) {
				return true
			}
		}
		return false
	}
	return false
}

// IsConcrete reports whether the expression names exactly one topic (no
// wildcards), in which case ConcretePath returns it. Brokers use this for
// GetCurrentMessage, which requires a single topic.
func (e *Expression) IsConcrete() bool {
	for _, s := range e.segs {
		if s.kind != segName {
			return false
		}
	}
	return true
}

// ConcretePath returns the single topic a concrete expression names.
func (e *Expression) ConcretePath() (Path, bool) {
	if !e.IsConcrete() {
		return Path{}, false
	}
	segs := make([]string, len(e.segs))
	for i, s := range e.segs {
		segs[i] = s.name
	}
	return Path{Namespace: e.Namespace, Segments: segs}, true
}

// IndexPrefix reports the longest leading run of concrete names in the
// expression, for use as a topic-index key. exact is true when the
// expression matches only that exact path (all segments concrete, modulo a
// trailing '.'); otherwise the expression matches only topics at or below
// the prefix. ok is false when the expression has no concrete leading
// name (e.g. "*", "//a") and therefore cannot be indexed by prefix.
func (e *Expression) IndexPrefix() (prefix Path, exact, ok bool) {
	var names []string
	exact = true
	for i := 0; i < len(e.segs); i++ {
		s := e.segs[i]
		if s.kind == segName {
			names = append(names, s.name)
			continue
		}
		if s.kind == segSelf && i == len(e.segs)-1 {
			break // trailing '.' names the node already reached
		}
		exact = false
		break
	}
	if len(names) == 0 {
		return Path{}, false, false
	}
	return Path{Namespace: e.Namespace, Segments: names}, exact, true
}

// Space is a topic space: the set of topics a producer supports, organised
// as a forest per namespace. It is safe for concurrent use. Producers
// advertise it as a WS-Topics TopicSet resource document; brokers use it to
// validate subscriptions against supported topics.
type Space struct {
	mu    sync.RWMutex
	roots map[string]*treeNode // keyed by namespace
}

type treeNode struct {
	children map[string]*treeNode
	present  bool // true if the topic itself was added (not just an ancestor path)
}

// NewSpace returns an empty topic space.
func NewSpace() *Space { return &Space{roots: map[string]*treeNode{}} }

// Add registers a topic (and implicitly its ancestor path).
func (s *Space) Add(p Path) {
	if p.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	root, ok := s.roots[p.Namespace]
	if !ok {
		root = &treeNode{children: map[string]*treeNode{}}
		s.roots[p.Namespace] = root
	}
	cur := root
	for _, seg := range p.Segments {
		next, ok := cur.children[seg]
		if !ok {
			next = &treeNode{children: map[string]*treeNode{}}
			cur.children[seg] = next
		}
		cur = next
	}
	cur.present = true
}

// Contains reports whether the exact topic was added.
func (s *Space) Contains(p Path) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.lookup(p)
	return n != nil && n.present
}

func (s *Space) lookup(p Path) *treeNode {
	cur, ok := s.roots[p.Namespace]
	if !ok {
		return nil
	}
	for _, seg := range p.Segments {
		cur, ok = cur.children[seg]
		if !ok {
			return nil
		}
	}
	return cur
}

// Topics returns every registered topic in deterministic order.
func (s *Space) Topics() []Path {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Path
	nss := make([]string, 0, len(s.roots))
	for ns := range s.roots {
		nss = append(nss, ns)
	}
	sort.Strings(nss)
	for _, ns := range nss {
		collectTopics(s.roots[ns], Path{Namespace: ns}, &out)
	}
	return out
}

func collectTopics(n *treeNode, at Path, out *[]Path) {
	if n.present {
		*out = append(*out, at)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		collectTopics(n.children[name], at.Child(name), out)
	}
}

// Expand returns the registered topics an expression selects.
func (s *Space) Expand(e *Expression) []Path {
	var out []Path
	for _, p := range s.Topics() {
		if e.Matches(p) {
			out = append(out, p)
		}
	}
	return out
}

// Supports reports whether at least one registered topic matches the
// expression — the check behind WS-Notification's TopicNotSupported fault.
func (s *Space) Supports(e *Expression) bool {
	for _, p := range s.Topics() {
		if e.Matches(p) {
			return true
		}
	}
	return false
}

// TopicSetElement renders the space as a WS-Topics TopicSet resource
// document fragment: one child tree per namespace, each topic node flagged
// with wstop:topic="true".
func (s *Space) TopicSetElement() *xmldom.Element {
	set := xmldom.NewElement(xmldom.N(NS, "TopicSet"))
	s.mu.RLock()
	defer s.mu.RUnlock()
	nss := make([]string, 0, len(s.roots))
	for ns := range s.roots {
		nss = append(nss, ns)
	}
	sort.Strings(nss)
	for _, ns := range nss {
		renderTopicNodes(s.roots[ns], ns, set)
	}
	return set
}

func renderTopicNodes(n *treeNode, ns string, parent *xmldom.Element) {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		child := n.children[name]
		el := xmldom.NewElement(xmldom.N(ns, name))
		if child.present {
			el.SetAttr(xmldom.N(NS, "topic"), "true")
		}
		parent.Append(el)
		renderTopicNodes(child, ns, el)
	}
}
