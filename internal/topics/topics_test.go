package topics

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
)

var tns = map[string]string{"t": "urn:topics:test", "o": "urn:other"}

func mustExpr(t *testing.T, dialect, expr string) *Expression {
	t.Helper()
	e, err := ParseExpression(dialect, expr, tns)
	if err != nil {
		t.Fatalf("ParseExpression(%s, %q): %v", dialectShort(dialect), expr, err)
	}
	return e
}

func path(segs ...string) Path { return NewPath("urn:topics:test", segs...) }

func TestParsePath(t *testing.T) {
	p, err := ParsePath("t:grid/jobs/completed", tns)
	if err != nil {
		t.Fatal(err)
	}
	if p.Namespace != "urn:topics:test" {
		t.Errorf("namespace = %q", p.Namespace)
	}
	if len(p.Segments) != 3 || p.Root() != "grid" || p.Segments[2] != "completed" {
		t.Errorf("segments = %v", p.Segments)
	}
	if p.String() != "{urn:topics:test}grid/jobs/completed" {
		t.Errorf("String = %q", p.String())
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, bad := range []string{"", "  ", "x:abc", "t:a//b", "t:a/", "t:9bad", "t:a/b c"} {
		if _, err := ParsePath(bad, tns); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", bad)
		}
	}
}

func TestPathRelations(t *testing.T) {
	p := path("a", "b", "c")
	if !p.DescendantOf(path("a")) || !p.DescendantOf(path("a", "b")) {
		t.Error("descendant relation failed")
	}
	if p.DescendantOf(p) {
		t.Error("a path is not its own descendant")
	}
	if p.DescendantOf(path("x")) {
		t.Error("unrelated path misdetected as ancestor")
	}
	if p.DescendantOf(NewPath("urn:other", "a", "b")) {
		t.Error("cross-namespace descendant")
	}
	if !p.Parent().Equal(path("a", "b")) {
		t.Errorf("parent = %v", p.Parent())
	}
	if !path("a").Parent().IsZero() {
		t.Error("root parent should be zero")
	}
	if !p.Equal(path("a", "b").Child("c")) {
		t.Error("Child failed")
	}
}

func TestSimpleDialect(t *testing.T) {
	e := mustExpr(t, DialectSimple, "t:grid")
	if !e.Matches(path("grid")) {
		t.Error("simple expression should match its root")
	}
	if e.Matches(path("grid", "jobs")) {
		t.Error("simple dialect must not match descendants")
	}
	if e.Matches(NewPath("urn:other", "grid")) {
		t.Error("namespace must be honoured")
	}
	if _, err := ParseExpression(DialectSimple, "t:grid/jobs", tns); err == nil {
		t.Error("simple dialect must reject paths")
	}
}

func TestConcreteDialect(t *testing.T) {
	e := mustExpr(t, DialectConcrete, "t:grid/jobs/completed")
	if !e.Matches(path("grid", "jobs", "completed")) {
		t.Error("concrete path should match exactly")
	}
	for _, p := range []Path{path("grid"), path("grid", "jobs"), path("grid", "jobs", "completed", "x")} {
		if e.Matches(p) {
			t.Errorf("concrete expression matched %v", p)
		}
	}
	cp, ok := e.ConcretePath()
	if !ok || !cp.Equal(path("grid", "jobs", "completed")) {
		t.Errorf("ConcretePath = %v %v", cp, ok)
	}
}

func TestFullDialect(t *testing.T) {
	cases := []struct {
		expr string
		yes  []Path
		no   []Path
	}{
		{"t:grid/*/completed",
			[]Path{path("grid", "jobs", "completed"), path("grid", "tasks", "completed")},
			[]Path{path("grid", "completed"), path("grid", "a", "b", "completed")}},
		{"t:grid//completed",
			[]Path{path("grid", "completed"), path("grid", "jobs", "completed"), path("grid", "a", "b", "completed")},
			[]Path{path("grid"), path("other", "completed")}},
		{"t:grid//.",
			[]Path{path("grid"), path("grid", "jobs"), path("grid", "jobs", "completed")},
			[]Path{path("other"), NewPath("urn:other", "grid")}},
		{"*",
			[]Path{path("grid"), NewPath("urn:other", "x"), NewPath("", "y")},
			[]Path{path("grid", "jobs")}},
		{"t:*",
			[]Path{path("grid"), path("other")},
			[]Path{path("grid", "jobs")}},
		{"//completed",
			[]Path{NewPath("", "completed"), NewPath("", "a", "completed"), NewPath("urn:x", "q", "completed")},
			[]Path{NewPath("", "completed", "extra")}},
		{"t:grid/jobs",
			[]Path{path("grid", "jobs")},
			[]Path{path("grid"), path("grid", "jobs", "x")}},
		{"t:grid/.",
			[]Path{path("grid")},
			[]Path{path("grid", "jobs")}},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			e := mustExpr(t, DialectFull, tc.expr)
			for _, p := range tc.yes {
				if !e.Matches(p) {
					t.Errorf("%s should match %v", tc.expr, p)
				}
			}
			for _, p := range tc.no {
				if e.Matches(p) {
					t.Errorf("%s should NOT match %v", tc.expr, p)
				}
			}
		})
	}
}

func TestFullDialectErrors(t *testing.T) {
	bad := []string{"", "  ", "t:a/x:b", "x:a", "t:", "t:a/9bad", "t:./a", "/"}
	for _, expr := range bad {
		if _, err := ParseExpression(DialectFull, expr, tns); err == nil {
			t.Errorf("full dialect accepted %q", expr)
		}
	}
}

func TestUnknownDialect(t *testing.T) {
	_, err := ParseExpression("urn:bogus:dialect", "t:a", tns)
	if err == nil {
		t.Fatal("unknown dialect accepted")
	}
	var ude *UnknownDialectError
	if !asUnknownDialect(err, &ude) {
		t.Errorf("error type = %T", err)
	}
}

func asUnknownDialect(err error, target **UnknownDialectError) bool {
	if e, ok := err.(*UnknownDialectError); ok {
		*target = e
		return true
	}
	return false
}

func TestIsConcrete(t *testing.T) {
	if !mustExpr(t, DialectFull, "t:a/b").IsConcrete() {
		t.Error("t:a/b is concrete")
	}
	for _, expr := range []string{"t:a/*", "t:a//b", "t:a//.", "*"} {
		if mustExpr(t, DialectFull, expr).IsConcrete() {
			t.Errorf("%s misreported as concrete", expr)
		}
		if _, ok := mustExpr(t, DialectFull, expr).ConcretePath(); ok {
			t.Errorf("%s ConcretePath should fail", expr)
		}
	}
}

func TestMatchesZeroPath(t *testing.T) {
	if mustExpr(t, DialectFull, "*").Matches(Path{}) {
		t.Error("zero path should never match")
	}
}

func TestSpaceAddContainsTopics(t *testing.T) {
	s := NewSpace()
	s.Add(path("grid", "jobs", "completed"))
	s.Add(path("grid", "jobs", "failed"))
	s.Add(path("grid"))
	s.Add(NewPath("urn:other", "misc"))

	if !s.Contains(path("grid", "jobs", "completed")) || !s.Contains(path("grid")) {
		t.Error("added topics missing")
	}
	// Intermediate nodes exist structurally but are not topics unless added.
	if s.Contains(path("grid", "jobs")) {
		t.Error("intermediate node misreported as topic")
	}
	all := s.Topics()
	if len(all) != 4 {
		t.Fatalf("Topics() = %v", all)
	}
	// Deterministic order: namespaces sorted, then depth-first by name.
	if all[0].String() != "{urn:other}misc" {
		t.Errorf("order[0] = %v", all[0])
	}
	// Adding a zero path is a no-op.
	s.Add(Path{})
	if len(s.Topics()) != 4 {
		t.Error("zero path was added")
	}
}

func TestSpaceExpandAndSupports(t *testing.T) {
	s := NewSpace()
	s.Add(path("grid", "jobs", "completed"))
	s.Add(path("grid", "jobs", "failed"))
	s.Add(path("weather", "alerts"))

	e := mustExpr(t, DialectFull, "t:grid/jobs/*")
	got := s.Expand(e)
	if len(got) != 2 {
		t.Fatalf("Expand = %v", got)
	}
	if !s.Supports(e) {
		t.Error("Supports should be true")
	}
	if s.Supports(mustExpr(t, DialectFull, "t:nonexistent//.")) {
		t.Error("Supports should be false for unmatched expression")
	}
}

func TestTopicSetElement(t *testing.T) {
	s := NewSpace()
	s.Add(path("grid", "jobs", "completed"))
	s.Add(path("grid"))
	el := s.TopicSetElement()
	if el.Name != xmldom.N(NS, "TopicSet") {
		t.Fatalf("root = %v", el.Name)
	}
	out := xmldom.Marshal(el)
	if !strings.Contains(out, "grid") || !strings.Contains(out, "completed") {
		t.Errorf("TopicSet missing nodes: %s", out)
	}
	// grid is a topic; jobs (intermediate) is not flagged.
	grid := el.Child(xmldom.N("urn:topics:test", "grid"))
	if grid == nil || grid.AttrValue(xmldom.N(NS, "topic")) != "true" {
		t.Error("grid should be flagged as topic")
	}
	jobs := grid.Child(xmldom.N("urn:topics:test", "jobs"))
	if jobs == nil {
		t.Fatal("jobs node missing")
	}
	if jobs.AttrValue(xmldom.N(NS, "topic")) == "true" {
		t.Error("intermediate jobs node should not be flagged")
	}
}

func TestSpaceConcurrency(t *testing.T) {
	s := NewSpace()
	done := make(chan bool)
	for i := 0; i < 4; i++ {
		go func(i int) {
			for j := 0; j < 50; j++ {
				s.Add(path("root", string(rune('a'+i)), string(rune('a'+j%26))))
				s.Topics()
				s.Contains(path("root"))
			}
			done <- true
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if len(s.Topics()) == 0 {
		t.Error("no topics after concurrent adds")
	}
}

func TestExpressionString(t *testing.T) {
	e := mustExpr(t, DialectFull, "t:a//b")
	if !strings.Contains(e.String(), "Full") || !strings.Contains(e.Raw(), "t:a//b") {
		t.Errorf("String = %q Raw = %q", e.String(), e.Raw())
	}
}
