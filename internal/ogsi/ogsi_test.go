package ogsi

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/xmldom"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func fixture(t *testing.T) (*transport.Loopback, *Source, *Sink, *clock) {
	t.Helper()
	lb := transport.NewLoopback()
	clk := &clock{t: time.Date(2003, 6, 27, 0, 0, 0, 0, time.UTC)} // OGSI era
	src := NewSource("svc://grid-service", lb, clk.now)
	lb.Register("svc://grid-service", src)
	sink := &Sink{}
	lb.Register("svc://sink", sink)
	return lb, src, sink, clk
}

func status(s string) *xmldom.Element {
	return xmldom.Elem("urn:grid", "jobStatus", s)
}

func TestSubscribeAndNotifyOnChange(t *testing.T) {
	lb, src, sink, _ := fixture(t)
	handle, err := Subscribe(context.Background(), lb, "svc://grid-service", "jobStatus", "svc://sink", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if handle == "" || src.SubscriptionCount() != 1 {
		t.Fatal("subscription not created")
	}
	pushed := src.SetServiceData(context.Background(), "jobStatus", status("RUNNING"))
	if pushed != 1 || sink.Count() != 1 {
		t.Fatalf("pushed=%d received=%d", pushed, sink.Count())
	}
	got := sink.Received()[0]
	if got.Name != "jobStatus" || got.Value.Text() != "RUNNING" {
		t.Errorf("entry = %+v", got)
	}
	// Changing other service data does not notify.
	src.SetServiceData(context.Background(), "cpuLoad", status("0.5"))
	if sink.Count() != 1 {
		t.Error("unsubscribed SDE change delivered")
	}
}

func TestDestroyStopsNotifications(t *testing.T) {
	lb, src, sink, _ := fixture(t)
	handle, _ := Subscribe(context.Background(), lb, "svc://grid-service", "jobStatus", "svc://sink", time.Time{})
	if err := Destroy(context.Background(), lb, "svc://grid-service", handle); err != nil {
		t.Fatal(err)
	}
	src.SetServiceData(context.Background(), "jobStatus", status("DONE"))
	if sink.Count() != 0 {
		t.Error("destroyed subscription delivered")
	}
	if err := Destroy(context.Background(), lb, "svc://grid-service", handle); err == nil {
		t.Error("double destroy accepted")
	}
}

func TestSoftStateExpiry(t *testing.T) {
	lb, src, sink, clk := fixture(t)
	Subscribe(context.Background(), lb, "svc://grid-service", "jobStatus", "svc://sink",
		clk.now().Add(10*time.Minute))
	clk.advance(11 * time.Minute)
	if n := src.Scavenge(); n != 1 {
		t.Fatalf("scavenged %d", n)
	}
	src.SetServiceData(context.Background(), "jobStatus", status("LATE"))
	if sink.Count() != 0 {
		t.Error("expired subscription delivered")
	}
}

func TestRequestTermination(t *testing.T) {
	lb, src, _, clk := fixture(t)
	handle, _ := Subscribe(context.Background(), lb, "svc://grid-service", "jobStatus", "svc://sink",
		clk.now().Add(10*time.Minute))
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem(NS, "requestTerminationAfter",
		xmldom.Elem(NS, "subscriptionHandle", handle),
		xmldom.Elem(NS, "terminationTime", "2003-06-27T02:00:00Z"),
	))
	resp, err := lb.Call(context.Background(), "svc://grid-service", env)
	if err != nil {
		t.Fatal(err)
	}
	granted := resp.FirstBody().ChildText(xmldom.N(NS, "terminationTime"))
	if granted != "2003-06-27T02:00:00Z" {
		t.Errorf("granted = %q", granted)
	}
	clk.advance(90 * time.Minute)
	if src.Scavenge() != 0 {
		t.Error("renewed subscription scavenged early")
	}
}

func TestFindServiceData(t *testing.T) {
	lb, src, _, _ := fixture(t)
	src.SetServiceData(context.Background(), "jobStatus", status("QUEUED"))
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem(NS, "findServiceData", "jobStatus"))
	resp, err := lb.Call(context.Background(), "svc://grid-service", env)
	if err != nil {
		t.Fatal(err)
	}
	v := resp.FirstBody().ChildElements()[0]
	if v.Text() != "QUEUED" {
		t.Errorf("value = %q", v.Text())
	}
	// Unknown SDE faults.
	env2 := soap.New(soap.V11)
	env2.AddBody(xmldom.Elem(NS, "findServiceData", "missing"))
	if _, err := lb.Call(context.Background(), "svc://grid-service", env2); err == nil {
		t.Error("missing SDE accepted")
	}
}

func TestBadRequests(t *testing.T) {
	lb, _, _, _ := fixture(t)
	// Subscribe without sink.
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem(NS, "subscribe", xmldom.Elem(NS, "serviceDataName", "x")))
	if _, err := lb.Call(context.Background(), "svc://grid-service", env); err == nil {
		t.Error("sinkless subscribe accepted")
	}
	// Unknown operation.
	env2 := soap.New(soap.V11)
	env2.AddBody(xmldom.Elem(NS, "frobnicate"))
	if _, err := lb.Call(context.Background(), "svc://grid-service", env2); err == nil {
		t.Error("unknown op accepted")
	}
	// Bad expiration time.
	env3 := soap.New(soap.V11)
	env3.AddBody(xmldom.Elem(NS, "subscribe",
		xmldom.Elem(NS, "serviceDataName", "x"),
		xmldom.Elem(NS, "sink", "svc://sink"),
		xmldom.Elem(NS, "expirationTime", "not-a-time")))
	if _, err := lb.Call(context.Background(), "svc://grid-service", env3); err == nil {
		t.Error("bad expiration accepted")
	}
}

func TestMultipleSinksSameSDE(t *testing.T) {
	lb, src, sink, _ := fixture(t)
	sink2 := &Sink{}
	lb.Register("svc://sink2", sink2)
	Subscribe(context.Background(), lb, "svc://grid-service", "jobStatus", "svc://sink", time.Time{})
	Subscribe(context.Background(), lb, "svc://grid-service", "jobStatus", "svc://sink2", time.Time{})
	pushed := src.SetServiceData(context.Background(), "jobStatus", status("ACTIVE"))
	if pushed != 2 || sink.Count() != 1 || sink2.Count() != 1 {
		t.Errorf("pushed=%d counts=%d/%d", pushed, sink.Count(), sink2.Count())
	}
}
