// Package ogsi implements the Open Grid Services Infrastructure
// notification model: the paper's "intermediary step towards WS-based
// event notification" (§VI.C).
//
// OGSI notification is deliberately simple: a NotificationSink subscribes
// to a NotificationSource naming a *service data element* (a string); the
// source pushes the new XML value of that element to the sink whenever it
// changes. Payloads are XML over HTTP/SOAP (reusing this repository's
// transport), subscriptions carry soft-state termination times managed by
// requestTerminationAfter/Before and destroy — the operation vocabulary
// Table 3 lists.
package ogsi

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/soap"
	"repro/internal/sublease"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/xmldom"
	"repro/internal/xsdt"
)

// NS is the namespace used by this OGSI notification rendering.
const NS = "http://www.gridforum.org/namespaces/2003/03/OGSI"

func init() { xmldom.RegisterPrefix(NS, "ogsi") }

// Source is an OGSI Grid service with service data elements (SDEs) and the
// NotificationSource port type.
type Source struct {
	// Address is the service endpoint.
	Address string
	// Client pushes notifications to sinks.
	Client transport.Client
	// Clock is injectable for tests.
	Clock func() time.Time

	mu    sync.Mutex
	sdes  map[string]*xmldom.Element
	store *sublease.Store
	eng   *dispatch.Engine
}

type ogsiSub struct {
	serviceDataName string
	sinkAddr        string
}

// sdeEvent is the dispatch payload for one SDE change: the request
// context, the new value and the per-call success counter (incremented in
// Deliver, which runs synchronously on the SetServiceData goroutine).
type sdeEvent struct {
	ctx    context.Context
	name   string
	value  *xmldom.Element
	pushed *int
}

// sdePath is the topic a service data element indexes under: subscribers
// name exactly one SDE, so every subscription sits in an exact bucket and
// a change touches only that element's subscribers.
func sdePath(name string) topics.Path {
	return topics.Path{Namespace: NS, Segments: []string{name}}
}

// NewSource builds a source.
func NewSource(address string, client transport.Client, clock func() time.Time) *Source {
	if clock == nil {
		clock = time.Now
	}
	s := &Source{Address: address, Client: client, Clock: clock, sdes: map[string]*xmldom.Element{}}
	s.eng = dispatch.New(dispatch.Config{Clock: clock})
	s.store = sublease.NewStore(
		sublease.WithClock(clock),
		sublease.WithIDPrefix("ogsi"),
		sublease.WithEndObserver(func(sn sublease.Snapshot, _ sublease.EndReason) {
			s.eng.Unsubscribe(sn.ID)
		}),
	)
	return s
}

// SubscriptionCount reports live subscriptions.
func (s *Source) SubscriptionCount() int { return len(s.store.Active()) }

// subscribe registers the lease with the dispatch engine.
func (s *Source) subscribe(id, name, sink string, expires time.Time) {
	_ = s.eng.Subscribe(dispatch.Sub{
		ID:       id,
		Selector: dispatch.ExactTopic(sdePath(name)),
		Mode:     dispatch.Sync,
		Deadline: expires,
		Deliver: func(batch []dispatch.Message) error {
			ev := batch[0].Payload.(*sdeEvent)
			env := soap.New(soap.V11)
			env.AddBody(xmldom.Elem(NS, "deliverNotification",
				xmldom.Elem(NS, "serviceDataName", ev.name),
				xmldom.Elem(NS, "value", ev.value.Clone()),
			))
			if err := s.Client.Send(ev.ctx, sink, env); err != nil {
				return err
			}
			*ev.pushed++
			return nil
		},
		FailureLimit: -1,
	})
}

// SetServiceData updates a service data element and pushes its new value
// to every live subscriber of that name — the OGSI change-notification
// contract.
func (s *Source) SetServiceData(ctx context.Context, name string, value *xmldom.Element) int {
	s.mu.Lock()
	s.sdes[name] = value.Clone()
	s.mu.Unlock()
	pushed := 0
	s.eng.Dispatch(dispatch.Message{
		Topic:   sdePath(name),
		Payload: &sdeEvent{ctx: ctx, name: name, value: value, pushed: &pushed},
	})
	return pushed
}

// ServiceData reads the current value of an SDE.
func (s *Source) ServiceData(name string) (*xmldom.Element, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.sdes[name]
	if !ok {
		return nil, false
	}
	return v.Clone(), true
}

// Scavenge expires lapsed subscriptions (soft state).
func (s *Source) Scavenge() int { return s.store.Scavenge() }

// ServeSOAP handles subscribe / requestTerminationAfter /
// requestTerminationBefore / destroy / findServiceData requests.
func (s *Source) ServeSOAP(_ context.Context, env *soap.Envelope) (*soap.Envelope, error) {
	body := env.FirstBody()
	if body == nil {
		return nil, soap.Faultf(soap.FaultSender, "ogsi: empty body")
	}
	switch body.Name {
	case xmldom.N(NS, "subscribe"):
		name := body.ChildText(xmldom.N(NS, "serviceDataName"))
		sink := body.ChildText(xmldom.N(NS, "sink"))
		if name == "" || sink == "" {
			return nil, soap.Faultf(soap.FaultSender, "ogsi: subscribe needs serviceDataName and sink")
		}
		var expires time.Time
		if raw := body.ChildText(xmldom.N(NS, "expirationTime")); raw != "" {
			t, err := xsdt.ParseDateTime(raw)
			if err != nil {
				return nil, soap.Faultf(soap.FaultSender, "ogsi: bad expirationTime: %v", err)
			}
			expires = t
		}
		lease := s.store.Create(&ogsiSub{serviceDataName: name, sinkAddr: sink}, expires)
		s.subscribe(lease.ID, name, sink, expires)
		out := soap.New(env.Version)
		out.AddBody(xmldom.Elem(NS, "subscribeResponse",
			xmldom.Elem(NS, "subscriptionHandle", lease.ID)))
		return out, nil

	case xmldom.N(NS, "requestTerminationAfter"), xmldom.N(NS, "requestTerminationBefore"):
		id := body.ChildText(xmldom.N(NS, "subscriptionHandle"))
		raw := body.ChildText(xmldom.N(NS, "terminationTime"))
		t, err := xsdt.ParseDateTime(raw)
		if err != nil {
			return nil, soap.Faultf(soap.FaultSender, "ogsi: bad terminationTime: %v", err)
		}
		granted, err := s.store.Renew(id, t)
		if err != nil {
			return nil, soap.Faultf(soap.FaultSender, "ogsi: unknown subscription %q", id)
		}
		s.eng.SetDeadline(id, granted)
		out := soap.New(env.Version)
		out.AddBody(xmldom.Elem(NS, "terminationTimeSet",
			xmldom.Elem(NS, "terminationTime", xsdt.FormatDateTime(granted))))
		return out, nil

	case xmldom.N(NS, "destroy"):
		id := body.ChildText(xmldom.N(NS, "subscriptionHandle"))
		if err := s.store.Cancel(id, sublease.EndCancelled); err != nil {
			return nil, soap.Faultf(soap.FaultSender, "ogsi: unknown subscription %q", id)
		}
		// EndCancelled does not fire the end observer.
		s.eng.Unsubscribe(id)
		out := soap.New(env.Version)
		out.AddBody(xmldom.NewElement(xmldom.N(NS, "destroyResponse")))
		return out, nil

	case xmldom.N(NS, "findServiceData"):
		name := strings.TrimSpace(body.Text())
		v, ok := s.ServiceData(name)
		if !ok {
			return nil, soap.Faultf(soap.FaultSender, "ogsi: no service data %q", name)
		}
		out := soap.New(env.Version)
		out.AddBody(xmldom.Elem(NS, "findServiceDataResponse", v))
		return out, nil
	}
	return nil, soap.Faultf(soap.FaultSender, "ogsi: unknown operation %v", body.Name)
}

var _ transport.Handler = (*Source)(nil)

// Sink is a NotificationSink: it records deliverNotification messages.
type Sink struct {
	// OnChange is called with each (serviceDataName, value).
	OnChange func(name string, value *xmldom.Element)

	mu       sync.Mutex
	received []SinkEntry
}

// SinkEntry is one recorded delivery.
type SinkEntry struct {
	Name  string
	Value *xmldom.Element
}

// ServeSOAP implements transport.Handler.
func (k *Sink) ServeSOAP(_ context.Context, env *soap.Envelope) (*soap.Envelope, error) {
	body := env.FirstBody()
	if body == nil || body.Name != xmldom.N(NS, "deliverNotification") {
		return nil, nil
	}
	name := body.ChildText(xmldom.N(NS, "serviceDataName"))
	var value *xmldom.Element
	if v := body.Child(xmldom.N(NS, "value")); v != nil && len(v.ChildElements()) > 0 {
		value = v.ChildElements()[0]
	}
	k.mu.Lock()
	k.received = append(k.received, SinkEntry{Name: name, Value: value})
	cb := k.OnChange
	k.mu.Unlock()
	if cb != nil {
		cb(name, value)
	}
	return nil, nil
}

// Received snapshots deliveries.
func (k *Sink) Received() []SinkEntry {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]SinkEntry, len(k.received))
	copy(out, k.received)
	return out
}

// Count reports deliveries.
func (k *Sink) Count() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.received)
}

var _ transport.Handler = (*Sink)(nil)

// Subscribe is the client helper for the subscribe operation.
func Subscribe(ctx context.Context, client transport.Client, sourceAddr, serviceDataName, sinkAddr string, expires time.Time) (string, error) {
	env := soap.New(soap.V11)
	sub := xmldom.Elem(NS, "subscribe",
		xmldom.Elem(NS, "serviceDataName", serviceDataName),
		xmldom.Elem(NS, "sink", sinkAddr),
	)
	if !expires.IsZero() {
		sub.Append(xmldom.Elem(NS, "expirationTime", xsdt.FormatDateTime(expires)))
	}
	env.AddBody(sub)
	resp, err := client.Call(ctx, sourceAddr, env)
	if err != nil {
		return "", err
	}
	handle := resp.FirstBody().ChildText(xmldom.N(NS, "subscriptionHandle"))
	if handle == "" {
		return "", fmt.Errorf("ogsi: no subscription handle in response")
	}
	return handle, nil
}

// Destroy is the client helper for the destroy operation.
func Destroy(ctx context.Context, client transport.Client, sourceAddr, handle string) error {
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem(NS, "destroy", xmldom.Elem(NS, "subscriptionHandle", handle)))
	_, err := client.Call(ctx, sourceAddr, env)
	return err
}
