package federation

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Cursor resync is the pull half of federation's reliability story. Peer
// links push; the event log pulls. Every applied relay records a high
// water mark (origin broker, origin log position), and after an outage a
// broker asks any peer "give me everything from origin O newer than my
// mark" via the FetchNewer front-door operation — bounded catch-up over
// exactly the window it missed. Dedup makes re-ingest idempotent, so
// resyncing through a path that overlaps live push traffic is safe.

// HighWater snapshots the per-origin high water marks: for each origin
// broker, the highest origin-log position this peering has applied (or
// seen applied via a redundant path). Persist it alongside a subscription
// snapshot and hand it to RestoreHighWater on the next boot.
func (p *Peering) HighWater() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.highWater))
	for origin, pos := range p.highWater {
		out[origin] = pos
	}
	return out
}

// RestoreHighWater merges a snapshot into the live marks, keeping the
// maximum per origin (live traffic may already have advanced past an old
// snapshot).
func (p *Peering) RestoreHighWater(hw map[string]uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for origin, pos := range hw {
		if pos > p.highWater[origin] {
			p.highWater[origin] = pos
		}
	}
}

// Resync pulls missed notifications from a peer broker's event log: for
// each origin (every known high-water origin when none are named), it
// pages FetchNewer from this peering's mark in that origin's cursor space
// and re-ingests the results through the normal suppression layers. It
// returns how many notifications were newly applied. Origins equal to the
// local broker are skipped — our own publishes live in our own log.
func (p *Peering) Resync(ctx context.Context, remote string, origins ...string) (int, error) {
	if len(origins) == 0 {
		p.mu.Lock()
		for origin := range p.highWater {
			origins = append(origins, origin)
		}
		p.mu.Unlock()
		sort.Strings(origins)
	}
	applied := 0
	for _, origin := range origins {
		if origin == "" || origin == p.BrokerID() {
			continue
		}
		p.mu.Lock()
		cursor := p.highWater[origin]
		p.mu.Unlock()
		for {
			entries, next, _, err := core.FetchNewer(ctx, p.cfg.Client, remote, origin, cursor, 0)
			if err != nil {
				return applied, fmt.Errorf("federation: resync %s from %s: %w", origin, remote, err)
			}
			for _, e := range entries {
				if e.Relay == nil || e.Payload == nil {
					continue
				}
				if p.ingest(e.Relay, e.Topic, e.Payload) {
					applied++
				}
			}
			if len(entries) == 0 || next <= cursor {
				break
			}
			cursor = next
		}
	}
	return applied, nil
}
