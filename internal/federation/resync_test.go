package federation

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

// TestResyncRecoversMissedWindow is the federation outage drill: a peer
// link drops, the upstream keeps publishing, and the downstream pulls the
// missed window from the upstream's event log by origin cursor — exactly
// once, no re-delivery of what already arrived by push.
func TestResyncRecoversMissedWindow(t *testing.T) {
	lb := transport.NewLoopback()
	a := newNode(t, lb, "a", func(c *core.Config) {
		c.DataDir = t.TempDir()
		c.Durability = "batch"
	}, nil)
	b := newNode(t, lb, "b", func(c *core.Config) {
		c.DataDir = t.TempDir()
		c.Durability = "batch"
	}, nil)
	peer(t, b, a)

	// Live push phase: b receives a's publishes over the link and records
	// a's origin positions as its high water mark.
	for _, v := range []string{"e1", "e2", "e3"} {
		if err := a.broker.Publish(gridTopic, event(v)); err != nil {
			t.Fatalf("publish %s: %v", v, err)
		}
	}
	if hw := b.peering.HighWater()["a"]; hw != 3 {
		t.Fatalf("high water for a = %d, want 3", hw)
	}

	// Outage: the link drops and a publishes into the void.
	if err := b.peering.Unpeer(context.Background(), "svc://a"); err != nil {
		t.Fatalf("unpeer: %v", err)
	}
	for _, v := range []string{"e4", "e5"} {
		if err := a.broker.Publish(gridTopic, event(v)); err != nil {
			t.Fatalf("publish %s: %v", v, err)
		}
	}
	if got := b.sink.counts(); got["e4"] != 0 || got["e5"] != 0 {
		t.Fatalf("outage window leaked through: %v", got)
	}

	// Recovery: pull the missed window from a's log by origin cursor.
	applied, err := b.peering.Resync(context.Background(), "svc://a")
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	if applied != 2 {
		t.Fatalf("resync applied %d, want 2", applied)
	}
	got := b.sink.counts()
	for _, v := range []string{"e1", "e2", "e3", "e4", "e5"} {
		if got[v] != 1 {
			t.Fatalf("delivery counts after resync: %v (want each exactly once)", got)
		}
	}
	if hw := b.peering.HighWater()["a"]; hw != 5 {
		t.Fatalf("high water after resync = %d, want 5", hw)
	}

	// Idempotence: a second resync finds nothing newer.
	applied, err = b.peering.Resync(context.Background(), "svc://a")
	if err != nil || applied != 0 {
		t.Fatalf("second resync = %d, %v (want 0, nil)", applied, err)
	}
}

// TestRestoreHighWater proves a snapshot round-trip: marks restored on a
// fresh peering make Resync skip everything already applied before the
// restart — and an explicit origin argument scopes the pull.
func TestRestoreHighWater(t *testing.T) {
	lb := transport.NewLoopback()
	a := newNode(t, lb, "a", func(c *core.Config) {
		c.DataDir = t.TempDir()
		c.Durability = "batch"
	}, nil)
	b := newNode(t, lb, "b", nil, nil)
	peer(t, b, a)

	for _, v := range []string{"x1", "x2"} {
		if err := a.broker.Publish(gridTopic, event(v)); err != nil {
			t.Fatalf("publish %s: %v", v, err)
		}
	}
	snap := b.peering.HighWater()
	if snap["a"] != 2 {
		t.Fatalf("snapshot = %v, want a:2", snap)
	}

	// "Restart": a fresh downstream node restores the snapshot instead of
	// starting from zero, so only post-snapshot traffic is pulled.
	c := newNode(t, lb, "c", nil, nil)
	c.peering.RestoreHighWater(snap)
	if err := a.broker.Publish(gridTopic, event("x3")); err != nil {
		t.Fatalf("publish x3: %v", err)
	}
	applied, err := c.peering.Resync(context.Background(), "svc://a", "a")
	if err != nil || applied != 1 {
		t.Fatalf("resync = %d, %v (want 1 — only the post-snapshot publish)", applied, err)
	}
	got := c.sink.counts()
	if got["x1"] != 0 || got["x2"] != 0 || got["x3"] != 1 {
		t.Fatalf("restored-cursor deliveries: %v", got)
	}
}
