// Package federation peers WS-Messenger brokers into a federated event
// fabric — the horizontal-scaling step the paper's broker architecture
// (§VII) points at and WS-BrokeredNotification makes possible: a
// NotificationBroker is itself a NotificationConsumer, so a broker can
// subscribe to another broker and republish what it receives.
//
// A peer link is an ordinary WS-Notification 1.3 subscription issued at
// the remote broker's front door (wsbrk.PeerSubscribe) whose consumer is
// the local Peering's ingest endpoint. That choice buys federation the
// whole existing delivery stack for free: relayed notifications ride the
// remote broker's sharded dispatch, retry/backoff, circuit breaker, DLQ
// and render-template cache exactly like any other subscriber's — the
// wsmf:Relay header is constant across one publish's fan-out, so it bakes
// into the shared template without splitting render keys.
//
// Loop suppression is layered, because any broker graph (chain, star,
// mesh, accidental cycle) must deliver each event exactly once per local
// subscriber:
//
//  1. origin suppression — a relay whose Origin is this broker is the
//     broker's own publish echoed back around a cycle; dropped.
//  2. dedup — a bounded LRU keyed (origin broker, origin message id)
//     drops re-arrivals over redundant mesh paths.
//  3. hop cap — relays that have crossed MaxHops links are dropped even
//     when dedup state has been evicted; the backstop that makes cyclic
//     topologies safe under any memory bound.
package federation

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/mediation"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsbrk"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// DefaultMaxHops bounds how many broker-to-broker links a notification may
// traverse. Eight covers any sane federation diameter; the cap exists for
// cycles, not for legitimate paths.
const DefaultMaxHops = 8

// DefaultDedupCap bounds the (origin, message id) LRU.
const DefaultDedupCap = 4096

// Config wires a Peering to its local broker.
type Config struct {
	// Broker is the local broker; it must carry a BrokerID (the federation
	// identity relays are stamped with).
	Broker *core.Broker
	// Client issues peer subscriptions at remote brokers.
	Client transport.Client
	// IngestAddress is the externally reachable address of this Peering's
	// ingest endpoint — the consumer address peer subscriptions carry.
	IngestAddress string
	// MaxHops caps relay traversal (default DefaultMaxHops).
	MaxHops int
	// DedupCap bounds the dedup LRU (default DefaultDedupCap).
	DedupCap int
	// DisableDedup turns layers 1–2 of loop suppression off, leaving only
	// the hop cap — the ablation knob the cycle-topology test uses to
	// prove the backstop bounds a loop on its own. Never set in production.
	DisableDedup bool
	// Clock is injectable for tests.
	Clock func() time.Time
	// Obs registers wsm_peer_* metrics (nil disables).
	Obs *obs.Recorder
}

// Link is one established peer relationship: the remote broker's front
// door plus the subscriptions held there.
type Link struct {
	// Remote is the peer broker's front-door address.
	Remote string
	// Topics are the subscribed topic sets (empty = everything).
	Topics []topics.Path
	// handles are the remote subscriptions, one per topic (one total when
	// Topics is empty).
	handles []*wsnt.Handle
}

// Expires reports the earliest termination time among the link's
// subscriptions (zero when none expires).
func (l *Link) Expires() time.Time {
	var min time.Time
	for _, h := range l.handles {
		if h.TerminationTime.IsZero() {
			continue
		}
		if min.IsZero() || h.TerminationTime.Before(min) {
			min = h.TerminationTime
		}
	}
	return min
}

// Peering federates one local broker with its peers.
type Peering struct {
	cfg Config

	mu        sync.Mutex
	links     map[string]*Link
	seen      *lru.Set
	highWater map[string]uint64 // origin broker → highest origin log pos applied

	// ingest outcome counters, one series per result (nil without Obs).
	relayed, adopted, selfDrops, dupDrops, hopDrops, malformed *obs.Counter
}

// New builds a Peering over a federated broker.
func New(cfg Config) (*Peering, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("federation: Config.Broker is required")
	}
	if cfg.Broker.BrokerID() == "" {
		return nil, fmt.Errorf("federation: broker has no BrokerID; set core.Config.BrokerID before peering")
	}
	if cfg.IngestAddress == "" {
		return nil, fmt.Errorf("federation: Config.IngestAddress is required")
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	if cfg.DedupCap <= 0 {
		cfg.DedupCap = DefaultDedupCap
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	p := &Peering{cfg: cfg, links: map[string]*Link{}, seen: lru.New(cfg.DedupCap), highWater: map[string]uint64{}}
	if rec := cfg.Obs; rec != nil {
		reg := rec.Registry()
		mk := func(result string) *obs.Counter {
			return reg.Counter("wsm_peer_ingest_total",
				"Notifications arriving on peer links, by ingest outcome.",
				obs.L("component", rec.Component()), obs.L("result", result))
		}
		p.relayed = mk("relayed")
		p.adopted = mk("adopted")
		p.selfDrops = mk("self_echo")
		p.dupDrops = mk("duplicate")
		p.hopDrops = mk("hop_capped")
		p.malformed = mk("malformed")
		reg.GaugeFunc("wsm_peer_links",
			"Established peer links.",
			func() float64 { return float64(p.LinkCount()) },
			obs.L("component", rec.Component()))
		reg.GaugeFunc("wsm_peer_dedup_entries",
			"Entries held in the federation dedup LRU.",
			func() float64 { return float64(p.seen.Len()) },
			obs.L("component", rec.Component()))
	}
	return p, nil
}

// BrokerID returns the local federation identity.
func (p *Peering) BrokerID() string { return p.cfg.Broker.BrokerID() }

// LinkCount reports established peer links.
func (p *Peering) LinkCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Links snapshots the established peer links, sorted by remote address.
func (p *Peering) Links() []*Link {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Link, 0, len(p.links))
	for _, l := range p.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Remote < out[j].Remote })
	return out
}

// Peer subscribes this broker at a remote broker's front door for the
// given topic sets (all topics when none given). Re-peering an address
// that already has a link is an error; Unpeer first.
func (p *Peering) Peer(ctx context.Context, remote string, topicSet ...topics.Path) (*Link, error) {
	p.mu.Lock()
	if _, ok := p.links[remote]; ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("federation: already peered with %s", remote)
	}
	p.mu.Unlock()

	link := &Link{Remote: remote, Topics: topicSet}
	subscribe := func(tp *topics.Path) error {
		h, err := wsbrk.PeerSubscribe(ctx, p.cfg.Client, remote, p.cfg.IngestAddress, tp)
		if err != nil {
			return err
		}
		link.handles = append(link.handles, h)
		return nil
	}
	var err error
	if len(topicSet) == 0 {
		err = subscribe(nil)
	} else {
		for i := range topicSet {
			if err = subscribe(&topicSet[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		// Partial failure: release whatever was already subscribed so the
		// remote does not keep delivering to a link we never established.
		for _, h := range link.handles {
			_ = wsbrk.PeerUnsubscribe(ctx, p.cfg.Client, h)
		}
		return nil, fmt.Errorf("federation: peer %s: %w", remote, err)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.links[remote]; ok {
		// Lost a concurrent Peer race; back out ours.
		for _, h := range link.handles {
			_ = wsbrk.PeerUnsubscribe(context.Background(), p.cfg.Client, h)
		}
		return nil, fmt.Errorf("federation: already peered with %s", remote)
	}
	p.links[remote] = link
	return link, nil
}

// Unpeer tears down the link to a remote broker, unsubscribing at the
// remote. Unknown remotes are a no-op.
func (p *Peering) Unpeer(ctx context.Context, remote string) error {
	p.mu.Lock()
	link, ok := p.links[remote]
	delete(p.links, remote)
	p.mu.Unlock()
	if !ok {
		return nil
	}
	var first error
	for _, h := range link.handles {
		if err := wsbrk.PeerUnsubscribe(ctx, p.cfg.Client, h); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// IngestHandler serves the peer-ingest endpoint: WSN 1.3 Notify deliveries
// from remote brokers' fan-outs. It is the only endpoint that honors
// inbound wsmf:Relay headers — the broker's front door deliberately
// ignores them so publishers cannot forge dedup state.
func (p *Peering) IngestHandler() transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.FirstBody()
		if body == nil || body.Name.Local != "Notify" {
			return nil, soap.Faultf(soap.FaultSender, "federation: peer ingest accepts only Notify")
		}
		relay, present, err := mediation.ParseRelay(env)
		if err != nil {
			// A damaged relay must not be adopted as a fresh publish: its
			// duplicates would each be re-stamped with distinct identities
			// and multiply. Count and drop.
			inc(p.malformed)
			return nil, nil
		}
		msgs, _, err := wsnt.ParseNotify(body)
		if err != nil {
			return nil, soap.Faultf(soap.FaultSender, "federation: %v", err)
		}
		for _, m := range msgs {
			if m.Payload == nil {
				continue
			}
			if !present {
				// A peer without federation identity (or a plain producer
				// pointed at the ingest): adopt the message as a local
				// publish, stamping this broker's own provenance.
				inc(p.adopted)
				_ = p.cfg.Broker.Publish(m.Topic, m.Payload)
				continue
			}
			p.ingest(relay, m.Topic, m.Payload)
		}
		return nil, nil
	})
}

// ingest applies the three suppression layers to one relayed notification
// and republishes the survivors locally with the hop count advanced. It
// reports whether the notification was applied (false = suppressed), and
// records the origin's high water mark for cursor resync: on apply, and on
// duplicate drop (a dup means another path already delivered that
// position). Hop-capped relays record nothing — they were never applied,
// so a resync must still be able to recover them.
func (p *Peering) ingest(r *mediation.Relay, topic topics.Path, payload *xmldom.Element) bool {
	if !p.cfg.DisableDedup {
		if r.Origin == p.BrokerID() {
			inc(p.selfDrops)
			return false
		}
		if !p.seen.Add(r.Origin + "\x00" + r.ID) {
			inc(p.dupDrops)
			p.recordHighWater(r)
			return false
		}
	}
	hops := r.Hops + 1
	if hops > p.cfg.MaxHops {
		inc(p.hopDrops)
		return false
	}
	inc(p.relayed)
	// Pos rides along so the local broker's log records the origin
	// position (OriginPos) — which is what makes origin-space FetchNewer
	// work transitively across multiple hops.
	_ = p.cfg.Broker.PublishRelayed(topic, payload,
		&mediation.Relay{Origin: r.Origin, ID: r.ID, Hops: hops, Pos: r.Pos})
	p.recordHighWater(r)
	return true
}

func (p *Peering) recordHighWater(r *mediation.Relay) {
	if r.Pos == 0 || r.Origin == "" {
		return
	}
	p.mu.Lock()
	if r.Pos > p.highWater[r.Origin] {
		p.highWater[r.Origin] = r.Pos
	}
	p.mu.Unlock()
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// HealthChecks returns a check function for obs.HealthHandler: the peering
// is degraded when any link's remote subscription has lapsed (the remote
// stopped delivering and nothing will re-establish it).
func (p *Peering) HealthChecks() func() []obs.HealthCheck {
	return func() []obs.HealthCheck {
		now := p.cfg.Clock()
		lapsed := 0
		links := p.Links()
		for _, l := range links {
			if exp := l.Expires(); !exp.IsZero() && exp.Before(now) {
				lapsed++
			}
		}
		return []obs.HealthCheck{{
			Name:   "peers",
			OK:     lapsed == 0,
			Detail: fmt.Sprintf("%d links, %d lapsed", len(links), lapsed),
		}}
	}
}
