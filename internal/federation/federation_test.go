package federation

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"repro/internal/lru"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mediation"
	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

var gridTopic = topics.Path{Namespace: "urn:grid", Segments: []string{"grid"}}

// event builds a distinguishable payload.
func event(v string) *xmldom.Element {
	ev := xmldom.NewElement(xmldom.N("urn:grid", "ev"))
	ev.Append(xmldom.Elem("urn:grid", "val", v))
	return ev
}

// sink is a WSN 1.3 notification consumer that records every delivered
// value together with its relay provenance.
type sink struct {
	mu  sync.Mutex
	got []delivery
}

type delivery struct {
	val   string
	relay *mediation.Relay // nil when the envelope carried no header
}

func (s *sink) ServeSOAP(_ context.Context, env *soap.Envelope) (*soap.Envelope, error) {
	body := env.FirstBody()
	if body == nil {
		return nil, fmt.Errorf("sink: empty body")
	}
	var relay *mediation.Relay
	if r, ok, err := mediation.ParseRelay(env); err == nil && ok {
		relay = r
	}
	msgs, _, err := wsnt.ParseNotify(body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range msgs {
		if m.Payload == nil {
			continue
		}
		s.got = append(s.got, delivery{
			val:   m.Payload.ChildText(xmldom.N("urn:grid", "val")),
			relay: relay,
		})
	}
	return nil, nil
}

// counts tallies deliveries per value.
func (s *sink) counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, d := range s.got {
		out[d.val]++
	}
	return out
}

func (s *sink) deliveries() []delivery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]delivery(nil), s.got...)
}

// node is one federated broker on the loopback fabric: broker, peering,
// one local subscriber sink.
type node struct {
	id      string
	broker  *core.Broker
	peering *Peering
	sink    *sink
}

// newNode builds a broker named id with its peering and one local
// subscriber on gridTopic. mod tweaks the broker config; pmod the peering
// config.
func newNode(t *testing.T, lb *transport.Loopback, id string, mod func(*core.Config), pmod func(*Config)) *node {
	t.Helper()
	cfg := core.Config{
		Address:        "svc://" + id,
		ManagerAddress: "svc://" + id + "-manage",
		Client:         lb,
		SyncDelivery:   true,
		BrokerID:       id,
	}
	if mod != nil {
		mod(&cfg)
	}
	b, err := core.New(cfg)
	if err != nil {
		t.Fatalf("core.New(%s): %v", id, err)
	}
	t.Cleanup(b.Shutdown)
	lb.Register("svc://"+id, b.FrontHandler())
	lb.Register("svc://"+id+"-manage", b.ManagerHandler())

	pcfg := Config{Broker: b, Client: lb, IngestAddress: "svc://" + id + "-peer"}
	if pmod != nil {
		pmod(&pcfg)
	}
	p, err := New(pcfg)
	if err != nil {
		t.Fatalf("federation.New(%s): %v", id, err)
	}
	lb.Register("svc://"+id+"-peer", p.IngestHandler())

	n := &node{id: id, broker: b, peering: p, sink: &sink{}}
	lb.Register("svc://"+id+"-sink", n.sink)
	subscribeSink(t, lb, "svc://"+id, "svc://"+id+"-sink")
	return n
}

// subscribeSink creates a WSN 1.3 subscription for gridTopic at a broker's
// front door.
func subscribeSink(t *testing.T, client transport.Client, front, consumer string) *wsnt.Handle {
	t.Helper()
	sub := &wsnt.Subscriber{Client: client, Version: wsnt.V1_3}
	h, err := sub.Subscribe(context.Background(), front, &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, consumer),
		TopicExpression:   "tns:grid",
		TopicDialect:      topics.DialectConcrete,
		TopicNS:           map[string]string{"tns": "urn:grid"},
	})
	if err != nil {
		t.Fatalf("subscribe %s -> %s: %v", front, consumer, err)
	}
	return h
}

// peer establishes a directed link: local subscribes at remote, so events
// published at remote flow to local.
func peer(t *testing.T, local, remote *node) {
	t.Helper()
	if _, err := local.peering.Peer(context.Background(), "svc://"+remote.id, gridTopic); err != nil {
		t.Fatalf("peer %s -> %s: %v", local.id, remote.id, err)
	}
}

// assertExactlyOnce checks that every sink saw every value exactly once.
func assertExactlyOnce(t *testing.T, nodes []*node, vals []string) {
	t.Helper()
	for _, n := range nodes {
		got := n.sink.counts()
		for _, v := range vals {
			if got[v] != 1 {
				t.Errorf("broker %s: value %q delivered %d times, want exactly 1", n.id, v, got[v])
			}
		}
		if len(got) != len(vals) {
			t.Errorf("broker %s: saw %d distinct values, want %d (%v)", n.id, len(got), len(vals), got)
		}
	}
}

// TestChainExactlyOnce peers three brokers in a chain (A ⇄ B ⇄ C) and
// publishes at every position: each broker's local subscriber must see
// each event exactly once, and relay provenance must survive both hops.
func TestChainExactlyOnce(t *testing.T) {
	lb := transport.NewLoopback()
	a := newNode(t, lb, "a", nil, nil)
	b := newNode(t, lb, "b", nil, nil)
	c := newNode(t, lb, "c", nil, nil)
	// Chain: each adjacent pair peers both ways.
	peer(t, a, b)
	peer(t, b, a)
	peer(t, b, c)
	peer(t, c, b)

	var vals []string
	for i, n := range []*node{a, b, c} {
		for j := 0; j < 5; j++ {
			v := fmt.Sprintf("%s-%d", n.id, j)
			vals = append(vals, v)
			if err := n.broker.Publish(gridTopic, event(v)); err != nil {
				t.Fatalf("publish %d at %s: %v", i, n.id, err)
			}
		}
	}
	assertExactlyOnce(t, []*node{a, b, c}, vals)

	// Relay provenance: an event published at a arrives at c's sink having
	// crossed two links, still naming a as its origin.
	for _, d := range c.sink.deliveries() {
		if !strings.HasPrefix(d.val, "a-") {
			continue
		}
		if d.relay == nil {
			t.Fatalf("c sink: delivery %q lost its relay header", d.val)
		}
		if d.relay.Origin != "a" || d.relay.Hops != 2 {
			t.Errorf("c sink: delivery %q relay = {%s %d}, want origin a, hops 2",
				d.val, d.relay.Origin, d.relay.Hops)
		}
	}
}

// TestMeshExactlyOnce peers three brokers in a full mesh — the topology
// with redundant paths, where dedup and origin suppression must both fire
// — and asserts exactly-once delivery everywhere.
func TestMeshExactlyOnce(t *testing.T) {
	lb := transport.NewLoopback()
	nodes := []*node{
		newNode(t, lb, "a", nil, nil),
		newNode(t, lb, "b", nil, nil),
		newNode(t, lb, "c", nil, nil),
	}
	for _, x := range nodes {
		for _, y := range nodes {
			if x != y {
				peer(t, x, y)
			}
		}
	}

	var vals []string
	for _, n := range nodes {
		for j := 0; j < 10; j++ {
			v := fmt.Sprintf("%s-%d", n.id, j)
			vals = append(vals, v)
			if err := n.broker.Publish(gridTopic, event(v)); err != nil {
				t.Fatalf("publish at %s: %v", n.id, err)
			}
		}
	}
	assertExactlyOnce(t, nodes, vals)
}

// TestStarExactlyOnce routes every leaf through a hub broker.
func TestStarExactlyOnce(t *testing.T) {
	lb := transport.NewLoopback()
	hub := newNode(t, lb, "hub", nil, nil)
	leaves := []*node{
		newNode(t, lb, "l1", nil, nil),
		newNode(t, lb, "l2", nil, nil),
		newNode(t, lb, "l3", nil, nil),
	}
	for _, l := range leaves {
		peer(t, l, hub)
		peer(t, hub, l)
	}

	var vals []string
	for _, n := range append([]*node{hub}, leaves...) {
		v := n.id + "-ev"
		vals = append(vals, v)
		if err := n.broker.Publish(gridTopic, event(v)); err != nil {
			t.Fatalf("publish at %s: %v", n.id, err)
		}
	}
	assertExactlyOnce(t, append([]*node{hub}, leaves...), vals)
}

// TestHopCapBoundsCycle disables dedup on a directed 3-cycle so the only
// surviving suppression layer is the hop cap, and proves it alone bounds
// the loop: with MaxHops=5 one publish circulates exactly until the cap,
// so every sink sees the event exactly twice and traffic stops.
func TestHopCapBoundsCycle(t *testing.T) {
	lb := transport.NewLoopback()
	disable := func(c *Config) { c.DisableDedup = true; c.MaxHops = 5 }
	a := newNode(t, lb, "a", nil, disable)
	b := newNode(t, lb, "b", nil, disable)
	c := newNode(t, lb, "c", nil, disable)
	// Directed cycle: a's publishes flow to b, b's to c, c's to a.
	peer(t, b, a)
	peer(t, c, b)
	peer(t, a, c)

	if err := a.broker.Publish(gridTopic, event("x")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	// hops 0 (origin fan-out at a), then 1..5 accepted around the cycle,
	// 6 dropped: two deliveries per sink, then silence.
	for _, n := range []*node{a, b, c} {
		if got := n.sink.counts()["x"]; got != 2 {
			t.Errorf("broker %s: %d deliveries, want exactly 2 (hop cap must bound the loop)", n.id, got)
		}
	}
	// The loop is dead: a second event must behave identically, not
	// compound with residual traffic.
	if err := a.broker.Publish(gridTopic, event("y")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if got := c.sink.counts()["y"]; got != 2 {
		t.Errorf("second event delivered %d times at c, want 2", got)
	}
}

// TestIngestAdoptsBareNotify sends a Notify with no relay header at the
// ingest: the message is adopted as a local publish with this broker's
// own provenance stamped.
func TestIngestAdoptsBareNotify(t *testing.T) {
	lb := transport.NewLoopback()
	n := newNode(t, lb, "solo", nil, nil)

	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: "svc://solo-peer", Action: wsnt.V1_3.ActionNotify()}
	h.Apply(env)
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{{Topic: gridTopic, Payload: event("bare")}}))
	if err := lb.Send(context.Background(), "svc://solo-peer", env); err != nil {
		t.Fatalf("send: %v", err)
	}
	ds := n.sink.deliveries()
	if len(ds) != 1 || ds[0].val != "bare" {
		t.Fatalf("deliveries = %+v, want one %q", ds, "bare")
	}
	if ds[0].relay == nil || ds[0].relay.Origin != "solo" || ds[0].relay.Hops != 0 {
		t.Errorf("adopted notify relay = %+v, want fresh local provenance {solo, hops 0}", ds[0].relay)
	}
}

// TestIngestDropsMalformedRelay: a damaged relay header must not be
// adopted as a fresh publish (its duplicates would multiply under new
// identities) — the message is counted and dropped.
func TestIngestDropsMalformedRelay(t *testing.T) {
	lb := transport.NewLoopback()
	n := newNode(t, lb, "solo", nil, nil)

	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: "svc://solo-peer", Action: wsnt.V1_3.ActionNotify()}
	h.Apply(env)
	bad := xmldom.NewElement(mediation.RelayHeaderName)
	bad.Append(xmldom.Elem(mediation.RelayNS, "Origin", "evil")) // no Id
	env.AddHeader(bad)
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{{Topic: gridTopic, Payload: event("bad")}}))
	if err := lb.Send(context.Background(), "svc://solo-peer", env); err != nil {
		t.Fatalf("send: %v", err)
	}
	if ds := n.sink.deliveries(); len(ds) != 0 {
		t.Fatalf("malformed relay was delivered: %+v", ds)
	}
}

// TestFrontDoorIgnoresForgedRelay: publishing through the front door with
// a forged relay header must not poison dedup — the broker stamps its own
// fresh provenance instead of honoring the forgery.
func TestFrontDoorIgnoresForgedRelay(t *testing.T) {
	lb := transport.NewLoopback()
	n := newNode(t, lb, "solo", nil, nil)

	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: "svc://solo", Action: wsnt.V1_3.ActionNotify()}
	h.Apply(env)
	forged := &mediation.Relay{Origin: "forger", ID: "urn:uuid:x", Hops: 99}
	env.AddHeader(forged.Element())
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{{Topic: gridTopic, Payload: event("forged")}}))
	if err := lb.Send(context.Background(), "svc://solo", env); err != nil {
		t.Fatalf("send: %v", err)
	}
	ds := n.sink.deliveries()
	if len(ds) != 1 {
		t.Fatalf("deliveries = %+v, want 1", ds)
	}
	if ds[0].relay == nil || ds[0].relay.Origin != "solo" || ds[0].relay.Hops != 0 {
		t.Errorf("front-door publish carried relay %+v, want fresh {solo, 0}", ds[0].relay)
	}
}

// TestUnpeerStopsFlow tears a link down and checks the remote's publishes
// stop arriving.
func TestUnpeerStopsFlow(t *testing.T) {
	lb := transport.NewLoopback()
	a := newNode(t, lb, "a", nil, nil)
	b := newNode(t, lb, "b", nil, nil)
	peer(t, b, a) // b subscribes at a

	if err := a.broker.Publish(gridTopic, event("before")); err != nil {
		t.Fatal(err)
	}
	if got := b.sink.counts()["before"]; got != 1 {
		t.Fatalf("before unpeer: %d deliveries at b, want 1", got)
	}
	if err := b.peering.Unpeer(context.Background(), "svc://a"); err != nil {
		t.Fatalf("unpeer: %v", err)
	}
	if n := b.peering.LinkCount(); n != 0 {
		t.Fatalf("LinkCount after unpeer = %d, want 0", n)
	}
	if err := a.broker.Publish(gridTopic, event("after")); err != nil {
		t.Fatal(err)
	}
	if got := b.sink.counts()["after"]; got != 0 {
		t.Errorf("after unpeer: %d deliveries at b, want 0", got)
	}
}

// TestPeerOverHTTP runs the whole peer path — subscription, fan-out,
// ingest, republish — over real HTTP servers, not the loopback.
func TestPeerOverHTTP(t *testing.T) {
	client := &transport.HTTPClient{}
	newHTTPBroker := func(id string) (*core.Broker, *Peering, *sink, *httptest.Server) {
		mux := http.NewServeMux()
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		base := srv.URL
		b, err := core.New(core.Config{
			Address:        base + "/",
			ManagerAddress: base + "/manage",
			Client:         client,
			SyncDelivery:   true,
			BrokerID:       id,
		})
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		t.Cleanup(b.Shutdown)
		p, err := New(Config{Broker: b, Client: client, IngestAddress: base + "/peer"})
		if err != nil {
			t.Fatalf("federation.New: %v", err)
		}
		s := &sink{}
		mux.Handle("/manage", transport.NewHTTPHandler(b.ManagerHandler()))
		mux.Handle("/peer", transport.NewHTTPHandler(p.IngestHandler()))
		mux.Handle("/sink", transport.NewHTTPHandler(s))
		mux.Handle("/", transport.NewHTTPHandler(b.FrontHandler()))
		return b, p, s, srv
	}

	brokerA, _, sinkA, srvA := newHTTPBroker("a")
	_, peeringB, sinkB, srvB := newHTTPBroker("b")

	subscribeSink(t, client, srvA.URL+"/", srvA.URL+"/sink")
	subscribeSink(t, client, srvB.URL+"/", srvB.URL+"/sink")
	if _, err := peeringB.Peer(context.Background(), srvA.URL+"/", gridTopic); err != nil {
		t.Fatalf("peer over http: %v", err)
	}

	if err := brokerA.Publish(gridTopic, event("http-ev")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if got := sinkA.counts()["http-ev"]; got != 1 {
		t.Errorf("sink a: %d deliveries, want 1", got)
	}
	if got := sinkB.counts()["http-ev"]; got != 1 {
		t.Errorf("sink b (via peer link): %d deliveries, want 1", got)
	}
	ds := sinkB.deliveries()
	if len(ds) == 1 && (ds[0].relay == nil || ds[0].relay.Origin != "a" || ds[0].relay.Hops != 1) {
		t.Errorf("relay over http = %+v, want {a, hops 1}", ds[0].relay)
	}
}

// TestPeerMetricsAndHealth wires a peering to a recorder and checks the
// wsm_peer_* series and the /healthz composition.
func TestPeerMetricsAndHealth(t *testing.T) {
	lb := transport.NewLoopback()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, "fedtest")
	a := newNode(t, lb, "a", nil, nil)
	b := newNode(t, lb, "b", func(c *core.Config) { c.Obs = rec }, func(c *Config) { c.Obs = rec })
	peer(t, b, a)

	if err := a.broker.Publish(gridTopic, event("m1")); err != nil {
		t.Fatal(err)
	}
	// Same event again via a fresh publish gets fresh provenance, so to
	// exercise the duplicate counter, replay the identical relay directly.
	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: "svc://b-peer", Action: wsnt.V1_3.ActionNotify()}
	h.Apply(env)
	rel := &mediation.Relay{Origin: "a", ID: "urn:uuid:fixed", Hops: 0}
	env.AddHeader(rel.Element())
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{{Topic: gridTopic, Payload: event("dup")}}))
	for i := 0; i < 2; i++ {
		if err := lb.Send(context.Background(), "svc://b-peer", env); err != nil {
			t.Fatal(err)
		}
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`wsm_peer_links{component="fedtest"} 1`,
		`wsm_peer_ingest_total{component="fedtest",result="relayed"} 2`,
		`wsm_peer_ingest_total{component="fedtest",result="duplicate"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, text)
		}
	}

	checks := obs.CombineChecks(b.broker.HealthChecks(0), b.peering.HealthChecks())()
	names := map[string]bool{}
	allOK := true
	for _, c := range checks {
		names[c.Name] = true
		allOK = allOK && c.OK
	}
	if !names["breakers"] || !names["dlq"] || !names["peers"] {
		t.Errorf("combined checks missing a layer: %+v", checks)
	}
	if !allOK {
		t.Errorf("healthy federation reported degraded: %+v", checks)
	}
}

// TestHealthLapsedLink makes a peer subscription expire and checks the
// peers check flips.
func TestHealthLapsedLink(t *testing.T) {
	lb := transport.NewLoopback()
	now := time.Now()
	clock := func() time.Time { return now }
	a := newNode(t, lb, "a", func(c *core.Config) {
		c.Clock = clock
		c.DefaultExpiry = time.Minute // peer leases at a expire
	}, nil)
	b := newNode(t, lb, "b", nil, func(c *Config) { c.Clock = func() time.Time { return now.Add(2 * time.Minute) } })
	peer(t, b, a)

	checks := b.peering.HealthChecks()()
	if len(checks) != 1 || checks[0].OK {
		t.Fatalf("lapsed peer link not reported: %+v", checks)
	}
}

func TestLRUSet(t *testing.T) {
	s := lru.New(3)
	for _, k := range []string{"a", "b", "c"} {
		if !s.Add(k) {
			t.Fatalf("first Add(%q) reported duplicate", k)
		}
	}
	if s.Add("a") {
		t.Fatal("Add(a) again reported new")
	}
	// "a" is now most recent; inserting d evicts b (least recent).
	if !s.Add("d") {
		t.Fatal("Add(d) reported duplicate")
	}
	if !s.Add("b") {
		t.Fatal("b should have been evicted and re-addable")
	}
	if s.Add("a") {
		t.Fatal("a should have survived eviction (recency refreshed)")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
