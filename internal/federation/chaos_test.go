package federation

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/dispatch/faulty"
	"repro/internal/soap"
	"repro/internal/transport"
)

// faultyHandler fails inbound SOAP deliveries on a deterministic schedule
// (an Injector evaluated before the wrapped handler runs), so both
// subscriber sinks and peer-ingest endpoints can misbehave the way real
// consumers do. A failed attempt never reaches the inner handler, which is
// what makes retry safe for the ingest: dedup state only advances on
// attempts that actually processed the message.
type faultyHandler struct {
	inj   *faulty.Injector
	inner transport.Handler
}

func newFaultyHandler(script faulty.Script, inner transport.Handler) *faultyHandler {
	return &faultyHandler{inj: faulty.New(script, nil), inner: inner}
}

func (f *faultyHandler) ServeSOAP(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
	if err := f.inj.DeliverCtx(ctx, nil); err != nil {
		return nil, err
	}
	return f.inner.ServeSOAP(ctx, env)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChainChaosExactlyOnce is the federation chaos test: a 3-broker
// chain running the real queued delivery pipeline with retry/backoff,
// where every subscriber sink AND every peer-ingest endpoint fails about
// 30% of delivery attempts (faulty.Script{FailEvery: 3}). Exactly-once
// still must hold at every broker — retries must not duplicate relayed
// messages (dedup only advances on processed attempts) and no relay may
// loop. Run under -race this also exercises the dedup LRU and link map
// concurrently from three brokers' worker pools.
func TestChainChaosExactlyOnce(t *testing.T) {
	lb := transport.NewLoopback()
	chaos := faulty.Script{FailEvery: 3} // ~33% of attempts fail

	reliable := func(c *core.Config) {
		c.SyncDelivery = false
		c.Retry = &dispatch.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
		c.FailureLimit = 1000 // chaos must not evict anyone
	}
	a := newNode(t, lb, "a", reliable, nil)
	b := newNode(t, lb, "b", reliable, nil)
	c := newNode(t, lb, "c", reliable, nil)
	nodes := []*node{a, b, c}

	// Swap every sink and every peer ingest for a fault-injected wrapper.
	// Loopback.Register replaces in place, so the subscriptions created by
	// newNode now deliver into the faulty path.
	for _, n := range nodes {
		lb.Register("svc://"+n.id+"-sink", newFaultyHandler(chaos, n.sink))
		lb.Register("svc://"+n.id+"-peer", newFaultyHandler(chaos, n.peering.IngestHandler()))
	}
	peer(t, a, b)
	peer(t, b, a)
	peer(t, b, c)
	peer(t, c, b)

	const perBroker = 20
	var vals []string
	for _, n := range nodes {
		for j := 0; j < perBroker; j++ {
			v := fmt.Sprintf("%s-%d", n.id, j)
			vals = append(vals, v)
			if err := n.broker.Publish(gridTopic, event(v)); err != nil {
				t.Fatalf("publish at %s: %v", n.id, err)
			}
		}
	}

	complete := func() bool {
		for _, n := range nodes {
			got := n.sink.counts()
			for _, v := range vals {
				if got[v] < 1 {
					return false
				}
			}
		}
		return true
	}
	waitFor(t, 30*time.Second, complete, "every sink to receive every event")

	// Quiesce all pipelines, then assert the strict form: exactly once,
	// nowhere more.
	for _, n := range nodes {
		n.broker.Flush()
	}
	time.Sleep(50 * time.Millisecond)
	assertExactlyOnce(t, nodes, vals)

	// Zero relay loops: nothing may travel further than the chain is long.
	for _, n := range nodes {
		for _, d := range n.sink.deliveries() {
			if d.relay != nil && d.relay.Hops > 2 {
				t.Errorf("broker %s: delivery %q crossed %d links in a 3-chain — a loop", n.id, d.val, d.relay.Hops)
			}
		}
	}

	// The chaos was real: the injectors must have failed a comparable
	// share of attempts (sanity check that the test tested something).
	for _, n := range nodes {
		if fails := n.broker.DispatchStats().Retries; fails == 0 {
			t.Errorf("broker %s: no retries recorded — fault injection did not engage", n.id)
		}
	}
}

// TestMeshChaosExactlyOnce runs the same fault storm over a full 3-mesh —
// the topology where every event has redundant inbound paths, so dedup
// (not just topology) is what stands between retries and duplicates.
func TestMeshChaosExactlyOnce(t *testing.T) {
	lb := transport.NewLoopback()
	chaos := faulty.Script{FailEvery: 3}
	reliable := func(c *core.Config) {
		c.SyncDelivery = false
		c.Retry = &dispatch.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
		c.FailureLimit = 1000
	}
	nodes := []*node{
		newNode(t, lb, "a", reliable, nil),
		newNode(t, lb, "b", reliable, nil),
		newNode(t, lb, "c", reliable, nil),
	}
	for _, n := range nodes {
		lb.Register("svc://"+n.id+"-sink", newFaultyHandler(chaos, n.sink))
		lb.Register("svc://"+n.id+"-peer", newFaultyHandler(chaos, n.peering.IngestHandler()))
	}
	for _, x := range nodes {
		for _, y := range nodes {
			if x != y {
				peer(t, x, y)
			}
		}
	}

	const perBroker = 20
	var vals []string
	for _, n := range nodes {
		for j := 0; j < perBroker; j++ {
			v := fmt.Sprintf("%s-%d", n.id, j)
			vals = append(vals, v)
			if err := n.broker.Publish(gridTopic, event(v)); err != nil {
				t.Fatalf("publish at %s: %v", n.id, err)
			}
		}
	}
	waitFor(t, 30*time.Second, func() bool {
		for _, n := range nodes {
			got := n.sink.counts()
			for _, v := range vals {
				if got[v] < 1 {
					return false
				}
			}
		}
		return true
	}, "every sink to receive every event")
	for _, n := range nodes {
		n.broker.Flush()
	}
	time.Sleep(50 * time.Millisecond)
	assertExactlyOnce(t, nodes, vals)
}
