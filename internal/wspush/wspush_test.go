package wspush

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer upgrades and echoes every data message back; pings get pongs
// from the library user's loop (as the broker's session loop would).
func echoServer(t *testing.T) (*httptest.Server, *sync.WaitGroup) {
	t.Helper()
	var wg sync.WaitGroup
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for {
				op, p, err := c.ReadMessage()
				if err != nil {
					return
				}
				switch op {
				case OpPing:
					c.WritePong(p)
				case OpClose:
					c.WriteClose(CloseNormal, "")
					return
				case OpText, OpBinary:
					if err := c.WriteMessage(op, p); err != nil {
						return
					}
				}
			}
		}()
	}))
	return srv, &wg
}

func TestHandshakeAndEcho(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	defer wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, srv.URL)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	msg := []byte(`{"action":"subscribe","topic":"{urn:t}a"}`)
	if err := c.WriteMessage(OpText, msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	op, p, err := c.ReadMessage()
	if err != nil || op != OpText || !bytes.Equal(p, msg) {
		t.Fatalf("echo: op=%d p=%s err=%v", op, p, err)
	}
	// Binary frames too.
	bin := []byte{0, 1, 2, 0xFF}
	if err := c.WriteMessage(OpBinary, bin); err != nil {
		t.Fatal(err)
	}
	if op, p, err = c.ReadMessage(); err != nil || op != OpBinary || !bytes.Equal(p, bin) {
		t.Fatalf("binary echo: op=%d err=%v", op, err)
	}
}

func TestPingPong(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	defer wg.Wait()
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WritePing([]byte("alive?")); err != nil {
		t.Fatal(err)
	}
	op, p, err := c.ReadMessage()
	if err != nil || op != OpPong || string(p) != "alive?" {
		t.Fatalf("pong: op=%d p=%s err=%v", op, p, err)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	defer wg.Wait()
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteClose(CloseNormal, "done"); err != nil {
		t.Fatal(err)
	}
	op, p, err := c.ReadMessage()
	if err != nil || op != OpClose {
		t.Fatalf("close echo: op=%d err=%v", op, err)
	}
	if ce := ParseClose(p); ce.Code != CloseNormal {
		t.Fatalf("close code = %d", ce.Code)
	}
}

// TestLargeMessage exercises the 16-bit and 64-bit extended length paths.
func TestLargeMessage(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	defer wg.Wait()
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, size := range []int{126, 70_000} {
		msg := bytes.Repeat([]byte("x"), size)
		if err := c.WriteMessage(OpBinary, msg); err != nil {
			t.Fatal(err)
		}
		op, p, err := c.ReadMessage()
		if err != nil || op != OpBinary || len(p) != size {
			t.Fatalf("size %d: op=%d len=%d err=%v", size, op, len(p), err)
		}
	}
}

func TestAcceptKey(t *testing.T) {
	// RFC 6455 §1.3 worked example.
	if got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("AcceptKey = %q", got)
	}
}

func TestUpgradeRejectsPlainHTTP(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	defer wg.Wait()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET got HTTP %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Sec-WebSocket-Key", "AQIDBAUGBwgJCgsMDQ4PEA==")
	req.Header.Set("Sec-WebSocket-Version", "8") // unsupported
	resp, err = http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("version 8 got HTTP %d, want 426", resp.StatusCode)
	}
	if resp.Header.Get("Sec-WebSocket-Version") != "13" {
		t.Fatal("426 must advertise version 13")
	}
}

// TestServerRejectsUnmaskedClientFrames pins the masking rule: a raw
// unmasked frame from the client side must kill the read with an error.
func TestServerRejectsUnmaskedClientFrames(t *testing.T) {
	errs := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		_, _, err = c.ReadMessage()
		errs <- err
	}))
	defer srv.Close()
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Bypass WriteMessage's masking: hand-rolled unmasked text frame.
	c.wmu.Lock()
	_, err = c.conn.Write([]byte{0x81, 0x02, 'h', 'i'})
	c.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil || !strings.Contains(err.Error(), "not masked") {
			t.Fatalf("server read err = %v, want masking violation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never rejected the unmasked frame")
	}
}

// TestFragmentedMessageReassembly: continuation frames reassemble, with a
// control frame interleaved mid-message (legal per RFC 6455 §5.4).
func TestFragmentedMessageReassembly(t *testing.T) {
	got := make(chan string, 1)
	pings := make(chan string, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			op, p, err := c.ReadMessage()
			if err != nil {
				return
			}
			switch op {
			case OpPing:
				pings <- string(p)
			case OpText:
				got <- string(p)
				return
			}
		}
	}))
	defer srv.Close()
	c, err := Dial(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Hand-rolled masked frames: "hel" (text, no FIN), ping, "lo" (cont, FIN).
	writeMasked := func(b0 byte, payload string) {
		key := [4]byte{1, 2, 3, 4}
		frame := []byte{b0, 0x80 | byte(len(payload))}
		frame = append(frame, key[:]...)
		for i := 0; i < len(payload); i++ {
			frame = append(frame, payload[i]^key[i&3])
		}
		if _, err := c.conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	writeMasked(0x01, "hel")      // text, FIN clear
	writeMasked(0x89, "mid-ping") // ping, FIN set
	writeMasked(0x80, "lo")       // continuation, FIN set
	select {
	case s := <-got:
		if s != "hello" {
			t.Fatalf("reassembled %q, want hello", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never reassembled")
	}
	if p := <-pings; p != "mid-ping" {
		t.Fatalf("interleaved ping = %q", p)
	}
}
