// Package wspush is a minimal RFC 6455 WebSocket implementation over the
// standard library — the push half of the broker's modern front door. A
// 2026 browser or edge client opens one socket, subscribes to topics, and
// receives CloudEvents-framed notifications pushed over it; no SOAP, no
// polling, no inbound connectivity required of the consumer (the mobile /
// intermittent-consumer scenario the paper's comparison tables could only
// gesture at).
//
// Scope: server handshake + framing (Upgrade), a test/client dialer
// (Dial), text/binary messages with fragmentation reassembly, and the
// control frames (ping/pong/close) the broker's liveness machinery rides
// on. Compression and subprotocol negotiation are deliberately absent.
package wspush

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Opcodes (RFC 6455 §5.2).
const (
	OpContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	OpClose        = 0x8
	OpPing         = 0x9
	OpPong         = 0xA
)

// Close status codes (RFC 6455 §7.4.1).
const (
	CloseNormal        = 1000
	CloseGoingAway     = 1001
	CloseProtocolError = 1002
	CloseMessageTooBig = 1009
	CloseInternalError = 1011
)

// maxMessageBytes bounds one reassembled message. Subscription requests
// and CloudEvents frames are small; anything larger is hostile.
const maxMessageBytes = 4 << 20

// maxControlPayload is the RFC 6455 bound on control-frame payloads.
const maxControlPayload = 125

// wsGUID is the magic handshake constant (RFC 6455 §1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// ErrNotWebSocket reports an Upgrade request that is not a WebSocket
// handshake (the HTTP error response has already been written).
var ErrNotWebSocket = errors.New("wspush: not a WebSocket handshake")

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("wspush: connection closed")

// CloseError carries the peer's close frame.
type CloseError struct {
	Code   int
	Reason string
}

func (e *CloseError) Error() string {
	return fmt.Sprintf("wspush: peer closed connection (%d %s)", e.Code, e.Reason)
}

// AcceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Conn is one WebSocket connection. Reads must come from one goroutine;
// writes are internally serialised and may come from several.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client conns mask outgoing frames, reject masked incoming

	wmu    sync.Mutex
	closed bool

	// fragmentation reassembly state (reader goroutine only)
	asmOp int
	asm   []byte
}

// Upgrade performs the server half of the WebSocket handshake and hijacks
// the HTTP connection. On failure it writes the appropriate HTTP error
// response itself and returns ErrNotWebSocket (wrapped with the cause).
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	fail := func(status int, msg string) (*Conn, error) {
		http.Error(w, msg, status)
		return nil, fmt.Errorf("%w: %s", ErrNotWebSocket, msg)
	}
	if r.Method != http.MethodGet {
		return fail(http.StatusMethodNotAllowed, "WebSocket handshake requires GET")
	}
	if !headerTokenContains(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return fail(http.StatusBadRequest, "missing Upgrade: websocket")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		return fail(http.StatusUpgradeRequired, "unsupported WebSocket version")
	}
	key := strings.TrimSpace(r.Header.Get("Sec-WebSocket-Key"))
	if key == "" {
		return fail(http.StatusBadRequest, "missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return fail(http.StatusInternalServerError, "connection cannot be hijacked")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wspush: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wspush: handshake write: %w", err)
	}
	if err := brw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wspush: handshake flush: %w", err)
	}
	return &Conn{conn: conn, br: brw.Reader}, nil
}

func headerTokenContains(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial opens a client WebSocket connection to a ws:// or http:// URL. TLS
// endpoints are out of scope (tests and intra-host consumers only).
func Dial(ctx context.Context, rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("wspush: dial: %w", err)
	}
	switch u.Scheme {
	case "ws", "http":
	default:
		return nil, fmt.Errorf("wspush: dial: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("wspush: dial: %w", err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wspush: handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wspush: handshake response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("wspush: handshake rejected: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != AcceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("wspush: bad Sec-WebSocket-Accept %q", got)
	}
	conn.SetDeadline(time.Time{})
	return &Conn{conn: conn, br: br, client: true}, nil
}

// readFrame reads one frame, unmasking as needed.
func (c *Conn) readFrame() (fin bool, op int, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return false, 0, nil, err
	}
	if h[0]&0x70 != 0 {
		return false, 0, nil, fmt.Errorf("wspush: nonzero RSV bits (no extension negotiated)")
	}
	fin = h[0]&0x80 != 0
	op = int(h[0] & 0x0F)
	masked := h[1]&0x80 != 0
	n := int64(h[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		n = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v > maxMessageBytes {
			return false, 0, nil, fmt.Errorf("wspush: frame of %d bytes exceeds limit", v)
		}
		n = int64(v)
	}
	if n > maxMessageBytes {
		return false, 0, nil, fmt.Errorf("wspush: frame of %d bytes exceeds limit", n)
	}
	// RFC 6455 §5.1: clients MUST mask, servers MUST NOT.
	if !c.client && !masked {
		return false, 0, nil, fmt.Errorf("wspush: client frame not masked")
	}
	if c.client && masked {
		return false, 0, nil, fmt.Errorf("wspush: server frame masked")
	}
	var maskKey [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, maskKey[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= maskKey[i&3]
		}
	}
	return fin, op, payload, nil
}

// ReadMessage returns the next complete message: data messages (OpText,
// OpBinary) are reassembled across continuation frames; control messages
// (OpClose, OpPing, OpPong) are returned as they arrive, even interleaved
// inside a fragmented data message. A close frame is also surfaced as a
// *CloseError for callers that only care about liveness.
func (c *Conn) ReadMessage() (op int, payload []byte, err error) {
	for {
		fin, op, p, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		if op >= 0x8 { // control frame
			if !fin || len(p) > maxControlPayload {
				return 0, nil, fmt.Errorf("wspush: malformed control frame")
			}
			return op, p, nil
		}
		if op == OpContinuation {
			if c.asmOp == 0 {
				return 0, nil, fmt.Errorf("wspush: continuation without a message")
			}
			c.asm = append(c.asm, p...)
		} else {
			if c.asmOp != 0 {
				return 0, nil, fmt.Errorf("wspush: new data frame inside fragmented message")
			}
			c.asmOp = op
			c.asm = append([]byte(nil), p...)
		}
		if len(c.asm) > maxMessageBytes {
			return 0, nil, fmt.Errorf("wspush: message exceeds %d bytes", maxMessageBytes)
		}
		if fin {
			op, payload = c.asmOp, c.asm
			c.asmOp, c.asm = 0, nil
			return op, payload, nil
		}
	}
}

// ParseClose decodes a close frame payload.
func ParseClose(payload []byte) *CloseError {
	ce := &CloseError{Code: CloseNormal}
	if len(payload) >= 2 {
		ce.Code = int(binary.BigEndian.Uint16(payload[:2]))
		ce.Reason = string(payload[2:])
	}
	return ce
}

// WriteMessage writes one unfragmented message. Safe for concurrent use.
func (c *Conn) WriteMessage(op int, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.writeFrame(op, payload)
}

func (c *Conn) writeFrame(op int, payload []byte) error {
	var hdr [14]byte
	hdr[0] = 0x80 | byte(op) // FIN always set
	n := len(payload)
	i := 2
	switch {
	case n <= 125:
		hdr[1] = byte(n)
	case n <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(n))
		i = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(n))
		i = 10
	}
	if !c.client {
		if _, err := c.conn.Write(hdr[:i]); err != nil {
			return err
		}
		_, err := c.conn.Write(payload)
		return err
	}
	// Client frames are masked (RFC 6455 §5.3).
	hdr[1] |= 0x80
	var key [4]byte
	if _, err := rand.Read(key[:]); err != nil {
		return err
	}
	copy(hdr[i:], key[:])
	i += 4
	masked := make([]byte, len(payload))
	for j, b := range payload {
		masked[j] = b ^ key[j&3]
	}
	if _, err := c.conn.Write(hdr[:i]); err != nil {
		return err
	}
	_, err := c.conn.Write(masked)
	return err
}

// WritePing sends a ping control frame.
func (c *Conn) WritePing(payload []byte) error { return c.WriteMessage(OpPing, payload) }

// WritePong sends a pong control frame.
func (c *Conn) WritePong(payload []byte) error { return c.WriteMessage(OpPong, payload) }

// WriteClose sends a close frame with the given status code and reason.
// It does not close the underlying connection — the closing handshake
// expects the peer's echo first; callers follow with Close.
func (c *Conn) WriteClose(code int, reason string) error {
	if len(reason) > maxControlPayload-2 {
		reason = reason[:maxControlPayload-2]
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload[:2], uint16(code))
	copy(payload[2:], reason)
	return c.WriteMessage(OpClose, payload)
}

// SetReadDeadline bounds the next read.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Close tears down the underlying connection.
func (c *Conn) Close() error {
	c.wmu.Lock()
	c.closed = true
	c.wmu.Unlock()
	return c.conn.Close()
}

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }
