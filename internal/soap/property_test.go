package soap

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmldom"
)

// genEnvelope builds random envelopes with 0-3 headers and 0-3 body
// elements across both SOAP versions.
type genEnvelope struct{ E *Envelope }

func (genEnvelope) Generate(r *rand.Rand, _ int) reflect.Value {
	v := V11
	if r.Intn(2) == 1 {
		v = V12
	}
	env := New(v)
	for i := 0; i < r.Intn(4); i++ {
		h := xmldom.Elem("urn:h", fmt.Sprintf("Header%d", i), fmt.Sprint(r.Intn(100)))
		if r.Intn(3) == 0 {
			MarkMustUnderstand(h, v)
		}
		env.AddHeader(h)
	}
	for i := 0; i < r.Intn(4); i++ {
		env.AddBody(xmldom.Elem("urn:b", fmt.Sprintf("Op%d", i),
			xmldom.Elem("urn:b", "arg", "v<&>"+fmt.Sprint(r.Intn(100)))))
	}
	return reflect.ValueOf(genEnvelope{E: env})
}

// Property: Marshal/Parse preserves version, header and body structure.
func TestPropertyEnvelopeRoundTrip(t *testing.T) {
	f := func(ge genEnvelope) bool {
		back, err := ParseBytes(ge.E.Marshal())
		if err != nil {
			return false
		}
		if back.Version != ge.E.Version {
			return false
		}
		if len(back.Headers) != len(ge.E.Headers) || len(back.Body) != len(ge.E.Body) {
			return false
		}
		for i := range ge.E.Headers {
			if !back.Headers[i].Equal(ge.E.Headers[i]) {
				return false
			}
		}
		for i := range ge.E.Body {
			if !back.Body[i].Equal(ge.E.Body[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: faults round-trip for every code/version combination with
// arbitrary reasons.
func TestPropertyFaultRoundTrip(t *testing.T) {
	f := func(codeN uint8, reason string, vBit bool) bool {
		if reason == "" {
			reason = "r"
		}
		code := FaultCode(int(codeN) % 4)
		v := V11
		if vBit {
			v = V12
		}
		fault := &Fault{Code: code, Reason: reason}
		back, err := ParseBytes(fault.Envelope(v).Marshal())
		if err != nil {
			return false
		}
		got, ok := AsFault(back)
		// Characters XML 1.0 cannot carry are replaced on the wire, XML
		// parsers normalise CR/CRLF to LF, and the reader trims; the
		// round trip is exact up to those wire rules.
		want := xmldom.CleanText(reason)
		want = strings.ReplaceAll(want, "\r\n", "\n")
		want = strings.ReplaceAll(want, "\r", "\n")
		want = strings.TrimSpace(want)
		return ok && got.Code == code && got.Reason == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
