// Package soap implements SOAP 1.1 and 1.2 envelope construction, parsing
// and fault handling over xmldom trees.
//
// Both WS-Eventing and WS-Notification exchange SOAP envelopes whose
// headers carry WS-Addressing information and whose bodies carry the
// operation payloads; the paper's message-format comparison (§V.4) is
// entirely about the contents of these envelopes. The package is
// deliberately schema-free: bodies and headers are xmldom elements, so the
// spec packages compose messages directly and the mediation layer can
// rewrite them without a binding step.
package soap

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/xmldom"
)

// Version selects the SOAP envelope version.
type Version int

const (
	// V11 is SOAP 1.1 (http://schemas.xmlsoap.org/soap/envelope/), the
	// version the 2004-06 WS-* interop stacks used.
	V11 Version = iota
	// V12 is SOAP 1.2 (http://www.w3.org/2003/05/soap-envelope).
	V12
)

// Namespace URIs for the two envelope versions.
const (
	NS11 = "http://schemas.xmlsoap.org/soap/envelope/"
	NS12 = "http://www.w3.org/2003/05/soap-envelope"
)

func init() {
	xmldom.RegisterPrefix(NS11, "soap")
	xmldom.RegisterPrefix(NS12, "soap12")
}

// NS returns the envelope namespace for the version.
func (v Version) NS() string {
	if v == V12 {
		return NS12
	}
	return NS11
}

// String names the version for logs and probe output.
func (v Version) String() string {
	if v == V12 {
		return "SOAP 1.2"
	}
	return "SOAP 1.1"
}

// ContentType returns the MIME type the HTTP binding must use.
func (v Version) ContentType() string {
	if v == V12 {
		return "application/soap+xml; charset=utf-8"
	}
	return "text/xml; charset=utf-8"
}

// Envelope is a decomposed SOAP message: ordered header blocks and body
// elements. The zero value is an empty SOAP 1.1 envelope.
type Envelope struct {
	Version Version
	Headers []*xmldom.Element
	Body    []*xmldom.Element
}

// New returns an empty envelope of the given version.
func New(v Version) *Envelope { return &Envelope{Version: v} }

// AddHeader appends a header block.
func (e *Envelope) AddHeader(h *xmldom.Element) *Envelope {
	e.Headers = append(e.Headers, h)
	return e
}

// AddBody appends a body element.
func (e *Envelope) AddBody(b *xmldom.Element) *Envelope {
	e.Body = append(e.Body, b)
	return e
}

// Header returns the first header block with the given name, or nil.
func (e *Envelope) Header(name xmldom.Name) *xmldom.Element {
	for _, h := range e.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// HeaderText returns the trimmed text of the named header, or "".
func (e *Envelope) HeaderText(name xmldom.Name) string {
	if h := e.Header(name); h != nil {
		return strings.TrimSpace(h.Text())
	}
	return ""
}

// FirstBody returns the first body element, or nil for an empty body.
func (e *Envelope) FirstBody() *xmldom.Element {
	if len(e.Body) == 0 {
		return nil
	}
	return e.Body[0]
}

// Element assembles the envelope into a single xmldom tree.
func (e *Envelope) Element() *xmldom.Element {
	ns := e.Version.NS()
	env := xmldom.NewElement(xmldom.N(ns, "Envelope"))
	if len(e.Headers) > 0 {
		hdr := xmldom.NewElement(xmldom.N(ns, "Header"))
		for _, h := range e.Headers {
			hdr.Append(h)
		}
		env.Append(hdr)
	}
	body := xmldom.NewElement(xmldom.N(ns, "Body"))
	for _, b := range e.Body {
		body.Append(b)
	}
	env.Append(body)
	return env
}

// xmlDeclaration prefixes every serialised envelope.
const xmlDeclaration = `<?xml version="1.0" encoding="utf-8"?>`

// Marshal serialises the envelope with an XML declaration.
func (e *Envelope) Marshal() []byte {
	return e.AppendMarshal(nil)
}

// AppendMarshal serialises the envelope with an XML declaration, appending
// to buf and returning the extended slice. The delivery hot path uses it
// with pooled buffers so fan-out serialisation allocates nothing beyond
// the first envelope; the bytes are identical to Marshal's.
func (e *Envelope) AppendMarshal(buf []byte) []byte {
	buf = append(buf, xmlDeclaration...)
	return xmldom.AppendMarshal(buf, e.Element())
}

// MarshalIndent pretty-prints the envelope for logs and examples.
func (e *Envelope) MarshalIndent() string {
	return xmldom.MarshalIndent(e.Element())
}

// ErrNotEnvelope reports that the document root is not a SOAP envelope of
// either version.
var ErrNotEnvelope = errors.New("soap: document is not a SOAP envelope")

// Parse reads a SOAP envelope, auto-detecting the version from the root
// namespace — the property the WS-Messenger front door relies on, since it
// must accept messages from either spec family without prior negotiation.
func Parse(r io.Reader) (*Envelope, error) {
	root, err := xmldom.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}

// ParseBytes parses an envelope held in memory.
func ParseBytes(b []byte) (*Envelope, error) { return Parse(strings.NewReader(string(b))) }

// FromElement decomposes an already-parsed document into an Envelope.
func FromElement(root *xmldom.Element) (*Envelope, error) {
	var v Version
	switch root.Name {
	case xmldom.N(NS11, "Envelope"):
		v = V11
	case xmldom.N(NS12, "Envelope"):
		v = V12
	default:
		return nil, fmt.Errorf("%w: root is %v", ErrNotEnvelope, root.Name)
	}
	env := New(v)
	ns := v.NS()
	if hdr := root.Child(xmldom.N(ns, "Header")); hdr != nil {
		env.Headers = hdr.ChildElements()
	}
	body := root.Child(xmldom.N(ns, "Body"))
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	env.Body = body.ChildElements()
	return env, nil
}

// MustUnderstandName returns the per-version mustUnderstand attribute name.
func (v Version) MustUnderstandName() xmldom.Name {
	return xmldom.N(v.NS(), "mustUnderstand")
}

// MarkMustUnderstand flags a header block as mandatory for the receiver.
func MarkMustUnderstand(h *xmldom.Element, v Version) {
	val := "1"
	if v == V12 {
		val = "true"
	}
	h.SetAttr(v.MustUnderstandName(), val)
}

// IsMustUnderstand reports whether a header block carries the flag.
func IsMustUnderstand(h *xmldom.Element, v Version) bool {
	val, ok := h.Attr(v.MustUnderstandName())
	if !ok {
		return false
	}
	return val == "1" || val == "true"
}
