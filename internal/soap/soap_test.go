package soap

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
)

func TestVersionProperties(t *testing.T) {
	if V11.NS() != NS11 || V12.NS() != NS12 {
		t.Error("namespace mapping wrong")
	}
	if !strings.Contains(V11.ContentType(), "text/xml") {
		t.Errorf("1.1 content type = %q", V11.ContentType())
	}
	if !strings.Contains(V12.ContentType(), "application/soap+xml") {
		t.Errorf("1.2 content type = %q", V12.ContentType())
	}
	if V11.String() == V12.String() {
		t.Error("version strings should differ")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, v := range []Version{V11, V12} {
		env := New(v)
		env.AddHeader(xmldom.Elem("urn:h", "Action", "urn:do-it"))
		env.AddHeader(xmldom.Elem("urn:h", "MessageID", "uuid:1"))
		env.AddBody(xmldom.Elem("urn:b", "Payload", xmldom.Elem("urn:b", "Inner", "42")))

		data := env.Marshal()
		if !strings.HasPrefix(string(data), `<?xml`) {
			t.Error("missing XML declaration")
		}
		back, err := ParseBytes(data)
		if err != nil {
			t.Fatalf("%v: parse: %v", v, err)
		}
		if back.Version != v {
			t.Errorf("version detect = %v, want %v", back.Version, v)
		}
		if len(back.Headers) != 2 || len(back.Body) != 1 {
			t.Fatalf("%v: headers=%d body=%d", v, len(back.Headers), len(back.Body))
		}
		if got := back.HeaderText(xmldom.N("urn:h", "Action")); got != "urn:do-it" {
			t.Errorf("header text = %q", got)
		}
		if back.FirstBody().ChildText(xmldom.N("urn:b", "Inner")) != "42" {
			t.Error("body content lost")
		}
	}
}

func TestEnvelopeNoHeaders(t *testing.T) {
	env := New(V11)
	env.AddBody(xmldom.Elem("urn:b", "X"))
	el := env.Element()
	if el.Child(xmldom.N(NS11, "Header")) != nil {
		t.Error("empty Header element should be omitted")
	}
	back, err := ParseBytes(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Headers) != 0 {
		t.Error("headers should be empty")
	}
}

func TestEmptyBodyAllowed(t *testing.T) {
	env := New(V11)
	back, err := ParseBytes(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.FirstBody() != nil {
		t.Error("FirstBody of empty body should be nil")
	}
}

func TestParseRejectsNonEnvelope(t *testing.T) {
	if _, err := ParseBytes([]byte(`<NotAnEnvelope/>`)); err == nil {
		t.Error("expected error for non-envelope root")
	}
	if _, err := ParseBytes([]byte(`<Envelope xmlns="urn:wrong"><Body/></Envelope>`)); err == nil {
		t.Error("expected error for wrong namespace")
	}
	// Envelope without a Body is invalid.
	if _, err := ParseBytes([]byte(`<Envelope xmlns="` + NS11 + `"/>`)); err == nil {
		t.Error("expected error for missing Body")
	}
	if _, err := ParseBytes([]byte(`garbage`)); err == nil {
		t.Error("expected error for non-XML input")
	}
}

func TestHeaderLookupMissing(t *testing.T) {
	env := New(V11)
	if env.Header(xmldom.N("urn:h", "X")) != nil {
		t.Error("missing header should be nil")
	}
	if env.HeaderText(xmldom.N("urn:h", "X")) != "" {
		t.Error("missing header text should be empty")
	}
}

func TestMustUnderstand(t *testing.T) {
	for _, v := range []Version{V11, V12} {
		h := xmldom.Elem("urn:h", "Critical")
		if IsMustUnderstand(h, v) {
			t.Errorf("%v: unmarked header reported mustUnderstand", v)
		}
		MarkMustUnderstand(h, v)
		if !IsMustUnderstand(h, v) {
			t.Errorf("%v: marked header not detected", v)
		}
		// Round-trips through serialisation.
		env := New(v)
		env.AddHeader(h)
		env.AddBody(xmldom.Elem("urn:b", "X"))
		back, err := ParseBytes(env.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !IsMustUnderstand(back.Headers[0], v) {
			t.Errorf("%v: mustUnderstand lost in round trip", v)
		}
	}
}

func TestFaultRoundTrip(t *testing.T) {
	sub := xmldom.N("urn:spec", "UnsupportedExpirationType")
	for _, v := range []Version{V11, V12} {
		f := &Fault{
			Code:    FaultSender,
			Subcode: sub,
			Reason:  "expiration type not supported",
			Detail:  xmldom.Elem("urn:spec", "Hint", "use duration"),
		}
		env := f.Envelope(v)
		back, err := ParseBytes(env.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		got, ok := AsFault(back)
		if !ok {
			t.Fatalf("%v: AsFault did not detect fault", v)
		}
		if got.Code != FaultSender {
			t.Errorf("%v: code = %v", v, got.Code)
		}
		if got.Reason != f.Reason {
			t.Errorf("%v: reason = %q", v, got.Reason)
		}
		if got.Subcode.Local != sub.Local {
			t.Errorf("%v: subcode = %v", v, got.Subcode)
		}
		if got.Detail == nil || got.Detail.Text() != "use duration" {
			t.Errorf("%v: detail = %v", v, got.Detail)
		}
	}
}

func TestFaultCodes(t *testing.T) {
	cases := []struct {
		code  FaultCode
		local string
		v     Version
	}{
		{FaultSender, "Client", V11},
		{FaultSender, "Sender", V12},
		{FaultReceiver, "Server", V11},
		{FaultReceiver, "Receiver", V12},
		{FaultMustUnderstand, "MustUnderstand", V11},
		{FaultVersionMismatch, "VersionMismatch", V12},
	}
	for _, tc := range cases {
		f := &Fault{Code: tc.code, Reason: "r"}
		env := f.Envelope(tc.v)
		out := string(env.Marshal())
		if !strings.Contains(out, tc.local) {
			t.Errorf("fault %v on %v missing %q:\n%s", tc.code, tc.v, tc.local, out)
		}
		back, _ := ParseBytes(env.Marshal())
		got, ok := AsFault(back)
		if !ok || got.Code != tc.code {
			t.Errorf("round trip of %v/%v gave %v", tc.code, tc.v, got)
		}
	}
}

func TestAsFaultOnNonFault(t *testing.T) {
	env := New(V11)
	env.AddBody(xmldom.Elem("urn:b", "Regular"))
	if _, ok := AsFault(env); ok {
		t.Error("regular body misdetected as fault")
	}
	if _, ok := AsFault(New(V12)); ok {
		t.Error("empty body misdetected as fault")
	}
}

func TestFaultAsError(t *testing.T) {
	f := Faultf(FaultSender, "bad filter dialect %q", "urn:x")
	if !strings.Contains(f.Error(), "bad filter dialect") {
		t.Errorf("Error() = %q", f.Error())
	}
	var err error = f
	got, ok := ErrFault(err)
	if !ok || got != f {
		t.Error("ErrFault failed to recover fault")
	}
	if _, ok := ErrFault(nil); ok {
		t.Error("ErrFault(nil) should be false")
	}
}
