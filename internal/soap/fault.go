package soap

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/xmldom"
)

// FaultCode is the version-independent classification of a SOAP fault.
type FaultCode int

const (
	// FaultSender indicates a malformed or unacceptable request
	// (soap:Client in 1.1, soap:Sender in 1.2).
	FaultSender FaultCode = iota
	// FaultReceiver indicates a processing failure at the receiver
	// (soap:Server in 1.1, soap:Receiver in 1.2).
	FaultReceiver
	// FaultMustUnderstand indicates an unprocessed mandatory header.
	FaultMustUnderstand
	// FaultVersionMismatch indicates an unsupported envelope version.
	FaultVersionMismatch
)

func (c FaultCode) local(v Version) string {
	switch c {
	case FaultSender:
		if v == V12 {
			return "Sender"
		}
		return "Client"
	case FaultReceiver:
		if v == V12 {
			return "Receiver"
		}
		return "Server"
	case FaultMustUnderstand:
		return "MustUnderstand"
	case FaultVersionMismatch:
		return "VersionMismatch"
	}
	return "Server"
}

// Fault is a SOAP fault, usable as a Go error. Subcode carries the spec-
// defined fault subcodes (e.g. WS-Eventing's UnsupportedExpirationType).
type Fault struct {
	Code    FaultCode
	Subcode xmldom.Name // optional, qualified subcode
	Reason  string
	Detail  *xmldom.Element // optional
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Subcode.Local != "" {
		return fmt.Sprintf("soap fault [%s]: %s", f.Subcode.Local, f.Reason)
	}
	return "soap fault: " + f.Reason
}

// Faultf builds a sender fault with a formatted reason.
func Faultf(code FaultCode, format string, args ...any) *Fault {
	return &Fault{Code: code, Reason: fmt.Sprintf(format, args...)}
}

// Envelope renders the fault as a complete envelope of the given version.
// The two versions structure faults differently (faultcode/faultstring
// children vs Code/Reason with nested Value elements); receivers written
// against either spec family parse both through AsFault.
func (f *Fault) Envelope(v Version) *Envelope {
	ns := v.NS()
	env := New(v)
	var fault *xmldom.Element
	if v == V12 {
		code := xmldom.Elem(ns, "Code",
			xmldom.Elem(ns, "Value", "soap12:"+f.Code.local(v)))
		if f.Subcode.Local != "" {
			code.Append(xmldom.Elem(ns, "Subcode",
				xmldom.Elem(ns, "Value", qnameText(f.Subcode))))
		}
		fault = xmldom.Elem(ns, "Fault",
			code,
			xmldom.Elem(ns, "Reason", xmldom.Elem(ns, "Text", f.Reason)),
		)
		if f.Detail != nil {
			fault.Append(xmldom.Elem(ns, "Detail", f.Detail))
		}
	} else {
		// SOAP 1.1 has no subcode slot; carry the spec-defined subcode as
		// an extra child so it survives the round trip while faultcode
		// keeps the standard classification.
		fault = xmldom.Elem("", "Fault",
			xmldom.Elem("", "faultcode", "soap:"+f.Code.local(v)),
			xmldom.Elem("", "faultstring", f.Reason),
		)
		fault.Name = xmldom.N(ns, "Fault")
		if f.Subcode.Local != "" {
			fault.Append(xmldom.Elem("", "faultsubcode", qnameText(f.Subcode)))
		}
		if f.Detail != nil {
			fault.Append(xmldom.Elem("", "detail", f.Detail))
		}
	}
	env.AddBody(fault)
	return env
}

// qnameText renders a subcode QName. The namespace is carried in an
// xmlns-independent "Clark text" form the parser below understands; real
// interop stacks would declare a prefix, which our serialiser would need
// prefix-in-content awareness to do. The subcode local name is what the
// comparison probes assert on.
func qnameText(n xmldom.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

func parseQNameText(s string) xmldom.Name {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "{") {
		if i := strings.Index(s, "}"); i > 0 {
			return xmldom.N(s[1:i], s[i+1:])
		}
	}
	if i := strings.Index(s, ":"); i >= 0 {
		return xmldom.N("", s[i+1:]) // prefix unresolvable post-parse; keep local
	}
	return xmldom.N("", s)
}

// AsFault inspects an envelope and, if its body is a fault of either SOAP
// version, returns it as a *Fault.
func AsFault(env *Envelope) (*Fault, bool) {
	b := env.FirstBody()
	if b == nil {
		return nil, false
	}
	switch b.Name {
	case xmldom.N(NS11, "Fault"):
		f := &Fault{Reason: b.ChildText(xmldom.N("", "faultstring"))}
		f.Code = codeFromLocal(afterColon(b.ChildText(xmldom.N("", "faultcode"))))
		if sub := b.ChildText(xmldom.N("", "faultsubcode")); sub != "" {
			f.Subcode = parseQNameText(sub)
		}
		if d := b.Child(xmldom.N("", "detail")); d != nil && len(d.ChildElements()) > 0 {
			f.Detail = d.ChildElements()[0]
		}
		return f, true
	case xmldom.N(NS12, "Fault"):
		f := &Fault{}
		if code := b.Child(xmldom.N(NS12, "Code")); code != nil {
			f.Code = codeFromLocal(afterColon(code.ChildText(xmldom.N(NS12, "Value"))))
			if sub := code.Child(xmldom.N(NS12, "Subcode")); sub != nil {
				f.Subcode = parseQNameText(sub.ChildText(xmldom.N(NS12, "Value")))
			}
		}
		if reason := b.Child(xmldom.N(NS12, "Reason")); reason != nil {
			f.Reason = reason.ChildText(xmldom.N(NS12, "Text"))
		}
		if d := b.Child(xmldom.N(NS12, "Detail")); d != nil && len(d.ChildElements()) > 0 {
			f.Detail = d.ChildElements()[0]
		}
		return f, true
	}
	return nil, false
}

func afterColon(s string) string {
	if i := strings.LastIndex(s, ":"); i >= 0 {
		return s[i+1:]
	}
	return s
}

func codeFromLocal(local string) FaultCode {
	switch local {
	case "Client", "Sender":
		return FaultSender
	case "MustUnderstand":
		return FaultMustUnderstand
	case "VersionMismatch":
		return FaultVersionMismatch
	default:
		return FaultReceiver
	}
}

// ErrFault lets errors.As recover a *Fault from wrapped errors.
func ErrFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}
