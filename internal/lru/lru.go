// Package lru provides a bounded set with least-recently-seen eviction.
// It backs the federation relay's (origin, id) dedup and the MQTT front
// door's exactly-once inbound packet-id dedup: both need "have I seen this
// key recently?" with O(cap) state regardless of traffic.
package lru

import (
	"container/list"
	"sync"
)

// Set is a bounded set: Add reports whether the key was new, refreshing
// recency either way, and evicts the least recently seen entry when full.
type Set struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	index map[string]*list.Element
}

// New builds an empty set bounded at cap entries.
func New(cap int) *Set {
	return &Set{cap: cap, order: list.New(), index: map[string]*list.Element{}}
}

// Add inserts the key, evicting the least recently seen entry when full.
// It returns false when the key was already present (refreshing it).
func (s *Set) Add(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.order.MoveToFront(el)
		return false
	}
	s.index[key] = s.order.PushFront(key)
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.index, oldest.Value.(string))
	}
	return true
}

// Remove drops a key, reporting whether it was present. The MQTT QoS 2
// release (PUBREL) uses it so completed packet ids can be reused
// immediately.
func (s *Set) Remove(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if ok {
		s.order.Remove(el)
		delete(s.index, key)
	}
	return ok
}

// Len reports current entries.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
