package report

import (
	"strings"
	"testing"

	"repro/internal/probes"
	"repro/internal/spec"
)

func TestRenderTableLayout(t *testing.T) {
	cells := []spec.Cell{
		{Row: "Feature A", Col: "X", Paper: "Yes", Measured: "Yes", Probed: true},
		{Row: "Feature A", Col: "Y", Paper: "No", Measured: "No"},
		{Row: "Feature B", Col: "X", Paper: "Yes", Measured: "No", Note: "known difference"},
		{Row: "Feature B", Col: "Y", Paper: "No", Measured: "No"},
	}
	out := RenderTable("Test", []string{"X", "Y"}, cells)
	if !strings.Contains(out, "Feature A") || !strings.Contains(out, "Feature B") {
		t.Error("row labels missing")
	}
	if !strings.Contains(out, "Yes*") {
		t.Error("probe marker missing")
	}
	if !strings.Contains(out, "No (paper: Yes)") {
		t.Error("mismatch annotation missing")
	}
	if !strings.Contains(out, "note: known difference") {
		t.Error("note missing")
	}
	// Grid lines align: every row line has the same length.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	width := len(lines[0])
	for _, l := range lines {
		if strings.HasPrefix(l, "|") || strings.HasPrefix(l, "+") {
			if len(l) != width {
				t.Errorf("misaligned line (%d != %d): %q", len(l), width, l)
			}
		}
	}
}

func TestRenderChecks(t *testing.T) {
	out := RenderChecks("Checks", []spec.Check{
		{Name: "works", Pass: true},
		{Name: "broken", Pass: false, Err: errTest("boom")},
	})
	if !strings.Contains(out, "[PASS] works") {
		t.Error("pass line missing")
	}
	if !strings.Contains(out, "[FAIL] broken") || !strings.Contains(out, "boom") {
		t.Error("fail line missing error")
	}
	if !strings.Contains(out, "1/2 checks passed") {
		t.Error("summary wrong")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestRenderFigure(t *testing.T) {
	f := &probes.Figure{
		Title:    "Fig. T",
		Entities: []string{"A", "B"},
		Steps: []probes.Interaction{
			{From: "A", To: "B", Op: "Ping"},
			{From: "B", To: "A", Op: "Pong"},
		},
	}
	out := RenderFigure(f)
	if !strings.Contains(out, "[A]") || !strings.Contains(out, "[B]") {
		t.Error("entities missing")
	}
	if !strings.Contains(out, "--Ping-->") || !strings.Contains(out, "--Pong-->") {
		t.Error("arrows missing")
	}
	if strings.Index(out, "Ping") > strings.Index(out, "Pong") {
		t.Error("steps out of order")
	}
}

// TestRegeneratedArtifactsRender smoke-tests the real tables/figures
// through the renderer.
func TestRegeneratedArtifactsRender(t *testing.T) {
	out := RenderTable("Table 1", probes.Table1Columns, probes.Table1())
	if !strings.Contains(out, "WS-Addressing version") {
		t.Error("table 1 render incomplete")
	}
	f1, err := probes.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderFigure(f1), "Subscribe") {
		t.Error("figure 1 render incomplete")
	}
}
