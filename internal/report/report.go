// Package report renders regenerated tables, probe check lists and
// architecture figures as text, for cmd/comparison and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"repro/internal/probes"
	"repro/internal/spec"
)

// RenderTable lays out cells as a grid: one row per distinct Row label (in
// first-appearance order), one column per entry of cols. Cells that were
// verified by live probes are suffixed with '*'; cells that disagree with
// the paper show "measured (paper: printed)".
func RenderTable(title string, cols []string, cells []spec.Cell) string {
	// Index cells.
	type key struct{ row, col string }
	byKey := map[key]spec.Cell{}
	var rowOrder []string
	seenRow := map[string]bool{}
	for _, c := range cells {
		byKey[key{c.Row, c.Col}] = c
		if !seenRow[c.Row] {
			seenRow[c.Row] = true
			rowOrder = append(rowOrder, c.Row)
		}
	}
	render := func(c spec.Cell) string {
		s := c.Measured
		if !c.Match() {
			s = fmt.Sprintf("%s (paper: %s)", c.Measured, c.Paper)
		}
		if c.Probed {
			s += "*"
		}
		return s
	}
	// Column widths.
	labelW := len(title)
	for _, r := range rowOrder {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	colW := make([]int, len(cols))
	for i, col := range cols {
		colW[i] = len(col)
		for _, r := range rowOrder {
			if c, ok := byKey[key{r, col}]; ok {
				if w := len(render(c)); w > colW[i] {
					colW[i] = w
				}
			}
		}
	}
	var sb strings.Builder
	writeRow := func(label string, vals []string) {
		fmt.Fprintf(&sb, "| %-*s ", labelW, label)
		for i, v := range vals {
			fmt.Fprintf(&sb, "| %-*s ", colW[i], v)
		}
		sb.WriteString("|\n")
	}
	rule := func() {
		sb.WriteString("+" + strings.Repeat("-", labelW+2))
		for i := range cols {
			sb.WriteString("+" + strings.Repeat("-", colW[i]+2))
		}
		sb.WriteString("+\n")
	}
	rule()
	writeRow(title, cols)
	rule()
	for _, r := range rowOrder {
		vals := make([]string, len(cols))
		for i, col := range cols {
			if c, ok := byKey[key{r, col}]; ok {
				vals[i] = render(c)
			}
		}
		writeRow(r, vals)
	}
	rule()
	sb.WriteString("cells marked * are verified by live probes; run with -verify for the check list\n")
	// Notes.
	noted := map[string]bool{}
	for _, c := range cells {
		if c.Note != "" && !noted[c.Note] {
			noted[c.Note] = true
			fmt.Fprintf(&sb, "note: %s\n", c.Note)
		}
	}
	return sb.String()
}

// RenderChecks lists executed probes with pass/fail markers and a summary.
func RenderChecks(title string, checks []spec.Check) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	passed := 0
	for _, c := range checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		} else {
			passed++
		}
		fmt.Fprintf(&sb, "  [%s] %s", mark, c.Name)
		if c.Err != nil && !c.Pass {
			fmt.Fprintf(&sb, " — %v", c.Err)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%d/%d checks passed\n", passed, len(checks))
	return sb.String()
}

// RenderFigure draws the entity boxes and the executed interaction arrows
// as a numbered sequence — the textual equivalent of the paper's
// architecture figures, with every arrow backed by a live exchange.
func RenderFigure(f *probes.Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n\n", f.Title, strings.Repeat("=", len(f.Title)))
	sb.WriteString("Entities (Web service interfaces in the paper's bold boxes):\n")
	for _, e := range f.Entities {
		fmt.Fprintf(&sb, "  [%s]\n", e)
	}
	sb.WriteString("\nExecuted interactions (every arrow is a verified live exchange):\n")
	for i, s := range f.Steps {
		fmt.Fprintf(&sb, "  %2d. %-38s --%s--> %s\n", i+1, s.From, s.Op, s.To)
	}
	return sb.String()
}
