package transport

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
)

// TestPooledClientBoundsConnsPerHost is the fd-leak regression at unit
// scale: a burst of concurrent sends to one host must not dial more than
// MaxConnsPerHost sockets, where the default transport (no per-host cap)
// dials one per blocked sender.
func TestPooledClientBoundsConnsPerHost(t *testing.T) {
	block := make(chan struct{})
	var started sync.WaitGroup
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	cc := &ConnCounter{}
	hc := NewPooledHTTPClient(PoolConfig{MaxConnsPerHost: 4, Counter: cc})
	client := &HTTPClient{HC: hc}

	const burst = 16
	env := soap.New(soap.V11)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		started.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := client.SendBytes(ctx, srv.URL, "text/xml", env.Marshal()); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	started.Wait()
	// Let the transport dial as far as it wants before releasing.
	time.Sleep(200 * time.Millisecond)
	if open := cc.Open(); open > 4 {
		t.Errorf("open connections under burst = %d, want <= MaxConnsPerHost (4)", open)
	}
	close(block)
	wg.Wait()
	if dials := cc.Dials(); dials > 4 {
		t.Errorf("total dials = %d, want <= 4 (keep-alive reuse)", dials)
	}
}

// TestPooledClientReleasesIdleConns: after the idle timeout, pooled
// connections close and the open count returns to zero — dead destinations
// do not pin fds.
func TestPooledClientReleasesIdleConns(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	cc := &ConnCounter{}
	hc := NewPooledHTTPClient(PoolConfig{IdleConnTimeout: 50 * time.Millisecond, Counter: cc})
	client := &HTTPClient{HC: hc}
	env := soap.New(soap.V11)
	for i := 0; i < 3; i++ {
		if err := client.SendBytes(context.Background(), srv.URL, "text/xml", env.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if cc.Dials() != 1 {
		t.Errorf("sequential sends dialled %d times, want 1 (reuse)", cc.Dials())
	}
	deadline := time.Now().Add(5 * time.Second)
	for cc.Open() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never released: %d open", cc.Open())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConnCounterNilSafe: a nil counter reads as zero everywhere.
func TestConnCounterNilSafe(t *testing.T) {
	var cc *ConnCounter
	if cc.Open() != 0 || cc.Dials() != 0 {
		t.Error("nil ConnCounter must read zero")
	}
}
