package transport

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/soap"
)

// TestPooledClientBoundsConnsPerHost is the fd-leak regression at unit
// scale: a burst of concurrent sends to one host must not dial more than
// MaxConnsPerHost sockets, where the default transport (no per-host cap)
// dials one per blocked sender.
func TestPooledClientBoundsConnsPerHost(t *testing.T) {
	block := make(chan struct{})
	var started sync.WaitGroup
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	cc := &ConnCounter{}
	hc := NewPooledHTTPClient(PoolConfig{MaxConnsPerHost: 4, Counter: cc})
	client := &HTTPClient{HC: hc}

	const burst = 16
	env := soap.New(soap.V11)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		started.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := client.SendBytes(ctx, srv.URL, "text/xml", env.Marshal()); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	started.Wait()
	// Let the transport dial as far as it wants before releasing.
	time.Sleep(200 * time.Millisecond)
	if open := cc.Open(); open > 4 {
		t.Errorf("open connections under burst = %d, want <= MaxConnsPerHost (4)", open)
	}
	close(block)
	wg.Wait()
	if dials := cc.Dials(); dials > 4 {
		t.Errorf("total dials = %d, want <= 4 (keep-alive reuse)", dials)
	}
}

// TestPooledClientReleasesIdleConns: after the idle timeout, pooled
// connections close and the open count returns to zero — dead destinations
// do not pin fds.
func TestPooledClientReleasesIdleConns(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	cc := &ConnCounter{}
	hc := NewPooledHTTPClient(PoolConfig{IdleConnTimeout: 50 * time.Millisecond, Counter: cc})
	client := &HTTPClient{HC: hc}
	env := soap.New(soap.V11)
	for i := 0; i < 3; i++ {
		if err := client.SendBytes(context.Background(), srv.URL, "text/xml", env.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if cc.Dials() != 1 {
		t.Errorf("sequential sends dialled %d times, want 1 (reuse)", cc.Dials())
	}
	deadline := time.Now().Add(5 * time.Second)
	for cc.Open() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never released: %d open", cc.Open())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConnCounterNilSafe: a nil counter reads as zero everywhere.
func TestConnCounterNilSafe(t *testing.T) {
	var cc *ConnCounter
	if cc.Open() != 0 || cc.Dials() != 0 {
		t.Error("nil ConnCounter must read zero")
	}
}

// TestConnCounterFailedDials is the refusing-listener regression for the
// accounting invariant: dials that fail must not increment the open count
// (a counted-but-never-closable connection would wedge Open() upward for
// every refused dial), and the pool must still serve live hosts afterwards.
func TestConnCounterFailedDials(t *testing.T) {
	// A listener that is closed immediately: the kernel refuses connections
	// on the port, but nothing else binds it during the test's lifetime.
	refusing, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + refusing.Addr().String() + "/sink"
	refusing.Close()

	cc := &ConnCounter{}
	hc := NewPooledHTTPClient(PoolConfig{MaxConnsPerHost: 4, Counter: cc})
	client := &HTTPClient{HC: hc}
	env := soap.New(soap.V11)

	const attempts = 8
	for i := 0; i < attempts; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := client.SendBytes(ctx, deadAddr, "text/xml", env.Marshal())
		cancel()
		if err == nil {
			t.Fatal("send to refusing listener succeeded")
		}
	}
	if open := cc.Open(); open != 0 {
		t.Errorf("open connections after %d refused dials = %d, want 0", attempts, open)
	}
	if dials := cc.Dials(); dials != 0 {
		t.Errorf("successful dials after refusals = %d, want 0", dials)
	}
	if de := cc.DialErrors(); de < attempts {
		t.Errorf("dial errors = %d, want >= %d", de, attempts)
	}

	// The refusals must not have wedged the per-host cap machinery: a live
	// host served by the same client still works and accounts cleanly.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	for i := 0; i < 3; i++ {
		if err := client.SendBytes(context.Background(), srv.URL, "text/xml", env.Marshal()); err != nil {
			t.Fatalf("send to live host after refusals: %v", err)
		}
	}
	if cc.Open() > 1 {
		t.Errorf("open connections to live host = %d, want <= 1", cc.Open())
	}
}

// TestSendRawAnyTwoXX: the raw sender accepts any 2xx and never parses the
// response body — a CloudEvents consumer replying 200 with a JSON receipt
// must count as delivered, and extra headers must reach the wire.
func TestSendRawAnyTwoXX(t *testing.T) {
	var gotCT, gotCE string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		gotCE = r.Header.Get("ce-id")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"accepted":true}`)) // not SOAP; must not be parsed
	}))
	defer srv.Close()
	client := &HTTPClient{}
	err := client.SendRaw(context.Background(), srv.URL, "application/cloudevents+json",
		map[string]string{"ce-id": "evt-1"}, []byte(`{"specversion":"1.0"}`))
	if err != nil {
		t.Fatalf("SendRaw: %v", err)
	}
	if gotCT != "application/cloudevents+json" || gotCE != "evt-1" {
		t.Fatalf("headers on the wire: Content-Type=%q ce-id=%q", gotCT, gotCE)
	}

	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer rejecting.Close()
	if err := client.SendRaw(context.Background(), rejecting.URL, "application/json", nil, []byte("{}")); err == nil {
		t.Fatal("4xx must fail the delivery")
	}
}
