package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/soap"
	"repro/internal/xmldom"
)

// Both bindings must satisfy the raw-bytes delivery interface — the
// render-once fan-out depends on it.
var (
	_ BytesClient = (*Loopback)(nil)
	_ BytesClient = (*HTTPClient)(nil)
)

func TestLoopbackSendBytes(t *testing.T) {
	lb := NewLoopback()
	var got string
	lb.Register("svc://sink", HandlerFunc(func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		got = req.FirstBody().Text()
		return nil, nil
	}))
	env := request("raw")
	if err := lb.SendBytes(context.Background(), "svc://sink", soap.V11.ContentType(), env.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got != "raw" {
		t.Errorf("handler saw %q, want %q", got, "raw")
	}
	if err := lb.SendBytes(context.Background(), "svc://nowhere", soap.V11.ContentType(), env.Marshal()); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("unknown address error = %v, want ErrNoEndpoint", err)
	}
}

func TestLoopbackSendBytesFaultsBecomeErrors(t *testing.T) {
	lb := NewLoopback()
	lb.Register("svc://fault", HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		return nil, soap.Faultf(soap.FaultSender, "no thanks")
	}))
	err := lb.SendBytes(context.Background(), "svc://fault", soap.V11.ContentType(), request("x").Marshal())
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("error = %v, want *soap.Fault", err)
	}
	if f.Reason != "no thanks" {
		t.Errorf("fault reason = %q", f.Reason)
	}
}

// TestHTTPSendBytesVerbatim pins the point of the raw path: the bytes the
// caller hands in are the bytes on the wire — no re-marshal, no rewrite.
func TestHTTPSendBytesVerbatim(t *testing.T) {
	payload := request("wire").Marshal()
	var gotBody []byte
	var gotCT string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotBody, _ = io.ReadAll(r.Body)
		gotCT = r.Header.Get("Content-Type")
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	c := &HTTPClient{}
	if err := c.SendBytes(context.Background(), srv.URL, soap.V11.ContentType(), payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBody, payload) {
		t.Errorf("wire bytes differ from caller's payload:\n got %q\nwant %q", gotBody, payload)
	}
	if gotCT != soap.V11.ContentType() {
		t.Errorf("content type = %q", gotCT)
	}
}

func TestHTTPSendBytesFault(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		return nil, soap.Faultf(soap.FaultReceiver, "boom")
	})))
	defer srv.Close()
	c := &HTTPClient{}
	err := c.SendBytes(context.Background(), srv.URL, soap.V11.ContentType(), request("x").Marshal())
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("error = %v, want *soap.Fault", err)
	}
}

// TestEnvelopeAppendMarshalIdentity: the pooled append form and Marshal
// agree byte-for-byte, envelope-level (the soap package has no transport
// dependency to host this check the other way round).
func TestEnvelopeAppendMarshalIdentity(t *testing.T) {
	env := request("identity & <escapes>")
	env.AddHeader(xmldom.Elem("urn:h", "H", "v"))
	want := env.Marshal()
	got := env.AppendMarshal([]byte("prefix:"))
	if string(got) != "prefix:"+string(want) {
		t.Errorf("AppendMarshal = %q, want prefix + %q", got, want)
	}
}
