package transport_test

// Federation rides on an extension SOAP header (wsmf:Relay) that the
// transport layer must carry verbatim over both delivery paths: the
// loopback's serialise/re-parse round trip and the HTTP client's raw-bytes
// post. A transport that dropped, reordered into the body, or re-namespaced
// extension headers would silently break loop suppression, so the
// guarantee gets its own wire-level test here rather than only an
// end-to-end one in internal/federation.

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/mediation"
	"repro/internal/soap"
	"repro/internal/transport"
	"repro/internal/xmldom"
)

// headerEcho captures the envelopes a transport delivers.
type headerEcho struct {
	got []*soap.Envelope
}

func (h *headerEcho) ServeSOAP(_ context.Context, env *soap.Envelope) (*soap.Envelope, error) {
	h.got = append(h.got, env)
	return nil, nil
}

func relayEnvelope(t *testing.T) (*soap.Envelope, *mediation.Relay) {
	t.Helper()
	env := soap.New(soap.V11)
	r := &mediation.Relay{Origin: "broker-α", ID: "urn:uuid:wsm-42", Hops: 3}
	env.AddHeader(r.Element())
	env.AddBody(xmldom.Elem("urn:test", "ev", "x"))
	return env, r
}

func assertRelaySurvived(t *testing.T, path string, envs []*soap.Envelope, want *mediation.Relay) {
	t.Helper()
	if len(envs) != 1 {
		t.Fatalf("%s: %d envelopes delivered, want 1", path, len(envs))
	}
	got, ok, err := mediation.ParseRelay(envs[0])
	if err != nil || !ok {
		t.Fatalf("%s: relay header lost in transit (ok=%v err=%v)", path, ok, err)
	}
	if got.Origin != want.Origin || got.ID != want.ID || got.Hops != want.Hops {
		t.Errorf("%s: relay = %+v, want %+v", path, got, want)
	}
}

// TestRelayHeaderSurvivesLoopbackBytes sends the serialised envelope over
// the loopback's raw-bytes path, which re-parses it before dispatch —
// exactly what a cached render template's stamped bytes go through.
func TestRelayHeaderSurvivesLoopbackBytes(t *testing.T) {
	lb := transport.NewLoopback()
	sink := &headerEcho{}
	lb.Register("svc://sink", sink)

	env, want := relayEnvelope(t)
	if err := lb.SendBytes(context.Background(), "svc://sink", soap.V11.ContentType(), env.Marshal()); err != nil {
		t.Fatalf("SendBytes: %v", err)
	}
	assertRelaySurvived(t, "loopback bytes", sink.got, want)
}

// TestRelayHeaderSurvivesHTTPBytes posts the bytes through the real HTTP
// stack: HTTPClient.SendBytes → net/http → NewHTTPHandler parse.
func TestRelayHeaderSurvivesHTTPBytes(t *testing.T) {
	sink := &headerEcho{}
	srv := httptest.NewServer(transport.NewHTTPHandler(sink))
	defer srv.Close()

	env, want := relayEnvelope(t)
	c := &transport.HTTPClient{}
	if err := c.SendBytes(context.Background(), srv.URL, soap.V11.ContentType(), env.Marshal()); err != nil {
		t.Fatalf("SendBytes: %v", err)
	}
	assertRelaySurvived(t, "http bytes", sink.got, want)
}

// TestRelayHeaderSurvivesEnvelopeSend covers the non-raw path (Client.Send
// with a parsed envelope) over HTTP for completeness.
func TestRelayHeaderSurvivesEnvelopeSend(t *testing.T) {
	sink := &headerEcho{}
	srv := httptest.NewServer(transport.NewHTTPHandler(sink))
	defer srv.Close()

	env, want := relayEnvelope(t)
	c := &transport.HTTPClient{}
	if err := c.Send(context.Background(), srv.URL, env); err != nil {
		t.Fatalf("Send: %v", err)
	}
	assertRelaySurvived(t, "http envelope", sink.got, want)
}
