// Package transport provides transport-independent SOAP message exchange
// with two bindings: an in-memory loopback and HTTP.
//
// Transport independence is one of the evolutionary shifts the paper's
// Table 3 records (CORBA and JMS are RPC-bound, OGSI is HTTP-bound, and
// the WS-* specifications are "transport independent"). The spec packages
// therefore program against the Client and Handler interfaces only; tests
// and benchmarks run over the loopback, while the daemons and examples
// bind the same services to HTTP.
package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/soap"
)

// maxEnvelopeBytes bounds inbound and outbound SOAP bodies. Anything
// larger is a hostile or broken peer, not a notification.
const maxEnvelopeBytes = 16 << 20

// Handler processes one inbound SOAP envelope. A nil response with nil
// error means the exchange is one-way (notification deliveries).
// Returning a *soap.Fault as the error produces a fault envelope on the
// wire; any other error becomes a generic receiver fault.
type Handler interface {
	ServeSOAP(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error)

// ServeSOAP implements Handler.
func (f HandlerFunc) ServeSOAP(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
	return f(ctx, req)
}

// Client sends SOAP envelopes to endpoint addresses.
type Client interface {
	// Call performs a request-response exchange. A SOAP fault in the
	// response is returned as a *soap.Fault error.
	Call(ctx context.Context, addr string, req *soap.Envelope) (*soap.Envelope, error)
	// Send performs a one-way exchange (fire a notification). Transport
	// errors and faults are reported; an empty response is success.
	Send(ctx context.Context, addr string, req *soap.Envelope) error
}

// BytesClient is the raw-bytes send path, implemented by clients that can
// put an already-serialised envelope on the wire without re-marshalling
// it. The broker's render-once fan-out stamps subscriber envelopes
// directly into bytes; handing those to the envelope-based Send would
// force a parse or a second marshal per delivery, so the delivery path
// type-asserts for this interface and sends the bytes as-is. The envelope
// path remains for callers that have no serialised form.
type BytesClient interface {
	// SendBytes performs a one-way exchange with a pre-serialised SOAP
	// envelope. contentType is the envelope version's MIME type.
	// Implementations must not retain body after returning: callers
	// recycle the buffer.
	SendBytes(ctx context.Context, addr, contentType string, body []byte) error
}

// RawSender is the non-SOAP send path for the modern front doors: a
// CloudEvents delivery is JSON (or bare binary-mode data) with extra
// protocol headers, any 2xx response is success, and the response body —
// whatever a cloud-native consumer chooses to reply — must not be parsed
// as a SOAP envelope. Implemented by HTTPClient; the loopback deliberately
// does not implement it (its handlers speak SOAP), so a broker without an
// HTTP-capable client rejects CloudEvents HTTP subscriptions up front.
type RawSender interface {
	// SendRaw performs a one-way exchange with an arbitrary payload.
	// header entries are set on the request after Content-Type.
	// Implementations must not retain body after returning.
	SendRaw(ctx context.Context, addr, contentType string, header map[string]string, body []byte) error
}

// ErrNoEndpoint reports a send to an unregistered loopback address or an
// unreachable HTTP endpoint.
var ErrNoEndpoint = errors.New("transport: no endpoint at address")

// ErrResponseTooLarge reports an HTTP response body exceeding the envelope
// size limit. Earlier revisions silently truncated at the limit and the
// failure surfaced as a baffling XML parse error deep in the caller; the
// over-read is now detected and named.
var ErrResponseTooLarge = errors.New("transport: response exceeds envelope size limit")

// faultOrError converts a handler error into a fault envelope so every
// binding produces identical wire behaviour.
func faultOrError(err error, v soap.Version) *soap.Envelope {
	var f *soap.Fault
	if !errors.As(err, &f) {
		f = &soap.Fault{Code: soap.FaultReceiver, Reason: err.Error()}
	}
	return f.Envelope(v)
}

// responseError turns a fault response envelope into an error.
func responseError(env *soap.Envelope) (*soap.Envelope, error) {
	if env == nil {
		return nil, nil
	}
	if f, ok := soap.AsFault(env); ok {
		return env, f
	}
	return env, nil
}

// --- Loopback binding ---

// Loopback is an in-memory transport: a registry of address → Handler.
// Exchanges are synchronous function calls, which makes it both the unit-
// test substrate and the "RPC, intranet-scale" simulation used when the
// benchmark harness compares the WS stacks against the CORBA-era baselines.
type Loopback struct {
	mu        sync.RWMutex
	endpoints map[string]Handler
}

// NewLoopback returns an empty loopback network.
func NewLoopback() *Loopback {
	return &Loopback{endpoints: map[string]Handler{}}
}

// Register binds a handler to an address. Registering nil removes the
// binding (simulates a dead consumer for failure-injection tests).
func (l *Loopback) Register(addr string, h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if h == nil {
		delete(l.endpoints, addr)
		return
	}
	l.endpoints[addr] = h
}

// Lookup returns the handler bound to addr.
func (l *Loopback) Lookup(addr string) (Handler, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h, ok := l.endpoints[addr]
	return h, ok
}

// Call implements Client. The envelope is serialised and re-parsed so that
// loopback exchanges exercise the same wire format as HTTP ones — format
// bugs cannot hide behind shared pointers.
func (l *Loopback) Call(ctx context.Context, addr string, req *soap.Envelope) (*soap.Envelope, error) {
	h, ok := l.Lookup(addr)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEndpoint, addr)
	}
	wire, err := soap.ParseBytes(req.Marshal())
	if err != nil {
		return nil, fmt.Errorf("transport: request serialisation: %w", err)
	}
	resp, err := h.ServeSOAP(ctx, wire)
	if err != nil {
		return responseError(faultOrError(err, req.Version))
	}
	if resp == nil {
		return nil, nil
	}
	back, err := soap.ParseBytes(resp.Marshal())
	if err != nil {
		return nil, fmt.Errorf("transport: response serialisation: %w", err)
	}
	return responseError(back)
}

// Send implements Client.
func (l *Loopback) Send(ctx context.Context, addr string, req *soap.Envelope) error {
	_, err := l.Call(ctx, addr, req)
	return err
}

// SendBytes implements BytesClient: the pre-serialised envelope is parsed
// once (the same wire-format exercise Call performs) and handed to the
// bound handler. A fault response becomes the returned error.
func (l *Loopback) SendBytes(ctx context.Context, addr, _ string, body []byte) error {
	h, ok := l.Lookup(addr)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoEndpoint, addr)
	}
	wire, err := soap.ParseBytes(body)
	if err != nil {
		return fmt.Errorf("transport: request serialisation: %w", err)
	}
	resp, err := h.ServeSOAP(ctx, wire)
	if err != nil {
		_, err = responseError(faultOrError(err, wire.Version))
		return err
	}
	if resp == nil {
		return nil
	}
	back, err := soap.ParseBytes(resp.Marshal())
	if err != nil {
		return fmt.Errorf("transport: response serialisation: %w", err)
	}
	_, err = responseError(back)
	return err
}

// --- HTTP binding ---

// NewHTTPHandler exposes a SOAP Handler at an HTTP endpoint. Faults map to
// HTTP 500 per the SOAP HTTP binding; one-way exchanges return 202.
// Request bodies are capped via http.MaxBytesReader (oversized requests
// get 413 and a closed connection, not a silently truncated parse), and a
// request context that dies mid-exchange aborts without writing a
// response the peer will never read.
func NewHTTPHandler(h Handler) http.Handler {
	return NewHTTPHandlerObs(h, nil)
}

// NewHTTPHandlerObs is NewHTTPHandler with transport instrumentation:
// oversized requests count into the oversize counter, handler faults into
// the fault counter. A nil *obs.TransportMetrics disables both at the cost
// of a nil check.
func NewHTTPHandlerObs(h Handler, m *obs.TransportMetrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEnvelopeBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				m.Oversize()
				http.Error(w, "SOAP envelope exceeds size limit", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "read error", http.StatusBadRequest)
			return
		}
		env, err := soap.ParseBytes(body)
		if err != nil {
			m.Fault()
			writeEnvelope(w, faultOrError(soap.Faultf(soap.FaultSender, "malformed envelope: %v", err), soap.V11), http.StatusBadRequest)
			return
		}
		resp, err := h.ServeSOAP(r.Context(), env)
		if cerr := r.Context().Err(); cerr != nil {
			// Client gone (disconnect or deadline): any bytes written now
			// are wasted and a 500 would mislabel the handler's work.
			return
		}
		if err != nil {
			m.Fault()
			writeEnvelope(w, faultOrError(err, env.Version), http.StatusInternalServerError)
			return
		}
		if resp == nil {
			w.WriteHeader(http.StatusAccepted)
			return
		}
		status := http.StatusOK
		if _, isFault := soap.AsFault(resp); isFault {
			m.Fault()
			status = http.StatusInternalServerError
		}
		writeEnvelope(w, resp, status)
	})
}

func writeEnvelope(w http.ResponseWriter, env *soap.Envelope, status int) {
	w.Header().Set("Content-Type", env.Version.ContentType())
	w.WriteHeader(status)
	w.Write(env.Marshal())
}

// HTTPClient sends envelopes over HTTP.
type HTTPClient struct {
	// HC is the underlying client; http.DefaultClient when nil.
	HC *http.Client
	// Timeout bounds an exchange when the caller's context carries no
	// deadline of its own (the retry layer's per-attempt timeouts always
	// win). Zero means no default bound.
	Timeout time.Duration
	// MaxResponseBytes caps the response body; maxEnvelopeBytes when zero.
	// A response exceeding the cap fails with ErrResponseTooLarge instead
	// of being truncated into a parse error.
	MaxResponseBytes int64
	// Obs, when set, records send latency and fault/over-limit counts.
	Obs *obs.TransportMetrics
}

func (c *HTTPClient) client() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

func (c *HTTPClient) maxResponse() int64 {
	if c.MaxResponseBytes > 0 {
		return c.MaxResponseBytes
	}
	return maxEnvelopeBytes
}

// drainClose finishes with a response body so the underlying keep-alive
// connection can be reused: net/http only returns a connection to the pool
// once the body is read to EOF. The drain is bounded — a peer still
// streaming multiples of the envelope limit gets its connection dropped
// rather than consumed.
func drainClose(body io.ReadCloser, limit int64) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, limit))
	body.Close()
}

// Call implements Client over HTTP POST.
func (c *HTTPClient) Call(ctx context.Context, addr string, req *soap.Envelope) (*soap.Envelope, error) {
	return c.post(ctx, addr, req.Version.ContentType(), req.Marshal())
}

// SendBytes implements BytesClient: the pre-serialised envelope goes onto
// the wire as-is — no re-marshal of a message the broker already
// serialised (the delivery path's double-marshal, now gone).
func (c *HTTPClient) SendBytes(ctx context.Context, addr, contentType string, body []byte) error {
	_, err := c.post(ctx, addr, contentType, body)
	return err
}

// post is the shared HTTP exchange: POST the payload, enforce the response
// size limit, parse any response envelope.
func (c *HTTPClient) post(ctx context.Context, addr, contentType string, payload []byte) (*soap.Envelope, error) {
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return nil, fmt.Errorf("transport: address %q is not an HTTP endpoint", addr)
	}
	if _, ok := ctx.Deadline(); !ok && c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", contentType)
	hreq.Header.Set("SOAPAction", `""`)
	limit := c.maxResponse()
	t0 := c.Obs.Now()
	hresp, err := c.client().Do(hreq)
	if err != nil {
		c.Obs.Fault()
		return nil, fmt.Errorf("%w: %s: %v", ErrNoEndpoint, addr, err)
	}
	// Read to EOF (or the drain bound) before closing so the keep-alive
	// connection returns to the pool instead of being torn down.
	defer drainClose(hresp.Body, limit)
	// A 4xx/5xx with no envelope to explain it is still a failure: an
	// empty-bodied 500 used to fall through the ContentLength == 0 fast
	// path and read as a successful delivery, which hid consumer errors
	// from retry accounting (and starves the AIMD window controller of
	// the very signal it backs off on).
	statusErr := func() (*soap.Envelope, error) {
		c.Obs.Fault()
		return nil, fmt.Errorf("transport: HTTP %d from %s", hresp.StatusCode, addr)
	}
	if hresp.StatusCode == http.StatusAccepted || hresp.ContentLength == 0 {
		if hresp.StatusCode >= 400 {
			return statusErr()
		}
		c.Obs.ObserveSend(c.Obs.Now().Sub(t0))
		return nil, nil
	}
	// Read one byte past the limit: a full read of limit+1 bytes proves the
	// response is oversized, where the old io.LimitReader(body, limit)
	// silently truncated and handed the parser half an envelope.
	body, err := io.ReadAll(io.LimitReader(hresp.Body, limit+1))
	if err != nil {
		c.Obs.Fault()
		return nil, err
	}
	if int64(len(body)) > limit {
		c.Obs.Oversize()
		return nil, fmt.Errorf("%w: %s sent more than %d bytes (HTTP %d)",
			ErrResponseTooLarge, addr, limit, hresp.StatusCode)
	}
	c.Obs.ObserveSend(c.Obs.Now().Sub(t0))
	if len(bytes.TrimSpace(body)) == 0 {
		if hresp.StatusCode >= 400 {
			return statusErr()
		}
		return nil, nil
	}
	env, err := soap.ParseBytes(body)
	if err != nil {
		if hresp.StatusCode >= 400 {
			// A non-SOAP error page (plain-text 500, proxy HTML): the
			// status code is the verdict, the parse failure is incidental.
			return statusErr()
		}
		c.Obs.Fault()
		return nil, fmt.Errorf("transport: bad response from %s (HTTP %d): %w", addr, hresp.StatusCode, err)
	}
	return responseError(env)
}

// Send implements Client.
func (c *HTTPClient) Send(ctx context.Context, addr string, req *soap.Envelope) error {
	_, err := c.Call(ctx, addr, req)
	return err
}

// SendRaw implements RawSender: POST an arbitrary payload, treat any 2xx
// as success, never parse the response body. CloudEvents consumers reply
// with whatever they like (empty, JSON receipts, plain text); only the
// status code carries the delivery verdict.
func (c *HTTPClient) SendRaw(ctx context.Context, addr, contentType string, header map[string]string, body []byte) error {
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return fmt.Errorf("transport: address %q is not an HTTP endpoint", addr)
	}
	if _, ok := ctx.Deadline(); !ok && c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", contentType)
	for k, v := range header {
		hreq.Header.Set(k, v)
	}
	t0 := c.Obs.Now()
	hresp, err := c.client().Do(hreq)
	if err != nil {
		c.Obs.Fault()
		return fmt.Errorf("%w: %s: %v", ErrNoEndpoint, addr, err)
	}
	defer drainClose(hresp.Body, c.maxResponse())
	if hresp.StatusCode < 200 || hresp.StatusCode > 299 {
		c.Obs.Fault()
		return fmt.Errorf("transport: %s rejected delivery with HTTP %d", addr, hresp.StatusCode)
	}
	c.Obs.ObserveSend(c.Obs.Now().Sub(t0))
	return nil
}
