package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/soap"
	"repro/internal/xmldom"
)

func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		resp := soap.New(req.Version)
		resp.AddBody(xmldom.Elem("urn:t", "Echo", req.FirstBody().Text()))
		return resp, nil
	})
}

func request(text string) *soap.Envelope {
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Input", text))
	return env
}

func TestLoopbackCall(t *testing.T) {
	lb := NewLoopback()
	lb.Register("svc://echo", echoHandler())
	resp, err := lb.Call(context.Background(), "svc://echo", request("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.FirstBody().Text(); got != "hello" {
		t.Errorf("echo = %q", got)
	}
}

func TestLoopbackUnknownAddress(t *testing.T) {
	lb := NewLoopback()
	_, err := lb.Call(context.Background(), "svc://nope", request("x"))
	if !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("err = %v, want ErrNoEndpoint", err)
	}
	if err := lb.Send(context.Background(), "svc://nope", request("x")); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("send err = %v", err)
	}
}

func TestLoopbackDeregister(t *testing.T) {
	lb := NewLoopback()
	lb.Register("svc://a", echoHandler())
	lb.Register("svc://a", nil)
	if _, ok := lb.Lookup("svc://a"); ok {
		t.Error("deregistered endpoint still present")
	}
}

func TestLoopbackFaultsBecomeErrors(t *testing.T) {
	lb := NewLoopback()
	lb.Register("svc://faulty", HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		return nil, soap.Faultf(soap.FaultSender, "bad input")
	}))
	resp, err := lb.Call(context.Background(), "svc://faulty", request("x"))
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Code != soap.FaultSender || !strings.Contains(f.Reason, "bad input") {
		t.Errorf("fault = %+v", f)
	}
	// The fault envelope is also returned for callers that inspect it.
	if resp == nil {
		t.Error("fault envelope should accompany the error")
	}
}

func TestLoopbackGenericErrorsBecomeReceiverFaults(t *testing.T) {
	lb := NewLoopback()
	lb.Register("svc://broken", HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		return nil, errors.New("disk on fire")
	}))
	_, err := lb.Call(context.Background(), "svc://broken", request("x"))
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultReceiver {
		t.Errorf("err = %v", err)
	}
}

func TestLoopbackOneWay(t *testing.T) {
	var delivered atomic.Int32
	lb := NewLoopback()
	lb.Register("svc://sink", HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		delivered.Add(1)
		return nil, nil
	}))
	if err := lb.Send(context.Background(), "svc://sink", request("n")); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != 1 {
		t.Error("notification not delivered")
	}
}

func TestLoopbackExercisesWireFormat(t *testing.T) {
	// The handler must see a re-parsed envelope, not the caller's pointer.
	orig := request("x")
	lb := NewLoopback()
	lb.Register("svc://check", HandlerFunc(func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		if req == orig || req.FirstBody() == orig.FirstBody() {
			t.Error("handler received caller's envelope pointer")
		}
		return nil, nil
	}))
	lb.Call(context.Background(), "svc://check", orig)
}

func TestHTTPBindingRoundTrip(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	defer srv.Close()
	c := &HTTPClient{}
	resp, err := c.Call(context.Background(), srv.URL, request("over http"))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.FirstBody().Text(); got != "over http" {
		t.Errorf("echo = %q", got)
	}
}

func TestHTTPBindingFault(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		return nil, soap.Faultf(soap.FaultSender, "nope")
	})))
	defer srv.Close()
	c := &HTTPClient{}
	_, err := c.Call(context.Background(), srv.URL, request("x"))
	var f *soap.Fault
	if !errors.As(err, &f) || f.Reason != "nope" {
		t.Errorf("err = %v", err)
	}
	// Wire-level: the status must be 500 per the SOAP HTTP binding.
	hr, _ := http.Post(srv.URL, "text/xml", strings.NewReader(string(request("x").Marshal())))
	if hr.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", hr.StatusCode)
	}
	hr.Body.Close()
}

func TestHTTPBindingOneWay(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(HandlerFunc(func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
		return nil, nil
	})))
	defer srv.Close()
	c := &HTTPClient{}
	if err := c.Send(context.Background(), srv.URL, request("fire and forget")); err != nil {
		t.Fatal(err)
	}
	// Wire-level 202.
	hr, _ := http.Post(srv.URL, "text/xml", strings.NewReader(string(request("x").Marshal())))
	if hr.StatusCode != http.StatusAccepted {
		t.Errorf("status = %d, want 202", hr.StatusCode)
	}
	hr.Body.Close()
}

func TestHTTPBindingRejectsGet(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	defer srv.Close()
	hr, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", hr.StatusCode)
	}
}

func TestHTTPBindingMalformedRequest(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	defer srv.Close()
	hr, err := http.Post(srv.URL, "text/xml", strings.NewReader("this is not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", hr.StatusCode)
	}
}

func TestHTTPClientBadAddress(t *testing.T) {
	c := &HTTPClient{}
	if _, err := c.Call(context.Background(), "svc://not-http", request("x")); err == nil {
		t.Error("non-HTTP address accepted")
	}
	if _, err := c.Call(context.Background(), "http://127.0.0.1:1", request("x")); !errors.Is(err, ErrNoEndpoint) {
		t.Errorf("unreachable endpoint err = %v", err)
	}
}
