package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/soap"
	"repro/internal/xmldom"
)

// TestHTTPHandlerRejectsOversizedBody pins the MaxBytesReader guard: a
// request past the envelope cap gets 413, not a truncated parse error.
func TestHTTPHandlerRejectsOversizedBody(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	defer srv.Close()

	big := bytes.Repeat([]byte("x"), maxEnvelopeBytes+1)
	resp, err := http.Post(srv.URL, soap.V11.ContentType(), bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestHTTPHandlerHonoursRequestCancellation pins the bugfix: a handler
// outliving its request context must not write a response to the departed
// client.
func TestHTTPHandlerHonoursRequestCancellation(t *testing.T) {
	release := make(chan struct{})
	served := make(chan error, 1)
	h := HandlerFunc(func(ctx context.Context, _ *soap.Envelope) (*soap.Envelope, error) {
		<-release
		// Give the server a moment to surface the client's departure.
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
		}
		served <- ctx.Err()
		resp := soap.New(soap.V11)
		resp.AddBody(xmldom.Elem("urn:t", "Late", "too late"))
		return resp, nil
	})
	srv := httptest.NewServer(NewHTTPHandler(h))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL, bytes.NewReader(env.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", soap.V11.ContentType())
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		done <- err
	}()

	// Abandon the exchange while the handler is still working, then let
	// the handler finish against a dead request context.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("client call succeeded after cancellation")
	}
	close(release)
	if err := <-served; err == nil {
		t.Fatal("handler context survived client cancellation")
	}
}

// TestHTTPClientDefaultTimeout verifies HTTPClient.Timeout bounds an
// exchange whose caller context has no deadline of its own, and that a
// caller deadline wins when present.
func TestHTTPClientDefaultTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))

	// Default timeout applies: a hanging server fails the exchange. The
	// handler blocks on a test-owned channel (closed before server
	// shutdown) because a dropped client alone does not unblock it.
	stop := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-stop
	}))
	defer hang.Close()
	defer close(stop)
	c := &HTTPClient{Timeout: 50 * time.Millisecond}
	start := time.Now()
	err := c.Send(context.Background(), hang.URL, env)
	if err == nil {
		t.Fatal("send to hanging server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("default timeout did not bound the exchange (%v)", elapsed)
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want a deadline error", err)
	}

	// A caller deadline shorter than the hang also wins (no double wrap).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	long := &HTTPClient{Timeout: time.Hour}
	start = time.Now()
	if err := long.Send(ctx, hang.URL, env); err == nil {
		t.Fatal("send with caller deadline succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("caller deadline ignored (%v)", elapsed)
	}

	// Healthy exchanges still complete under the default timeout.
	if err := c.Send(context.Background(), srv.URL, env); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPClientRejectsOversizedResponse is the regression test for the
// silent-truncation bug: a response past the envelope cap used to be cut
// at the limit by io.LimitReader and surface as an XML parse error. It
// must now fail with ErrResponseTooLarge. The cap is lowered via
// MaxResponseBytes so the test does not stream 16MB.
func TestHTTPClientRejectsOversizedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", soap.V11.ContentType())
		// A response that starts as a valid envelope but exceeds the cap:
		// truncation at the limit would leave a syntactically plausible
		// prefix, which is exactly how the old code produced confusing
		// parse errors instead of a size error.
		w.Write([]byte("<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\"><soapenv:Body>"))
		w.Write(bytes.Repeat([]byte("y"), 4096))
		w.Write([]byte("</soapenv:Body></soapenv:Envelope>"))
	}))
	defer srv.Close()

	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))
	c := &HTTPClient{MaxResponseBytes: 1024}
	_, err := c.Call(context.Background(), srv.URL, env)
	if err == nil {
		t.Fatal("oversized response accepted")
	}
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("err = %v, want ErrResponseTooLarge", err)
	}

	// The same body under a permissive cap parses fine — the error above is
	// about size, not content.
	ok := &HTTPClient{}
	if _, err := ok.Call(context.Background(), srv.URL, env); err != nil {
		t.Fatalf("response under the cap failed: %v", err)
	}
}

// TestHTTPClientReusesConnections pins drain-before-close: bodies read to
// EOF return their keep-alive connection to the pool, so a burst of
// sequential calls should not open one TCP connection per call.
func TestHTTPClientReusesConnections(t *testing.T) {
	var mu sync.Mutex
	conns := map[string]bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns[r.RemoteAddr] = true
		mu.Unlock()
		io.Copy(io.Discard, r.Body)
		resp := soap.New(soap.V11)
		resp.AddBody(xmldom.Elem("urn:t", "Pong", "ok"))
		w.Header().Set("Content-Type", soap.V11.ContentType())
		w.Write(resp.Marshal())
	}))
	defer srv.Close()

	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))
	c := &HTTPClient{HC: &http.Client{Transport: &http.Transport{}}}
	for i := 0; i < 8; i++ {
		if _, err := c.Call(context.Background(), srv.URL, env); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	n := len(conns)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("8 sequential calls used %d connections, want 1 (body not drained before close?)", n)
	}
}

// TestTransportMetrics verifies the obs hooks on both sides of the HTTP
// binding: send latency observed, faults and over-limit rejections counted.
func TestTransportMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewTransportMetrics(reg, "test")

	srv := httptest.NewServer(NewHTTPHandlerObs(echoHandler(), m))
	defer srv.Close()

	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))
	c := &HTTPClient{Obs: m}
	if _, err := c.Call(context.Background(), srv.URL, env); err != nil {
		t.Fatal(err)
	}
	if got := m.SendSnapshot().Total; got != 1 {
		t.Errorf("send latency observations = %d, want 1", got)
	}

	// Oversized inbound request counts an oversize.
	big := bytes.Repeat([]byte("x"), maxEnvelopeBytes+1)
	resp, err := http.Post(srv.URL, soap.V11.ContentType(), bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := m.Oversizes(); got != 1 {
		t.Errorf("oversize count = %d, want 1", got)
	}

	// Unreachable endpoint counts a fault.
	bad := &HTTPClient{Obs: m, Timeout: 250 * time.Millisecond}
	if err := bad.Send(context.Background(), "http://127.0.0.1:1/none", env); err == nil {
		t.Fatal("send to dead endpoint succeeded")
	}
	if got := m.Faults(); got == 0 {
		t.Error("dead-endpoint send did not count a fault")
	}
}
