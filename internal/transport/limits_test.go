package transport

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/soap"
	"repro/internal/xmldom"
)

// TestHTTPHandlerRejectsOversizedBody pins the MaxBytesReader guard: a
// request past the envelope cap gets 413, not a truncated parse error.
func TestHTTPHandlerRejectsOversizedBody(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(echoHandler()))
	defer srv.Close()

	big := bytes.Repeat([]byte("x"), maxEnvelopeBytes+1)
	resp, err := http.Post(srv.URL, soap.V11.ContentType(), bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestHTTPHandlerHonoursRequestCancellation pins the bugfix: a handler
// outliving its request context must not write a response to the departed
// client.
func TestHTTPHandlerHonoursRequestCancellation(t *testing.T) {
	release := make(chan struct{})
	served := make(chan error, 1)
	h := HandlerFunc(func(ctx context.Context, _ *soap.Envelope) (*soap.Envelope, error) {
		<-release
		// Give the server a moment to surface the client's departure.
		select {
		case <-ctx.Done():
		case <-time.After(5 * time.Second):
		}
		served <- ctx.Err()
		resp := soap.New(soap.V11)
		resp.AddBody(xmldom.Elem("urn:t", "Late", "too late"))
		return resp, nil
	})
	srv := httptest.NewServer(NewHTTPHandler(h))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL, bytes.NewReader(env.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", soap.V11.ContentType())
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		done <- err
	}()

	// Abandon the exchange while the handler is still working, then let
	// the handler finish against a dead request context.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("client call succeeded after cancellation")
	}
	close(release)
	if err := <-served; err == nil {
		t.Fatal("handler context survived client cancellation")
	}
}

// TestHTTPClientDefaultTimeout verifies HTTPClient.Timeout bounds an
// exchange whose caller context has no deadline of its own, and that a
// caller deadline wins when present.
func TestHTTPClientDefaultTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:t", "Ping", "hi"))

	// Default timeout applies: a hanging server fails the exchange. The
	// handler blocks on a test-owned channel (closed before server
	// shutdown) because a dropped client alone does not unblock it.
	stop := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-stop
	}))
	defer hang.Close()
	defer close(stop)
	c := &HTTPClient{Timeout: 50 * time.Millisecond}
	start := time.Now()
	err := c.Send(context.Background(), hang.URL, env)
	if err == nil {
		t.Fatal("send to hanging server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("default timeout did not bound the exchange (%v)", elapsed)
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want a deadline error", err)
	}

	// A caller deadline shorter than the hang also wins (no double wrap).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	long := &HTTPClient{Timeout: time.Hour}
	start = time.Now()
	if err := long.Send(ctx, hang.URL, env); err == nil {
		t.Fatal("send with caller deadline succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("caller deadline ignored (%v)", elapsed)
	}

	// Healthy exchanges still complete under the default timeout.
	if err := c.Send(context.Background(), srv.URL, env); err != nil {
		t.Fatal(err)
	}
}
