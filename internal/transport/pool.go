package transport

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ConnCounter tracks connection (and therefore file-descriptor) usage of a
// pooled HTTP client: every dial and every close is counted, so the number
// of open sockets is observable at any instant. The load harness's fd
// regression test and the wsm_dest_conns_open gauge both read it.
//
// Accounting invariant: a dial is counted only when it succeeds — a failed
// dial opens no socket, so it must not move Open(). Counting attempts
// instead of successes would leave Open() permanently inflated by every
// refused connection (the count could never come back down: there is no
// conn whose Close would decrement it), which would read as a slow fd leak
// on any broker with flapping destinations. Failed attempts are tallied
// separately in DialErrors. Pinned by TestConnCounterFailedDials.
type ConnCounter struct {
	dials      atomic.Int64
	closes     atomic.Int64
	dialErrors atomic.Int64
}

// Dials reports total connections ever opened.
func (c *ConnCounter) Dials() int64 {
	if c == nil {
		return 0
	}
	return c.dials.Load()
}

// DialErrors reports dial attempts that failed (no socket was opened).
func (c *ConnCounter) DialErrors() int64 {
	if c == nil {
		return 0
	}
	return c.dialErrors.Load()
}

// Open reports currently open connections (dials minus closes).
func (c *ConnCounter) Open() int64 {
	if c == nil {
		return 0
	}
	return c.dials.Load() - c.closes.Load()
}

// countedConn decrements its counter exactly once on Close — net/http may
// close a pooled connection from more than one path.
type countedConn struct {
	net.Conn
	cc   *ConnCounter
	once sync.Once
}

func (c *countedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() { c.cc.closes.Add(1) })
	return err
}

// DefaultMaxConnsPerHost is the per-host connection budget applied when
// PoolConfig.MaxConnsPerHost is zero. Exported because the destination
// writer's in-flight window must clamp to the same budget — a window wider
// than the connection cap would just queue inside the transport while the
// ConnCounter kept reading full.
const DefaultMaxConnsPerHost = 16

// PoolConfig tunes NewPooledHTTPClient. Zero values select defaults chosen
// for a broker fanning out to a few hundred destination hosts.
type PoolConfig struct {
	// MaxIdleConnsPerHost caps idle keep-alive connections kept per host.
	// Default 8. (http.DefaultClient keeps only 2, which under concurrent
	// fan-out to one host dials and discards connections continuously.)
	MaxIdleConnsPerHost int
	// MaxConnsPerHost caps total concurrent connections per host — the
	// bound that keeps one slow destination from eating file descriptors.
	// Default 16. (http.DefaultTransport has NO per-host connection cap:
	// every blocked sender dials another socket, and a 100k-subscriber
	// fan-out to a stalled host exhausts the fd table. That unbounded
	// growth is the leak this pool exists to fix.)
	MaxConnsPerHost int
	// MaxIdleConns caps idle connections across all hosts. Default 512.
	MaxIdleConns int
	// IdleConnTimeout reaps idle connections. Default 30s (down from the
	// DefaultTransport's 90s: dead destinations release their fds sooner).
	IdleConnTimeout time.Duration
	// Timeout is the whole-request bound on the returned client. Zero
	// means no client-level bound (callers pass context deadlines).
	Timeout time.Duration
	// Counter, when non-nil, counts every dial and close.
	Counter *ConnCounter
}

func (c PoolConfig) maxIdlePerHost() int {
	if c.MaxIdleConnsPerHost > 0 {
		return c.MaxIdleConnsPerHost
	}
	return 8
}

func (c PoolConfig) maxPerHost() int {
	if c.MaxConnsPerHost > 0 {
		return c.MaxConnsPerHost
	}
	return DefaultMaxConnsPerHost
}

func (c PoolConfig) maxIdle() int {
	if c.MaxIdleConns > 0 {
		return c.MaxIdleConns
	}
	return 512
}

func (c PoolConfig) idleTimeout() time.Duration {
	if c.IdleConnTimeout > 0 {
		return c.IdleConnTimeout
	}
	return 30 * time.Second
}

// NewPooledHTTPClient builds an *http.Client whose transport is tuned for
// many distinct destination hosts: bounded connections per host, a global
// idle cap, a shortened idle timeout, and optional dial/close accounting.
// Hand it to HTTPClient.HC (and the destwriter pool's send path) in place
// of http.DefaultClient.
func NewPooledHTTPClient(cfg PoolConfig) *http.Client {
	dialer := &net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}
	tr := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			conn, err := dialer.DialContext(ctx, network, addr)
			if cfg.Counter == nil {
				return conn, err
			}
			if err != nil {
				// No socket was opened: count the failure, leave the
				// open-connection accounting untouched.
				cfg.Counter.dialErrors.Add(1)
				return conn, err
			}
			cfg.Counter.dials.Add(1)
			return &countedConn{Conn: conn, cc: cfg.Counter}, nil
		},
		MaxIdleConns:        cfg.maxIdle(),
		MaxIdleConnsPerHost: cfg.maxIdlePerHost(),
		MaxConnsPerHost:     cfg.maxPerHost(),
		IdleConnTimeout:     cfg.idleTimeout(),
	}
	return &http.Client{Transport: tr, Timeout: cfg.Timeout}
}
