// Package xpath implements an XPath 1.0 subset evaluator over xmldom trees.
//
// Both WS-Eventing and WS-Notification use XPath as their content-filter
// dialect ("any expression that evaluates to a Boolean", §V.3 of the paper,
// with XPath 1.0 the default in WS-Eventing and the MessageContent dialect
// in WS-Notification). The subset covers the expression class those filters
// need: full location paths with the common axes, predicates, the four
// value types with standard coercions, and the XPath 1.0 core function
// library. Not implemented: namespace axis, comment()/processing-instruction()
// node tests (our DOM discards those node kinds), and variable references.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokLiteral  // quoted string
	tokName     // NCName or QName (may be operator name, disambiguated by parser context)
	tokStar     // *
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokDot      // .
	tokDotDot   // ..
	tokAt       // @
	tokComma    // ,
	tokColonColon
	tokSlash         // /
	tokSlashSlash    // //
	tokPipe          // |
	tokPlus          // +
	tokMinus         // -
	tokEq            // =
	tokNeq           // !=
	tokLt            // <
	tokLte           // <=
	tokGt            // >
	tokGte           // >=
	tokNameColonStar // prefix:*
	tokMultiply      // * in operator position
	tokOpName        // and / or / div / mod in operator position
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

// operandFollows implements the XPath 1.0 lexical disambiguation rule
// (§3.7): after no token, or after '@', '::', '(', '[', ',' or an operator,
// the next '*' is a wildcard and the next NCName is a name test or function
// name; otherwise '*' is the multiply operator and "and"/"or"/"div"/"mod"
// are operator names.
func operandFollows(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	switch toks[len(toks)-1].kind {
	case tokAt, tokColonColon, tokLParen, tokLBracket, tokComma,
		tokSlash, tokSlashSlash, tokPipe, tokPlus, tokMinus,
		tokEq, tokNeq, tokLt, tokLte, tokGt, tokGte,
		tokMultiply, tokOpName:
		return true
	}
	return false
}

// lex tokenises the whole expression up front; XPath expressions in
// subscription filters are short, so there is no need to stream.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '@':
			toks = append(toks, token{tokAt, "@", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '|':
			toks = append(toks, token{tokPipe, "|", i})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case c == '-':
			toks = append(toks, token{tokMinus, "-", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("xpath: unexpected '!' at offset %d", i)
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokLte, "<=", i})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokGte, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '/':
			if i+1 < n && src[i+1] == '/' {
				toks = append(toks, token{tokSlashSlash, "//", i})
				i += 2
			} else {
				toks = append(toks, token{tokSlash, "/", i})
				i++
			}
		case c == ':':
			if i+1 < n && src[i+1] == ':' {
				toks = append(toks, token{tokColonColon, "::", i})
				i += 2
			} else {
				return nil, fmt.Errorf("xpath: unexpected ':' at offset %d", i)
			}
		case c == '*':
			if operandFollows(toks) {
				toks = append(toks, token{tokStar, "*", i})
			} else {
				toks = append(toks, token{tokMultiply, "*", i})
			}
			i++
		case c == '.':
			if i+1 < n && src[i+1] == '.' {
				toks = append(toks, token{tokDotDot, "..", i})
				i += 2
			} else if i+1 < n && isDigit(src[i+1]) {
				start := i
				i++
				for i < n && isDigit(src[i]) {
					i++
				}
				toks = append(toks, token{tokNumber, src[start:i], start})
			} else {
				toks = append(toks, token{tokDot, ".", i})
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := strings.IndexByte(src[i+1:], quote)
			if j < 0 {
				return nil, fmt.Errorf("xpath: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{tokLiteral, src[i+1 : i+1+j], i})
			i += j + 2
		case isDigit(c):
			start := i
			for i < n && isDigit(src[i]) {
				i++
			}
			if i < n && src[i] == '.' {
				i++
				for i < n && isDigit(src[i]) {
					i++
				}
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case isNameStart(rune(c)):
			start := i
			i = scanNCName(src, i)
			name := src[start:i]
			// QName or prefix:* forms. A "::" after the name is an axis
			// specifier, so a single ':' must be a QName separator.
			if i < n && src[i] == ':' && !(i+1 < n && src[i+1] == ':') {
				if i+1 < n && src[i+1] == '*' {
					toks = append(toks, token{tokNameColonStar, name + ":*", start})
					i += 2
					break
				}
				if i+1 < n && isNameStart(rune(src[i+1])) {
					j := scanNCName(src, i+1)
					name = src[start:j]
					i = j
				} else {
					return nil, fmt.Errorf("xpath: malformed QName at offset %d", start)
				}
			}
			kind := tokName
			switch name {
			case "and", "or", "div", "mod":
				if !operandFollows(toks) {
					kind = tokOpName
				}
			}
			toks = append(toks, token{kind, name, start})
		default:
			return nil, fmt.Errorf("xpath: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// scanNCName advances past an NCName starting at i and returns the index
// just after it. ASCII fast path; multi-byte runes are accepted wholesale
// via unicode classes.
func scanNCName(src string, i int) int {
	for i < len(src) {
		r := rune(src[i])
		size := 1
		if r >= 0x80 {
			for _, rr := range src[i:] {
				r = rr
				break
			}
			size = len(string(r))
		}
		if !isNameChar(r) {
			break
		}
		i += size
	}
	return i
}
