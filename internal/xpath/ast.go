package xpath

// AST node types for the compiled expression tree. The evaluator walks
// these directly; expressions in subscription filters are small enough that
// no further compilation pass is warranted.

type exprNode interface{ exprKind() string }

type binaryOp int

const (
	opOr binaryOp = iota
	opAnd
	opEq
	opNeq
	opLt
	opLte
	opGt
	opGte
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opUnion
)

var opNames = map[binaryOp]string{
	opOr: "or", opAnd: "and", opEq: "=", opNeq: "!=", opLt: "<", opLte: "<=",
	opGt: ">", opGte: ">=", opAdd: "+", opSub: "-", opMul: "*", opDiv: "div",
	opMod: "mod", opUnion: "|",
}

type binaryExpr struct {
	op          binaryOp
	left, right exprNode
}

func (*binaryExpr) exprKind() string { return "binary" }

type negExpr struct{ operand exprNode }

func (*negExpr) exprKind() string { return "neg" }

type numberLit float64

func (numberLit) exprKind() string { return "number" }

type stringLit string

func (stringLit) exprKind() string { return "string" }

type funcCall struct {
	name string
	args []exprNode
}

func (*funcCall) exprKind() string { return "call" }

// axis identifies a traversal direction for a location step.
type axis int

const (
	axisChild axis = iota
	axisDescendant
	axisDescendantOrSelf
	axisSelf
	axisParent
	axisAncestor
	axisAncestorOrSelf
	axisAttribute
	axisFollowingSibling
	axisPrecedingSibling
	axisFollowing
	axisPreceding
)

var axisByName = map[string]axis{
	"child":              axisChild,
	"descendant":         axisDescendant,
	"descendant-or-self": axisDescendantOrSelf,
	"self":               axisSelf,
	"parent":             axisParent,
	"ancestor":           axisAncestor,
	"ancestor-or-self":   axisAncestorOrSelf,
	"attribute":          axisAttribute,
	"following-sibling":  axisFollowingSibling,
	"preceding-sibling":  axisPrecedingSibling,
	"following":          axisFollowing,
	"preceding":          axisPreceding,
}

// reverseAxis reports whether proximity position counts backwards.
func (a axis) reverse() bool {
	switch a {
	case axisParent, axisAncestor, axisAncestorOrSelf, axisPrecedingSibling, axisPreceding:
		return true
	}
	return false
}

// nodeTest is the test applied to candidate nodes on an axis.
type testKind int

const (
	testName testKind = iota // QName or wildcard element/attribute name
	testText                 // text()
	testNode                 // node()
)

type nodeTest struct {
	kind testKind
	// For testName: space is the resolved namespace URI ("" = no
	// namespace), local the local name; either may be "*".
	space, local string
}

type step struct {
	axis  axis
	test  nodeTest
	preds []exprNode
}

// pathExpr is a location path: optional leading expression (for paths like
// "f(x)/child"), absolute flag, and steps.
type pathExpr struct {
	absolute bool
	start    exprNode // nil for pure location paths
	steps    []step
}

func (*pathExpr) exprKind() string { return "path" }

// filterExpr is a primary expression with predicates: (expr)[pred]...
type filterExpr struct {
	primary exprNode
	preds   []exprNode
}

func (*filterExpr) exprKind() string { return "filter" }
