package xpath

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/xmldom"
)

// evalCtx carries the XPath evaluation context: the context node plus the
// context position and size used by position()/last() and numeric
// predicates.
type evalCtx struct {
	node node
	pos  int
	size int
}

type evaluator struct{}

func (ev *evaluator) eval(e exprNode, ctx evalCtx) (value, error) {
	switch t := e.(type) {
	case numberLit:
		return numVal(t), nil
	case stringLit:
		return strVal(t), nil
	case *negExpr:
		v, err := ev.eval(t.operand, ctx)
		if err != nil {
			return nil, err
		}
		return numVal(-toNumber(v)), nil
	case *binaryExpr:
		return ev.evalBinary(t, ctx)
	case *funcCall:
		return functions[t.name](ev, ctx, t.args)
	case *pathExpr:
		return ev.evalPath(t, ctx)
	case *filterExpr:
		return ev.evalFilter(t, ctx)
	}
	return nil, fmt.Errorf("xpath: internal: unknown expression kind %T", e)
}

func (ev *evaluator) evalBinary(b *binaryExpr, ctx evalCtx) (value, error) {
	// Short-circuit logical operators per spec.
	switch b.op {
	case opOr, opAnd:
		l, err := ev.eval(b.left, ctx)
		if err != nil {
			return nil, err
		}
		lb := toBool(l)
		if (b.op == opOr && lb) || (b.op == opAnd && !lb) {
			return boolVal(lb), nil
		}
		r, err := ev.eval(b.right, ctx)
		if err != nil {
			return nil, err
		}
		return boolVal(toBool(r)), nil
	}

	l, err := ev.eval(b.left, ctx)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(b.right, ctx)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case opEq, opNeq, opLt, opLte, opGt, opGte:
		return boolVal(compare(b.op, l, r)), nil
	case opAdd:
		return numVal(toNumber(l) + toNumber(r)), nil
	case opSub:
		return numVal(toNumber(l) - toNumber(r)), nil
	case opMul:
		return numVal(toNumber(l) * toNumber(r)), nil
	case opDiv:
		return numVal(toNumber(l) / toNumber(r)), nil
	case opMod:
		return numVal(math.Mod(toNumber(l), toNumber(r))), nil
	case opUnion:
		ln, ok1 := l.(nodeSet)
		rn, ok2 := r.(nodeSet)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("xpath: operands of '|' must be node-sets")
		}
		return docOrder(append(append(nodeSet{}, ln...), rn...)), nil
	}
	return nil, fmt.Errorf("xpath: internal: unknown operator %s", opNames[b.op])
}

func (ev *evaluator) evalFilter(f *filterExpr, ctx evalCtx) (value, error) {
	v, err := ev.eval(f.primary, ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(nodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: predicate applied to non-node-set value")
	}
	for _, pred := range f.preds {
		ns, err = ev.applyPredicate(ns, pred, false)
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func (ev *evaluator) evalPath(p *pathExpr, ctx evalCtx) (value, error) {
	var current nodeSet
	switch {
	case p.start != nil:
		v, err := ev.eval(p.start, ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(nodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: path step applied to non-node-set value")
		}
		current = ns
	case p.absolute:
		current = nodeSet{rootOf(ctx.node)}
	default:
		current = nodeSet{ctx.node}
	}

	for _, st := range p.steps {
		next := nodeSet{}
		seen := map[node]bool{}
		for _, cn := range current {
			cands := axisNodes(cn, st.axis, st.test)
			var err error
			for _, pred := range st.preds {
				cands, err = ev.applyPredicate(cands, pred, st.axis.reverse())
				if err != nil {
					return nil, err
				}
			}
			for _, n := range cands {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		current = docOrder(next)
	}
	return current, nil
}

// applyPredicate filters a candidate list. Candidates arrive in axis order;
// proximity position is 1-based along that order (already reversed for
// reverse axes by axisNodes, so position counts naturally here).
func (ev *evaluator) applyPredicate(cands nodeSet, pred exprNode, _ bool) (nodeSet, error) {
	out := nodeSet{}
	size := len(cands)
	for i, n := range cands {
		v, err := ev.eval(pred, evalCtx{node: n, pos: i + 1, size: size})
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := v.(numVal); ok {
			keep = float64(num) == float64(i+1)
		} else {
			keep = toBool(v)
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// rootOf returns the synthetic root node above the context node's tree.
func rootOf(n node) node {
	el := n.el
	for el.Parent() != nil {
		el = el.Parent()
	}
	return rootNode(el)
}

// axisNodes returns the nodes on the given axis from cn that pass the node
// test, in proximity order (reverse axes yield nearest-first).
func axisNodes(cn node, ax axis, test nodeTest) nodeSet {
	var out nodeSet
	add := func(n node) {
		if matchTest(n, ax, test) {
			out = append(out, n)
		}
	}
	switch ax {
	case axisSelf:
		add(cn)
	case axisChild:
		for _, ch := range childNodes(cn) {
			add(ch)
		}
	case axisDescendant:
		walkDescendants(cn, add)
	case axisDescendantOrSelf:
		add(cn)
		walkDescendants(cn, add)
	case axisParent:
		if p, ok := cn.parent(); ok {
			add(p)
		}
	case axisAncestor, axisAncestorOrSelf:
		if ax == axisAncestorOrSelf {
			add(cn)
		}
		for p, ok := cn.parent(); ok; p, ok = p.parent() {
			add(p)
		}
	case axisAttribute:
		if cn.kind == kindElement {
			for i := range cn.el.Attrs {
				add(node{kind: kindAttribute, el: cn.el, attr: i})
			}
		}
	case axisFollowingSibling, axisPrecedingSibling:
		p, ok := cn.parent()
		if !ok || p.kind == kindRoot {
			return out
		}
		sibs := childNodes(p)
		idx := -1
		for i, s := range sibs {
			if s == cn {
				idx = i
				break
			}
		}
		if idx < 0 {
			return out
		}
		if ax == axisFollowingSibling {
			for _, s := range sibs[idx+1:] {
				add(s)
			}
		} else {
			for i := idx - 1; i >= 0; i-- {
				add(sibs[i])
			}
		}
	case axisFollowing, axisPreceding:
		// Document-order walk over the whole tree, splitting around cn.
		// "following" excludes cn's descendants; "preceding" excludes its
		// ancestors (XPath 1.0 §2.2).
		root := rootOf(cn)
		ancestors := map[node]bool{}
		for p, ok := cn.parent(); ok; p, ok = p.parent() {
			ancestors[p] = true
		}
		descendants := map[node]bool{}
		walkDescendants(cn, func(n node) { descendants[n] = true })
		before := true
		var walk func(n node)
		walk = func(n node) {
			switch {
			case n == cn:
				before = false
			case before:
				if ax == axisPreceding && !ancestors[n] && matchTest(n, ax, test) {
					out = append(out, n)
				}
			case !descendants[n]:
				if ax == axisFollowing && matchTest(n, ax, test) {
					out = append(out, n)
				}
			}
			for _, ch := range childNodes(n) {
				walk(ch)
			}
		}
		walk(root)
		if ax == axisPreceding { // nearest first
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// childNodes returns the child nodes (elements and text) of n in document
// order. Root has a single element child.
func childNodes(n node) []node {
	switch n.kind {
	case kindRoot:
		return []node{elemNode(n.el)}
	case kindElement:
		out := make([]node, 0, len(n.el.Children))
		for i, ch := range n.el.Children {
			switch ch.(type) {
			case *xmldom.Element:
				out = append(out, elemNode(ch.(*xmldom.Element)))
			case xmldom.Text:
				out = append(out, node{kind: kindText, el: n.el, child: i})
			}
		}
		return out
	}
	return nil
}

func walkDescendants(n node, visit func(node)) {
	for _, ch := range childNodes(n) {
		visit(ch)
		walkDescendants(ch, visit)
	}
}

// matchTest applies a node test; the principal node type of the attribute
// axis is attribute, of every other axis element.
func matchTest(n node, ax axis, test nodeTest) bool {
	switch test.kind {
	case testNode:
		return true
	case testText:
		return n.kind == kindText
	case testName:
		principal := kindElement
		if ax == axisAttribute {
			principal = kindAttribute
		}
		if n.kind != principal {
			return false
		}
		name := n.name()
		if test.local != "*" && test.local != name.Local {
			return false
		}
		if test.space != "*" && test.space != name.Space {
			return false
		}
		return true
	}
	return false
}

// docOrder sorts a node-set into document order and removes duplicates.
func docOrder(ns nodeSet) nodeSet {
	if len(ns) <= 1 {
		return ns
	}
	seen := map[node]bool{}
	uniq := ns[:0]
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	keys := make(map[node][]int, len(uniq))
	for _, n := range uniq {
		keys[n] = orderKey(n)
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		return lessKey(keys[uniq[i]], keys[uniq[j]])
	})
	return uniq
}

// orderKey computes a document-position key: the path of child indices from
// the root, with attributes sorting directly after their element.
func orderKey(n node) []int {
	var key []int
	push := func(i int) { key = append(key, i) }
	switch n.kind {
	case kindAttribute:
		key = orderKey(elemNode(n.el))
		push(-1_000_000 + n.attr) // attributes precede children
		return key
	case kindText:
		key = orderKey(elemNode(n.el))
		push(n.child)
		return key
	case kindRoot:
		return nil
	}
	el := n.el
	for el.Parent() != nil {
		p := el.Parent()
		idx := 0
		for i, ch := range p.Children {
			if chEl, ok := ch.(*xmldom.Element); ok && chEl == el {
				idx = i
				break
			}
		}
		key = append(key, idx)
		el = p
	}
	key = append(key, 0) // document element position under root
	// key was built leaf-to-root; reverse it.
	for i, j := 0, len(key)-1; i < j; i, j = i+1, j-1 {
		key[i], key[j] = key[j], key[i]
	}
	return key
}

func lessKey(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// --- Core function library ---

type xpathFunc func(ev *evaluator, ctx evalCtx, args []exprNode) (value, error)

var functions map[string]xpathFunc

func init() {
	functions = map[string]xpathFunc{
		"last":     fnLast,
		"position": fnPosition,
		"count":    fnCount,
		"local-name": func(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
			n, ok, err := nodeArg(ev, ctx, args)
			if err != nil || !ok {
				return strVal(""), err
			}
			return strVal(n.name().Local), nil
		},
		"namespace-uri": func(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
			n, ok, err := nodeArg(ev, ctx, args)
			if err != nil || !ok {
				return strVal(""), err
			}
			return strVal(n.name().Space), nil
		},
		"name": func(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
			// Without prefix information we return the Clark-free local
			// name, which is what filter expressions compare against.
			n, ok, err := nodeArg(ev, ctx, args)
			if err != nil || !ok {
				return strVal(""), err
			}
			return strVal(n.name().Local), nil
		},
		"string":           fnString,
		"concat":           fnConcat,
		"starts-with":      fnStartsWith,
		"contains":         fnContains,
		"substring-before": fnSubstringBefore,
		"substring-after":  fnSubstringAfter,
		"substring":        fnSubstring,
		"string-length":    fnStringLength,
		"normalize-space":  fnNormalizeSpace,
		"translate":        fnTranslate,
		"boolean":          fnBoolean,
		"not":              fnNot,
		"true":             func(*evaluator, evalCtx, []exprNode) (value, error) { return boolVal(true), nil },
		"false":            func(*evaluator, evalCtx, []exprNode) (value, error) { return boolVal(false), nil },
		"lang":             fnLang,
		"number":           fnNumber,
		"sum":              fnSum,
		"floor":            fnFloor,
		"ceiling":          fnCeiling,
		"round":            fnRound,
	}
}

func argValues(ev *evaluator, ctx evalCtx, args []exprNode) ([]value, error) {
	out := make([]value, len(args))
	for i, a := range args {
		v, err := ev.eval(a, ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func needArgs(name string, args []exprNode, min, max int) error {
	if len(args) < min || (max >= 0 && len(args) > max) {
		return fmt.Errorf("xpath: wrong number of arguments to %s(): got %d", name, len(args))
	}
	return nil
}

// nodeArg resolves the optional node-set argument pattern used by
// local-name(), name(), namespace-uri(): no argument means context node.
func nodeArg(ev *evaluator, ctx evalCtx, args []exprNode) (node, bool, error) {
	if len(args) == 0 {
		return ctx.node, true, nil
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return node{}, false, err
	}
	ns, ok := v.(nodeSet)
	if !ok {
		return node{}, false, fmt.Errorf("xpath: argument must be a node-set")
	}
	if len(ns) == 0 {
		return node{}, false, nil
	}
	return docOrder(ns)[0], true, nil
}

func fnLast(_ *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("last", args, 0, 0); err != nil {
		return nil, err
	}
	return numVal(ctx.size), nil
}

func fnPosition(_ *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("position", args, 0, 0); err != nil {
		return nil, err
	}
	return numVal(ctx.pos), nil
}

func fnCount(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("count", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(nodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: count() requires a node-set")
	}
	return numVal(len(ns)), nil
}

func fnString(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("string", args, 0, 1); err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return strVal(ctx.node.stringValue()), nil
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	return strVal(toString(v)), nil
}

func fnConcat(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("concat", args, 2, -1); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for _, v := range vs {
		sb.WriteString(toString(v))
	}
	return strVal(sb.String()), nil
}

func fnStartsWith(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("starts-with", args, 2, 2); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	return boolVal(strings.HasPrefix(toString(vs[0]), toString(vs[1]))), nil
}

func fnContains(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("contains", args, 2, 2); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	return boolVal(strings.Contains(toString(vs[0]), toString(vs[1]))), nil
}

func fnSubstringBefore(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("substring-before", args, 2, 2); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	s, sub := toString(vs[0]), toString(vs[1])
	if i := strings.Index(s, sub); i >= 0 {
		return strVal(s[:i]), nil
	}
	return strVal(""), nil
}

func fnSubstringAfter(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("substring-after", args, 2, 2); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	s, sub := toString(vs[0]), toString(vs[1])
	if i := strings.Index(s, sub); i >= 0 {
		return strVal(s[i+len(sub):]), nil
	}
	return strVal(""), nil
}

func fnSubstring(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("substring", args, 2, 3); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	s := []rune(toString(vs[0]))
	start := math.Round(toNumber(vs[1]))
	end := math.Inf(1)
	if len(vs) == 3 {
		end = start + math.Round(toNumber(vs[2]))
	}
	if math.IsNaN(start) || math.IsNaN(end) {
		return strVal(""), nil
	}
	var sb strings.Builder
	for i, r := range s {
		p := float64(i + 1)
		if p >= start && p < end {
			sb.WriteRune(r)
		}
	}
	return strVal(sb.String()), nil
}

func fnStringLength(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("string-length", args, 0, 1); err != nil {
		return nil, err
	}
	s := ctx.node.stringValue()
	if len(args) == 1 {
		v, err := ev.eval(args[0], ctx)
		if err != nil {
			return nil, err
		}
		s = toString(v)
	}
	return numVal(len([]rune(s))), nil
}

func fnNormalizeSpace(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("normalize-space", args, 0, 1); err != nil {
		return nil, err
	}
	s := ctx.node.stringValue()
	if len(args) == 1 {
		v, err := ev.eval(args[0], ctx)
		if err != nil {
			return nil, err
		}
		s = toString(v)
	}
	return strVal(strings.Join(strings.Fields(s), " ")), nil
}

func fnTranslate(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("translate", args, 3, 3); err != nil {
		return nil, err
	}
	vs, err := argValues(ev, ctx, args)
	if err != nil {
		return nil, err
	}
	s, from, to := toString(vs[0]), []rune(toString(vs[1])), []rune(toString(vs[2]))
	mapping := map[rune]rune{}
	remove := map[rune]bool{}
	for i, r := range from {
		if _, dup := mapping[r]; dup || remove[r] {
			continue
		}
		if i < len(to) {
			mapping[r] = to[i]
		} else {
			remove[r] = true
		}
	}
	var sb strings.Builder
	for _, r := range s {
		if remove[r] {
			continue
		}
		if m, ok := mapping[r]; ok {
			sb.WriteRune(m)
		} else {
			sb.WriteRune(r)
		}
	}
	return strVal(sb.String()), nil
}

func fnBoolean(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("boolean", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	return boolVal(toBool(v)), nil
}

func fnNot(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("not", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	return boolVal(!toBool(v)), nil
}

func fnLang(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("lang", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	want := strings.ToLower(toString(v))
	xmlLang := xmldom.N("http://www.w3.org/XML/1998/namespace", "lang")
	for n, ok := ctx.node, true; ok; n, ok = n.parent() {
		if n.kind != kindElement {
			continue
		}
		if lv, present := n.el.Attr(xmlLang); present {
			got := strings.ToLower(lv)
			return boolVal(got == want || strings.HasPrefix(got, want+"-")), nil
		}
	}
	return boolVal(false), nil
}

func fnNumber(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("number", args, 0, 1); err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return numVal(stringToNumber(ctx.node.stringValue())), nil
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	return numVal(toNumber(v)), nil
}

func fnSum(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("sum", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(nodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: sum() requires a node-set")
	}
	total := 0.0
	for _, n := range ns {
		total += stringToNumber(n.stringValue())
	}
	return numVal(total), nil
}

func fnFloor(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("floor", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	return numVal(math.Floor(toNumber(v))), nil
}

func fnCeiling(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("ceiling", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	return numVal(math.Ceil(toNumber(v))), nil
}

func fnRound(ev *evaluator, ctx evalCtx, args []exprNode) (value, error) {
	if err := needArgs("round", args, 1, 1); err != nil {
		return nil, err
	}
	v, err := ev.eval(args[0], ctx)
	if err != nil {
		return nil, err
	}
	f := toNumber(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return numVal(f), nil
	}
	return numVal(math.Floor(f + 0.5)), nil
}
