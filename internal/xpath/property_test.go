package xpath

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xmldom"
)

// genDoc builds a random document of <e>/<f> elements with val attributes.
type genDoc struct{ El *xmldom.Element }

func (genDoc) Generate(r *rand.Rand, _ int) reflect.Value {
	var build func(depth int) *xmldom.Element
	build = func(depth int) *xmldom.Element {
		names := []string{"e", "f", "g"}
		el := xmldom.NewElement(xmldom.N("", names[r.Intn(len(names))]))
		el.SetAttr(xmldom.N("", "val"), fmt.Sprint(r.Intn(100)))
		if depth > 0 {
			for i := 0; i < r.Intn(4); i++ {
				el.Append(build(depth - 1))
			}
		}
		return el
	}
	root := xmldom.NewElement(xmldom.N("", "root"))
	for i := 0; i < 1+r.Intn(4); i++ {
		root.Append(build(2))
	}
	return reflect.ValueOf(genDoc{El: root})
}

func countElements(e *xmldom.Element) int {
	n := 1
	for _, c := range e.ChildElements() {
		n += countElements(c)
	}
	return n
}

// Property: count(//*) equals the true element count.
func TestPropertyCountAllElements(t *testing.T) {
	expr := MustCompile("count(//*)")
	f := func(d genDoc) bool {
		r, err := expr.Eval(d.El)
		return err == nil && int(r.Number()) == countElements(d.El)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: not(X) is the negation of boolean(X) for arbitrary path filters.
func TestPropertyNotInverts(t *testing.T) {
	exprs := []string{"//e", "//f[@val > 50]", "//g/e", "//missing", "//e[@val < 10]"}
	f := func(d genDoc, idx uint) bool {
		src := exprs[idx%uint(len(exprs))]
		pos := MustCompile("boolean(" + src + ")")
		neg := MustCompile("not(" + src + ")")
		pr, err1 := pos.Eval(d.El)
		nr, err2 := neg.Eval(d.El)
		return err1 == nil && err2 == nil && pr.Bool() == !nr.Bool()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a union is no smaller than either operand and no larger than
// the sum, and // is monotone: //e ⊆ //* .
func TestPropertyUnionBounds(t *testing.T) {
	eAll := MustCompile("//*")
	eE := MustCompile("//e")
	eF := MustCompile("//f")
	eU := MustCompile("//e | //f")
	f := func(d genDoc) bool {
		all, _ := eAll.Eval(d.El)
		ce, _ := eE.Eval(d.El)
		cf, _ := eF.Eval(d.El)
		cu, _ := eU.Eval(d.El)
		if cu.Count() > ce.Count()+cf.Count() || cu.Count() < ce.Count() || cu.Count() < cf.Count() {
			return false
		}
		return ce.Count() <= all.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: predicates filter — //e[@val > N] count is non-increasing in N.
func TestPropertyPredicateMonotone(t *testing.T) {
	f := func(d genDoc, n uint8) bool {
		lo := MustCompile(fmt.Sprintf("count(//e[@val > %d])", int(n)%100))
		hi := MustCompile(fmt.Sprintf("count(//e[@val > %d])", int(n)%100+10))
		rl, _ := lo.Eval(d.El)
		rh, _ := hi.Eval(d.El)
		return rh.Number() <= rl.Number()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
