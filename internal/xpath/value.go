package xpath

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/xmldom"
)

// nodeKind distinguishes the node kinds the evaluator operates on. The
// xmldom tree stores only elements and text, so XPath attribute and root
// nodes are synthesised as lightweight wrappers.
type nodeKind int

const (
	kindRoot nodeKind = iota
	kindElement
	kindAttribute
	kindText
)

// node is an XPath node: a view onto (part of) an xmldom tree. Identity is
// structural: two node values denote the same node iff all fields match.
// order is a document-position key assigned lazily for sorting and
// de-duplicating node-sets.
type node struct {
	kind  nodeKind
	el    *xmldom.Element // element for kindElement; owner for attr/text; root's doc element for kindRoot
	attr  int             // attribute index within el, for kindAttribute
	child int             // child index within el, for kindText
}

func elemNode(e *xmldom.Element) node   { return node{kind: kindElement, el: e} }
func rootNode(doc *xmldom.Element) node { return node{kind: kindRoot, el: doc} }

// stringValue implements the XPath string-value of each node kind.
func (n node) stringValue() string {
	switch n.kind {
	case kindRoot, kindElement:
		return n.el.Text()
	case kindAttribute:
		return n.el.Attrs[n.attr].Value
	case kindText:
		return string(n.el.Children[n.child].(xmldom.Text))
	}
	return ""
}

// name returns the expanded name of the node ("" names for root and text).
func (n node) name() xmldom.Name {
	switch n.kind {
	case kindElement:
		return n.el.Name
	case kindAttribute:
		return n.el.Attrs[n.attr].Name
	}
	return xmldom.Name{}
}

// parent returns the node's parent node and whether one exists. The parent
// of the document element (and of any detached subtree root we were handed)
// is the synthetic root node.
func (n node) parent() (node, bool) {
	switch n.kind {
	case kindRoot:
		return node{}, false
	case kindElement:
		if p := n.el.Parent(); p != nil {
			return elemNode(p), true
		}
		return rootNode(n.el), true
	default: // attribute and text nodes belong to their element
		return elemNode(n.el), true
	}
}

// value is the evaluator-internal value union: one of boolVal, numVal,
// strVal, nodeSet.
type value interface{ valueKind() string }

type boolVal bool

func (boolVal) valueKind() string { return "boolean" }

type numVal float64

func (numVal) valueKind() string { return "number" }

type strVal string

func (strVal) valueKind() string { return "string" }

type nodeSet []node

func (nodeSet) valueKind() string { return "node-set" }

// toBool applies the XPath boolean() coercion.
func toBool(v value) bool {
	switch t := v.(type) {
	case boolVal:
		return bool(t)
	case numVal:
		f := float64(t)
		return f != 0 && !math.IsNaN(f)
	case strVal:
		return len(t) > 0
	case nodeSet:
		return len(t) > 0
	}
	return false
}

// toNumber applies the XPath number() coercion.
func toNumber(v value) float64 {
	switch t := v.(type) {
	case numVal:
		return float64(t)
	case boolVal:
		if t {
			return 1
		}
		return 0
	case strVal:
		return stringToNumber(string(t))
	case nodeSet:
		return stringToNumber(nodeSetString(t))
	}
	return math.NaN()
}

func stringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// toString applies the XPath string() coercion.
func toString(v value) string {
	switch t := v.(type) {
	case strVal:
		return string(t)
	case boolVal:
		if t {
			return "true"
		}
		return "false"
	case numVal:
		return numberToString(float64(t))
	case nodeSet:
		return nodeSetString(t)
	}
	return ""
}

// numberToString renders per XPath: integers without a decimal point, NaN
// as "NaN", infinities as "Infinity"/"-Infinity".
func numberToString(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// nodeSetString is the string-value of the first node in document order;
// node-sets produced by the evaluator are already ordered.
func nodeSetString(ns nodeSet) string {
	if len(ns) == 0 {
		return ""
	}
	return ns[0].stringValue()
}

// compare implements the XPath comparison semantics, including the
// node-set-against-anything existential rules.
func compare(op binaryOp, a, b value) bool {
	an, aIsNS := a.(nodeSet)
	bn, bIsNS := b.(nodeSet)
	switch {
	case aIsNS && bIsNS:
		// Existential over pairs of string-values.
		for _, x := range an {
			for _, y := range bn {
				if compareAtomic(op, strVal(x.stringValue()), strVal(y.stringValue())) {
					return true
				}
			}
		}
		return false
	case aIsNS:
		for _, x := range an {
			if compareAtomic(op, coerceLike(b, x), b) {
				return true
			}
		}
		return false
	case bIsNS:
		for _, y := range bn {
			if compareAtomic(op, a, coerceLike(a, y)) {
				return true
			}
		}
		return false
	default:
		return compareAtomic(op, a, b)
	}
}

// coerceLike converts a node to the atomic type of the other operand for
// node-set comparisons: numbers against numbers, booleans against the
// node-set's boolean, strings otherwise.
func coerceLike(other value, n node) value {
	switch other.(type) {
	case numVal:
		return numVal(stringToNumber(n.stringValue()))
	case boolVal:
		return boolVal(true) // a node exists, so its set is true
	default:
		return strVal(n.stringValue())
	}
}

func compareAtomic(op binaryOp, a, b value) bool {
	switch op {
	case opEq, opNeq:
		var eq bool
		switch {
		case isBool(a) || isBool(b):
			eq = toBool(a) == toBool(b)
		case isNum(a) || isNum(b):
			eq = toNumber(a) == toNumber(b)
		default:
			eq = toString(a) == toString(b)
		}
		if op == opEq {
			return eq
		}
		return !eq
	default:
		x, y := toNumber(a), toNumber(b)
		switch op {
		case opLt:
			return x < y
		case opLte:
			return x <= y
		case opGt:
			return x > y
		case opGte:
			return x >= y
		}
	}
	return false
}

func isBool(v value) bool { _, ok := v.(boolVal); return ok }
func isNum(v value) bool  { _, ok := v.(numVal); return ok }
