package xpath

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser for the XPath 1.0 grammar subset.
type parser struct {
	toks []token
	pos  int
	ns   map[string]string // prefix -> namespace URI
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("xpath: expected %s, found %s at offset %d", what, p.cur(), p.cur().pos)
	}
	return p.advance(), nil
}

func (p *parser) resolvePrefix(prefix string, at int) (string, error) {
	uri, ok := p.ns[prefix]
	if !ok {
		return "", fmt.Errorf("xpath: undeclared namespace prefix %q at offset %d", prefix, at)
	}
	return uri, nil
}

// parseExpr parses the top-level production (OrExpr).
func (p *parser) parseExpr() (exprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (exprNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isOperatorName("or") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: opOr, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (exprNode, error) {
	left, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.isOperatorName("and") {
		p.advance()
		right, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: opAnd, left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseEquality() (exprNode, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op binaryOp
		switch p.cur().kind {
		case tokEq:
			op = opEq
		case tokNeq:
			op = opNeq
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseRelational() (exprNode, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op binaryOp
		switch p.cur().kind {
		case tokLt:
			op = opLt
		case tokLte:
			op = opLte
		case tokGt:
			op = opGt
		case tokGte:
			op = opGte
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseAdditive() (exprNode, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op binaryOp
		switch p.cur().kind {
		case tokPlus:
			op = opAdd
		case tokMinus:
			op = opSub
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseMultiplicative() (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op binaryOp
		switch {
		case p.cur().kind == tokMultiply:
			op = opMul
		case p.isOperatorName("div"):
			op = opDiv
		case p.isOperatorName("mod"):
			op = opMod
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op, left: left, right: right}
	}
}

func (p *parser) parseUnary() (exprNode, error) {
	neg := false
	for p.cur().kind == tokMinus {
		p.advance()
		neg = !neg
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if neg {
		return &negExpr{operand: e}, nil
	}
	return e, nil
}

func (p *parser) parseUnion() (exprNode, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPipe {
		p.advance()
		right, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: opUnion, left: left, right: right}
	}
	return left, nil
}

// isOperatorName reports whether the current token is the given operator
// name; the lexer has already applied the XPath 1.0 disambiguation rule.
func (p *parser) isOperatorName(name string) bool {
	return p.cur().kind == tokOpName && p.cur().text == name
}

// parsePath handles PathExpr: either a LocationPath, or a FilterExpr
// optionally followed by '/' RelativeLocationPath.
func (p *parser) parsePath() (exprNode, error) {
	if p.startsFilterExpr() {
		fe, err := p.parseFilterExpr()
		if err != nil {
			return nil, err
		}
		switch p.cur().kind {
		case tokSlash:
			p.advance()
			steps, err := p.parseRelativeSteps()
			if err != nil {
				return nil, err
			}
			return &pathExpr{start: fe, steps: steps}, nil
		case tokSlashSlash:
			p.advance()
			steps, err := p.parseRelativeSteps()
			if err != nil {
				return nil, err
			}
			all := append([]step{{axis: axisDescendantOrSelf, test: nodeTest{kind: testNode}}}, steps...)
			return &pathExpr{start: fe, steps: all}, nil
		default:
			return fe, nil
		}
	}
	return p.parseLocationPath()
}

// startsFilterExpr distinguishes a FilterExpr head from a location path.
// FilterExpr begins with a literal, number, '(' or a function call — a name
// directly followed by '(' that is not a node-type test.
func (p *parser) startsFilterExpr() bool {
	switch p.cur().kind {
	case tokLiteral, tokNumber, tokLParen:
		return true
	case tokName:
		if p.peek().kind == tokLParen {
			switch p.cur().text {
			case "text", "node", "comment", "processing-instruction":
				return false
			}
			return true
		}
	}
	return false
}

func (p *parser) parseFilterExpr() (exprNode, error) {
	var primary exprNode
	switch p.cur().kind {
	case tokLiteral:
		primary = stringLit(p.advance().text)
	case tokNumber:
		f, err := strconv.ParseFloat(p.cur().text, 64)
		if err != nil {
			return nil, fmt.Errorf("xpath: bad number %q", p.cur().text)
		}
		p.advance()
		primary = numberLit(f)
	case tokLParen:
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		primary = inner
	case tokName:
		name := p.advance().text
		if _, err := p.expect(tokLParen, "'(' after function name"); err != nil {
			return nil, err
		}
		var args []exprNode
		if p.cur().kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, ok := functions[name]; !ok {
			return nil, fmt.Errorf("xpath: unknown function %q", name)
		}
		primary = &funcCall{name: name, args: args}
	default:
		return nil, fmt.Errorf("xpath: unexpected token %s at offset %d", p.cur(), p.cur().pos)
	}

	if p.cur().kind != tokLBracket {
		return primary, nil
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, err
	}
	return &filterExpr{primary: primary, preds: preds}, nil
}

func (p *parser) parseLocationPath() (exprNode, error) {
	pe := &pathExpr{}
	switch p.cur().kind {
	case tokSlash:
		p.advance()
		pe.absolute = true
		if !p.startsStep() {
			return pe, nil // bare "/" selects the root
		}
	case tokSlashSlash:
		p.advance()
		pe.absolute = true
		pe.steps = append(pe.steps, step{axis: axisDescendantOrSelf, test: nodeTest{kind: testNode}})
	}
	steps, err := p.parseRelativeSteps()
	if err != nil {
		return nil, err
	}
	pe.steps = append(pe.steps, steps...)
	if len(pe.steps) == 0 && !pe.absolute {
		return nil, fmt.Errorf("xpath: expected expression, found %s at offset %d", p.cur(), p.cur().pos)
	}
	return pe, nil
}

func (p *parser) startsStep() bool {
	switch p.cur().kind {
	case tokName, tokStar, tokNameColonStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *parser) parseRelativeSteps() ([]step, error) {
	var steps []step
	for {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
		switch p.cur().kind {
		case tokSlash:
			p.advance()
		case tokSlashSlash:
			p.advance()
			steps = append(steps, step{axis: axisDescendantOrSelf, test: nodeTest{kind: testNode}})
		default:
			return steps, nil
		}
	}
}

func (p *parser) parseStep() (step, error) {
	switch p.cur().kind {
	case tokDot:
		p.advance()
		return step{axis: axisSelf, test: nodeTest{kind: testNode}}, nil
	case tokDotDot:
		p.advance()
		return step{axis: axisParent, test: nodeTest{kind: testNode}}, nil
	}

	st := step{axis: axisChild}
	switch {
	case p.cur().kind == tokAt:
		p.advance()
		st.axis = axisAttribute
	case p.cur().kind == tokName && p.peek().kind == tokColonColon:
		ax, ok := axisByName[p.cur().text]
		if !ok {
			return step{}, fmt.Errorf("xpath: unknown axis %q at offset %d", p.cur().text, p.cur().pos)
		}
		p.advance()
		p.advance()
		st.axis = ax
	}

	test, err := p.parseNodeTest(st.axis)
	if err != nil {
		return step{}, err
	}
	st.test = test

	if p.cur().kind == tokLBracket {
		preds, err := p.parsePredicates()
		if err != nil {
			return step{}, err
		}
		st.preds = preds
	}
	return st, nil
}

func (p *parser) parseNodeTest(ax axis) (nodeTest, error) {
	switch p.cur().kind {
	case tokStar:
		p.advance()
		return nodeTest{kind: testName, space: "*", local: "*"}, nil
	case tokNameColonStar:
		t := p.advance()
		prefix := t.text[:len(t.text)-2]
		uri, err := p.resolvePrefix(prefix, t.pos)
		if err != nil {
			return nodeTest{}, err
		}
		return nodeTest{kind: testName, space: uri, local: "*"}, nil
	case tokName:
		t := p.advance()
		if p.cur().kind == tokLParen {
			// Node-type test.
			p.advance()
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nodeTest{}, err
			}
			switch t.text {
			case "text":
				return nodeTest{kind: testText}, nil
			case "node":
				return nodeTest{kind: testNode}, nil
			case "comment", "processing-instruction":
				// Our DOM has no such nodes; the test is valid but never
				// matches. Model as a name test that cannot match.
				return nodeTest{kind: testName, space: "\x00none", local: "\x00none"}, nil
			default:
				return nodeTest{}, fmt.Errorf("xpath: unknown node type %q at offset %d", t.text, t.pos)
			}
		}
		space, local := "", t.text
		if i := indexByte(t.text, ':'); i >= 0 {
			uri, err := p.resolvePrefix(t.text[:i], t.pos)
			if err != nil {
				return nodeTest{}, err
			}
			space, local = uri, t.text[i+1:]
		} else if def, ok := p.ns[""]; ok {
			// XPath 1.0 says unprefixed names are in no namespace, but the
			// WS filter dialects are far more usable when the caller can
			// bind a default namespace for element tests; an explicit ""
			// binding opts in.
			if ax != axisAttribute {
				space = def
			}
		}
		return nodeTest{kind: testName, space: space, local: local}, nil
	default:
		return nodeTest{}, fmt.Errorf("xpath: expected node test, found %s at offset %d", p.cur(), p.cur().pos)
	}
}

func (p *parser) parsePredicates() ([]exprNode, error) {
	var preds []exprNode
	for p.cur().kind == tokLBracket {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		preds = append(preds, e)
	}
	return preds, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
