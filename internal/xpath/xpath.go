package xpath

import (
	"fmt"

	"repro/internal/xmldom"
)

// Expr is a compiled XPath expression, safe for concurrent use.
type Expr struct {
	src  string
	root exprNode
}

// Namespaces maps prefixes used in an expression to namespace URIs. A
// binding for the empty prefix sets a default namespace for element name
// tests (an extension over strict XPath 1.0 that the WS filter dialects
// need: notification payloads are almost always namespace-qualified).
type Namespaces map[string]string

// Compile parses an expression with no namespace bindings.
func Compile(src string) (*Expr, error) { return CompileNS(src, nil) }

// CompileNS parses an expression with the given prefix bindings.
func CompileNS(src string, ns Namespaces) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, ns: map[string]string{}}
	for k, v := range ns {
		p.ns[k] = v
	}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("xpath: trailing input %s at offset %d", p.cur(), p.cur().pos)
	}
	return &Expr{src: src, root: root}, nil
}

// MustCompile compiles or panics; for fixed expressions in tests/examples.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source text of the expression.
func (e *Expr) String() string { return e.src }

// Result holds the value of an evaluated expression with accessors that
// apply the standard XPath coercions.
type Result struct{ v value }

// Bool returns the boolean() coercion of the result — the operation every
// subscription filter reduces to.
func (r Result) Bool() bool { return toBool(r.v) }

// Number returns the number() coercion of the result.
func (r Result) Number() float64 { return toNumber(r.v) }

// String returns the string() coercion of the result.
func (r Result) String() string { return toString(r.v) }

// IsNodeSet reports whether the result is a node-set.
func (r Result) IsNodeSet() bool { _, ok := r.v.(nodeSet); return ok }

// Elements returns the element nodes of a node-set result in document
// order; attribute and text nodes are omitted. Nil for non-node-set
// results.
func (r Result) Elements() []*xmldom.Element {
	ns, ok := r.v.(nodeSet)
	if !ok {
		return nil
	}
	var out []*xmldom.Element
	for _, n := range ns {
		if n.kind == kindElement {
			out = append(out, n.el)
		}
	}
	return out
}

// Strings returns the string-value of each node for node-set results, or a
// single-element slice of the coerced string otherwise.
func (r Result) Strings() []string {
	ns, ok := r.v.(nodeSet)
	if !ok {
		return []string{toString(r.v)}
	}
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.stringValue()
	}
	return out
}

// Count returns the number of nodes for node-set results, 0 otherwise.
func (r Result) Count() int {
	if ns, ok := r.v.(nodeSet); ok {
		return len(ns)
	}
	return 0
}

// Eval evaluates the expression with the document rooted at doc. The
// context node is the root node (the parent of doc), matching how an XPath
// processor is handed a whole message, so absolute and relative paths both
// behave as users of message filters expect: "//Price" and
// "/Envelope/Price" and "Envelope/Price" all work.
func (e *Expr) Eval(doc *xmldom.Element) (Result, error) {
	ev := &evaluator{}
	ctx := evalCtx{node: rootNode(topmost(doc)), pos: 1, size: 1}
	v, err := ev.eval(e.root, ctx)
	if err != nil {
		return Result{}, err
	}
	return Result{v: v}, nil
}

// EvalAt evaluates with an explicit element as the context node, for
// relative expressions applied inside a message (predicate re-evaluation,
// ProducerProperties against a properties document, ...).
func (e *Expr) EvalAt(ctxEl *xmldom.Element) (Result, error) {
	ev := &evaluator{}
	ctx := evalCtx{node: elemNode(ctxEl), pos: 1, size: 1}
	v, err := ev.eval(e.root, ctx)
	if err != nil {
		return Result{}, err
	}
	return Result{v: v}, nil
}

// Matches is the filter entry point: evaluate against the message and
// coerce to boolean. Errors are returned rather than treated as false so
// the subscription layer can fault invalid filters at subscribe time.
func (e *Expr) Matches(doc *xmldom.Element) (bool, error) {
	r, err := e.Eval(doc)
	if err != nil {
		return false, err
	}
	return r.Bool(), nil
}

func topmost(e *xmldom.Element) *xmldom.Element {
	for e.Parent() != nil {
		e = e.Parent()
	}
	return e
}
