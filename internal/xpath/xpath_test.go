package xpath

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
)

// doc is a representative notification-style message used across tests.
var doc = xmldom.MustParse(`
<stock xmlns:m="urn:market">
  <m:quote symbol="IBM">
    <m:price>83.5</m:price>
    <m:volume>1200</m:volume>
  </m:quote>
  <m:quote symbol="MSFT">
    <m:price>27.25</m:price>
    <m:volume>4000</m:volume>
  </m:quote>
  <m:quote symbol="SUNW">
    <m:price>5.10</m:price>
    <m:volume>900</m:volume>
  </m:quote>
  <note lang="en">hello world</note>
</stock>`)

var marketNS = Namespaces{"m": "urn:market"}

func evalStr(t *testing.T, expr string, ns Namespaces) Result {
	t.Helper()
	e, err := CompileNS(expr, ns)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	r, err := e.Eval(doc)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return r
}

func TestLocationPaths(t *testing.T) {
	cases := []struct {
		expr  string
		count int
	}{
		{"/stock", 1},
		{"/stock/m:quote", 3},
		{"//m:price", 3},
		{"/stock/m:quote/m:price", 3},
		{"//m:quote[@symbol='IBM']", 1},
		{"//m:quote[m:price > 20]", 2},
		{"//m:quote[m:price > 20][m:volume > 2000]", 1},
		{"/stock/*", 4},
		{"/stock/m:*", 3},
		{"//@symbol", 3},
		{"/stock/m:quote[1]", 1},
		{"/stock/m:quote[last()]", 1},
		{"/stock/m:quote[position() >= 2]", 2},
		{"//m:quote/..", 1},
		{"//m:price/ancestor::stock", 1},
		{"//m:quote[@symbol='IBM']/following-sibling::m:quote", 2},
		{"//m:quote[@symbol='SUNW']/preceding-sibling::m:quote", 2},
		{"//m:quote[@symbol='MSFT']/following::m:price", 1},
		{"//m:quote[@symbol='MSFT']/preceding::m:price", 1},
		{"/stock/descendant::m:price", 3},
		{"/stock/descendant-or-self::stock", 1},
		{"//note/text()", 1},
		{"//node()", 0}, // counted below separately — non-zero
		{"self::node()", 1},
		{"//m:quote[@symbol='NONE']", 0},
		{"/nonexistent", 0},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			r := evalStr(t, tc.expr, marketNS)
			if tc.expr == "//node()" {
				if r.Count() == 0 {
					t.Errorf("//node() found nothing")
				}
				return
			}
			if r.Count() != tc.count {
				t.Errorf("%s: count = %d, want %d", tc.expr, r.Count(), tc.count)
			}
		})
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	r := evalStr(t, "//m:price | //m:quote[@symbol='IBM']/m:price | //m:volume", marketNS)
	if r.Count() != 6 {
		t.Fatalf("union count = %d, want 6 (dedup failed?)", r.Count())
	}
	ss := r.Strings()
	want := []string{"83.5", "1200", "27.25", "4000", "5.10", "900"}
	for i := range want {
		if strings.TrimSpace(ss[i]) != want[i] {
			t.Errorf("union order [%d] = %q, want %q", i, ss[i], want[i])
		}
	}
}

func TestBooleanFilters(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"//m:quote[@symbol='IBM']/m:price > 80", true},
		{"//m:quote[@symbol='IBM']/m:price > 100", false},
		{"count(//m:quote) = 3", true},
		{"count(//m:quote) > 3", false},
		{"//m:price < 6", true}, // existential: SUNW matches
		{"//m:price > 100", false},
		{"contains(//note, 'world')", true},
		{"starts-with(//note, 'hello')", true},
		{"not(//missing)", true},
		{"boolean(//m:quote)", true},
		{"boolean(//missing)", false},
		{"//m:quote[@symbol='IBM'] and //m:quote[@symbol='MSFT']", true},
		{"//m:quote[@symbol='IBM'] or //missing", true},
		{"//missing or false()", false},
		{"sum(//m:volume) = 6100", true},
		{"'abc' = 'abc'", true},
		{"'abc' != 'abc'", false},
		{"1 < 2 and 2 <= 2 and 3 > 2 and 3 >= 3", true},
		{"(1 + 2) * 3 = 9", true},
		{"10 div 4 = 2.5", true},
		{"10 mod 3 = 1", true},
		{"-5 + 6 = 1", true},
		{"//m:quote/@symbol = 'MSFT'", true}, // existential over attrs
		{"//note[@lang='en']", true},
		{"lang('en')", false}, // context is root, no xml:lang above it
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			e, err := CompileNS(tc.expr, marketNS)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got, err := e.Matches(doc)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if got != tc.want {
				t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
			}
		})
	}
}

func TestStringFunctions(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"string(//m:quote[1]/@symbol)", "IBM"},
		{"concat('a', 'b', 'c')", "abc"},
		{"substring('12345', 2, 3)", "234"},
		{"substring('12345', 2)", "2345"},
		{"substring('12345', 1.5, 2.6)", "234"}, // spec example
		{"substring-before('1999/04/01', '/')", "1999"},
		{"substring-after('1999/04/01', '/')", "04/01"},
		{"substring-before('abc', 'x')", ""},
		{"substring-after('abc', 'x')", ""},
		{"normalize-space('  a   b  ')", "a b"},
		{"translate('bar', 'abc', 'ABC')", "BAr"},
		{"translate('--aaa--', 'abc-', 'ABC')", "AAA"},
		{"string(1 div 0)", "Infinity"},
		{"string(-1 div 0)", "-Infinity"},
		{"string(0 div 0)", "NaN"},
		{"string(2 + 2)", "4"},
		{"string(2.5)", "2.5"},
		{"string(true())", "true"},
		{"string(false())", "false"},
		{"local-name(//m:quote[1])", "quote"},
		{"namespace-uri(//m:quote[1])", "urn:market"},
		{"name(//note)", "note"},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			if got := evalStr(t, tc.expr, marketNS).String(); got != tc.want {
				t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
			}
		})
	}
}

func TestNumberFunctions(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"number('12.5')", 12.5},
		{"number(true())", 1},
		{"floor(2.7)", 2},
		{"ceiling(2.1)", 3},
		{"round(2.5)", 3},
		{"round(-2.5)", -2},
		{"round(2.4)", 2},
		{"string-length('hello')", 5},
		{"string-length('日本語')", 3},
		{"count(//m:quote)", 3},
		{"sum(//m:price)", 83.5 + 27.25 + 5.10},
		{"position()", 1},
		{"last()", 1},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			if got := evalStr(t, tc.expr, marketNS).Number(); got != tc.want {
				t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
			}
		})
	}
}

func TestNumberNaN(t *testing.T) {
	r := evalStr(t, "number('abc')", nil)
	if !isNaN(r.Number()) {
		t.Errorf("number('abc') = %v, want NaN", r.Number())
	}
	r = evalStr(t, "number('')", nil)
	if !isNaN(r.Number()) {
		t.Errorf("number('') = %v, want NaN", r.Number())
	}
}

func isNaN(f float64) bool { return f != f }

func TestDefaultNamespaceBinding(t *testing.T) {
	d := xmldom.MustParse(`<a xmlns="urn:d"><b attr="1">x</b></a>`)
	// Without a default binding, unprefixed tests match no-namespace names.
	e := MustCompile("/a/b")
	r, err := e.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Errorf("unprefixed path matched namespaced elements without binding")
	}
	// With "" bound, element tests pick up the default namespace...
	e2, err := CompileNS("/a/b", Namespaces{"": "urn:d"})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e2.Eval(d)
	if r2.Count() != 1 {
		t.Errorf("default-bound path found %d, want 1", r2.Count())
	}
	// ...but attribute tests do not (unprefixed attrs are in no namespace).
	e3, _ := CompileNS("//b[@attr='1']", Namespaces{"": "urn:d"})
	r3, _ := e3.Eval(d)
	if r3.Count() != 1 {
		t.Errorf("attribute test affected by default namespace binding")
	}
}

func TestEvalAt(t *testing.T) {
	quote := doc.ChildElements()[0] // first m:quote
	e, _ := CompileNS("m:price", marketNS)
	r, err := e.EvalAt(quote)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 || strings.TrimSpace(r.String()) != "83.5" {
		t.Errorf("EvalAt relative path = %v %q", r.Count(), r.String())
	}
	// ".." from the quote reaches the stock element.
	e2 := MustCompile("..")
	r2, _ := e2.EvalAt(quote)
	els := r2.Elements()
	if len(els) != 1 || els[0].Name.Local != "stock" {
		t.Errorf(".. from quote = %v", els)
	}
}

func TestElementsAccessor(t *testing.T) {
	r := evalStr(t, "//m:quote", marketNS)
	els := r.Elements()
	if len(els) != 3 {
		t.Fatalf("Elements len = %d", len(els))
	}
	if els[0].AttrValue(xmldom.N("", "symbol")) != "IBM" {
		t.Errorf("first element = %v", els[0].Name)
	}
	// Non-node-set results give nil Elements.
	if evalStr(t, "1 + 1", nil).Elements() != nil {
		t.Error("Elements on number result should be nil")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"//",
		"/stock/",
		"1 +",
		"@",
		"foo(",
		"unknownfn()",
		"m:quote", // undeclared prefix (no namespaces passed)
		"//a[",
		"'unterminated",
		"a b",
		"1 !",
		"child::5",
		"axis-nope::a",
		"..[1] extra ]",
		"count(//a,//b,//c) mismatch(",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	// Predicate on a non-node-set.
	if _, err := CompileNS("(1)[2]", nil); err == nil {
		e := MustCompile("(1)[2]")
		if _, err := e.Eval(doc); err == nil {
			t.Error("(1)[2] should fail at eval time")
		}
	}
	// count() of a non-node-set.
	e := MustCompile("count(1)")
	if _, err := e.Eval(doc); err == nil {
		t.Error("count(1) should fail")
	}
	e = MustCompile("sum('a')")
	if _, err := e.Eval(doc); err == nil {
		t.Error("sum('a') should fail")
	}
	e = MustCompile("1 | 2")
	if _, err := e.Eval(doc); err == nil {
		t.Error("1 | 2 should fail")
	}
}

func TestOperatorNameDisambiguation(t *testing.T) {
	d := xmldom.MustParse(`<r><div>5</div><mod>2</mod><and>1</and><or>1</or></r>`)
	// Element names that collide with operator names must parse as names in
	// step position and as operators in operator position.
	e, err := Compile("/r/div + /r/mod")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r, err := e.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Number() != 7 {
		t.Errorf("div+mod = %v, want 7", r.Number())
	}
	e2, err := Compile("/r/and and /r/or")
	if err != nil {
		t.Fatalf("compile and/or names: %v", err)
	}
	ok, _ := e2.Matches(d)
	if !ok {
		t.Error("and/or element names should both exist")
	}
	e3, err := Compile("6 div 2 mod 2")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r3, _ := e3.Eval(d)
	if r3.Number() != 1 {
		t.Errorf("6 div 2 mod 2 = %v, want 1", r3.Number())
	}
}

func TestWildcardNamespace(t *testing.T) {
	r := evalStr(t, "count(//m:*)", marketNS)
	if r.Number() != 9 { // 3 quotes + 3 prices + 3 volumes
		t.Errorf("count(//m:*) = %v, want 9", r.Number())
	}
}

func TestTextNodes(t *testing.T) {
	r := evalStr(t, "//note/text()", nil)
	if r.Count() != 1 || r.String() != "hello world" {
		t.Errorf("text() = %d %q", r.Count(), r.String())
	}
}

func TestLangFunction(t *testing.T) {
	d := xmldom.MustParse(`<r xml:lang="en-US"><a/><b xml:lang="fr"><c/></b></r>`)
	a := d.ChildElements()[0]
	c := d.ChildElements()[1].ChildElements()[0]
	e := MustCompile("lang('en')")
	if r, _ := e.EvalAt(a); !r.Bool() {
		t.Error("lang('en') at <a> should be true via inherited en-US")
	}
	if r, _ := e.EvalAt(c); r.Bool() {
		t.Error("lang('en') at <c> should be false (fr)")
	}
	e2 := MustCompile("lang('fr')")
	if r, _ := e2.EvalAt(c); !r.Bool() {
		t.Error("lang('fr') at <c> should be true")
	}
}

func TestFilterExprWithPath(t *testing.T) {
	// FilterExpr '/' RelativeLocationPath: path from a parenthesised set.
	r := evalStr(t, "(//m:quote[@symbol='IBM'])/m:price", marketNS)
	if r.Count() != 1 || strings.TrimSpace(r.String()) != "83.5" {
		t.Errorf("filter-path = %d %q", r.Count(), r.String())
	}
	r2 := evalStr(t, "(//m:quote)[2]//m:volume", marketNS)
	if r2.Count() != 1 || strings.TrimSpace(r2.String()) != "4000" {
		t.Errorf("(//m:quote)[2]//m:volume = %d %q", r2.Count(), r2.String())
	}
}

func TestBareSlashSelectsRoot(t *testing.T) {
	r := evalStr(t, "/", nil)
	if r.Count() != 1 {
		t.Fatalf("/ selected %d nodes", r.Count())
	}
	if r.String() == "" {
		t.Error("root string-value should be document text")
	}
}

func TestConcurrentEval(t *testing.T) {
	e, _ := CompileNS("//m:quote[m:price > 20]", marketNS)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				r, err := e.Eval(doc)
				if err != nil || r.Count() != 2 {
					t.Errorf("concurrent eval: %v %d", err, r.Count())
					break
				}
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestExplicitAxisSyntax(t *testing.T) {
	cases := []struct {
		expr  string
		count int
	}{
		{"child::stock", 1},
		{"/child::stock/child::m:quote", 3},
		{"//m:price/parent::m:quote", 3},
		{"//m:price/ancestor-or-self::m:price", 3},
		{"//m:quote[1]/attribute::symbol", 1},
		{"/descendant::m:volume", 3},
		{"//m:quote[2]/self::m:quote", 1},
		{"//m:quote[2]/self::note", 0},
		{"//note/preceding-sibling::m:quote", 3},
		{"//m:quote[1]/following::note", 1},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			r := evalStr(t, tc.expr, marketNS)
			if r.Count() != tc.count {
				t.Errorf("%s: count = %d, want %d", tc.expr, r.Count(), tc.count)
			}
		})
	}
}

func TestNodeSetComparisons(t *testing.T) {
	// Node-set vs node-set and node-set vs number comparisons follow the
	// existential semantics.
	cases := []struct {
		expr string
		want bool
	}{
		{"//m:volume > //m:price", true}, // some volume beats some price
		{"//m:price = //m:price", true},  // reflexive existential
		{"//m:price > 1000", false},      // no price that large
		{"count(//m:quote[m:price > m:volume]) = 0", true},
		{"//m:quote/@symbol = //note/@lang", false},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			e, err := CompileNS(tc.expr, marketNS)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Matches(doc)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
			}
		})
	}
}

func TestNumericPredicateViaExpression(t *testing.T) {
	// position() arithmetic inside predicates.
	r := evalStr(t, "/stock/m:quote[position() = last() - 1]", marketNS)
	if r.Count() != 1 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Elements()[0].AttrValue(xmldom.N("", "symbol")); got != "MSFT" {
		t.Errorf("middle quote = %q", got)
	}
}

func TestFunctionArityAndArgumentErrors(t *testing.T) {
	// Arity violations and wrong argument kinds surface at eval time.
	evalErr := []string{
		"position(1)",
		"last(1)",
		"count()",
		"count(1, 2)",
		"boolean()",
		"not()",
		"local-name(1)",
		"namespace-uri('s')",
		"string(1, 2)",
		"concat('only')",
		"substring('x')",
		"translate('a', 'b')",
	}
	for _, src := range evalErr {
		e, err := Compile(src)
		if err != nil {
			continue // rejected at parse: also acceptable
		}
		if _, err := e.Eval(doc); err == nil {
			t.Errorf("%s evaluated without error", src)
		}
	}
}

func TestNodeArgDefaultsAndEmptySets(t *testing.T) {
	// Empty node-set arguments yield empty names, not errors.
	for _, src := range []string{"local-name(//missing)", "namespace-uri(//missing)", "name(//missing)"} {
		if got := evalStr(t, src, marketNS).String(); got != "" {
			t.Errorf("%s = %q, want empty", src, got)
		}
	}
	// No-argument forms use the context node.
	quote := doc.ChildElements()[0]
	e := MustCompile("local-name()")
	r, err := e.EvalAt(quote)
	if err != nil || r.String() != "quote" {
		t.Errorf("local-name() at quote = %q %v", r.String(), err)
	}
	e2 := MustCompile("string-length()")
	r2, _ := e2.EvalAt(quote)
	if r2.Number() <= 0 {
		t.Errorf("string-length() at quote = %v", r2.Number())
	}
	e3 := MustCompile("normalize-space()")
	r3, _ := e3.EvalAt(quote)
	if r3.String() == "" {
		t.Error("normalize-space() at quote empty")
	}
}

func TestResultAccessorsOnScalars(t *testing.T) {
	r := evalStr(t, "concat('a','b')", nil)
	if r.IsNodeSet() {
		t.Error("string result misreported as node-set")
	}
	if got := r.Strings(); len(got) != 1 || got[0] != "ab" {
		t.Errorf("Strings = %v", got)
	}
	rs := evalStr(t, "//m:price", marketNS)
	if !rs.IsNodeSet() {
		t.Error("node-set result misreported")
	}
}
