package xsdt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"PT5M", Duration{Clock: 5 * time.Minute}},
		{"PT30S", Duration{Clock: 30 * time.Second}},
		{"PT1.5S", Duration{Clock: 1500 * time.Millisecond}},
		{"PT2H", Duration{Clock: 2 * time.Hour}},
		{"P1D", Duration{Days: 1}},
		{"P1DT12H", Duration{Days: 1, Clock: 12 * time.Hour}},
		{"P1Y2M3DT4H5M6S", Duration{Years: 1, Months: 2, Days: 3, Clock: 4*time.Hour + 5*time.Minute + 6*time.Second}},
		{"-P30D", Duration{Negative: true, Days: 30}},
		{"P0D", Duration{}},
		{"PT0S", Duration{}},
	}
	for _, tc := range cases {
		got, err := ParseDuration(tc.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseDuration(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseDurationErrors(t *testing.T) {
	bad := []string{"", "P", "PT", "5M", "PT5", "P5", "PT5X", "P1M2Y", "PT1S2H", "PT1.5H", "P-5D", "Pfive", "PT5M3M"}
	for _, s := range bad {
		if _, err := ParseDuration(s); err == nil {
			t.Errorf("ParseDuration(%q) succeeded, want error", s)
		}
	}
}

func TestDurationAddTo(t *testing.T) {
	base := time.Date(2006, 2, 28, 12, 0, 0, 0, time.UTC) // paper-era date
	d, _ := ParseDuration("P1M")
	if got := d.AddTo(base); got != time.Date(2006, 3, 28, 12, 0, 0, 0, time.UTC) {
		t.Errorf("P1M AddTo = %v", got)
	}
	d2, _ := ParseDuration("PT36H")
	if got := d2.AddTo(base); got != base.Add(36*time.Hour) {
		t.Errorf("PT36H AddTo = %v", got)
	}
	d3, _ := ParseDuration("-P1D")
	if got := d3.AddTo(base); got != base.AddDate(0, 0, -1) {
		t.Errorf("-P1D AddTo = %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"PT5M", "PT5M"},
		{"P1DT12H", "P1DT12H"},
		{"P1Y2M3DT4H5M6S", "P1Y2M3DT4H5M6S"},
		{"PT1.5S", "PT1.5S"},
		{"-P30D", "-P30D"},
		{"P0D", "PT0S"}, // canonical zero
	}
	for _, tc := range cases {
		d, err := ParseDuration(tc.in)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.in, err)
		}
		if got := d.String(); got != tc.want {
			t.Errorf("String(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// Property: String then ParseDuration round-trips for durations built from
// non-negative components.
func TestPropertyDurationRoundTrip(t *testing.T) {
	f := func(y, m, dd uint8, secs uint32) bool {
		d := Duration{Years: int(y % 50), Months: int(m % 12), Days: int(dd % 31),
			Clock: time.Duration(secs%86400) * time.Second}
		back, err := ParseDuration(d.String())
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AddTo then subtracting the clock part restores the date shift.
func TestPropertyAddToMonotone(t *testing.T) {
	base := time.Date(2005, 6, 15, 8, 30, 0, 0, time.UTC)
	f := func(days uint8, secs uint16) bool {
		d := Duration{Days: int(days), Clock: time.Duration(secs) * time.Second}
		if d.IsZero() {
			return d.AddTo(base).Equal(base)
		}
		return d.AddTo(base).After(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDateTimeRoundTrip(t *testing.T) {
	ts := time.Date(2006, 2, 17, 23, 59, 59, 0, time.UTC)
	s := FormatDateTime(ts)
	if s != "2006-02-17T23:59:59Z" {
		t.Errorf("FormatDateTime = %q", s)
	}
	back, err := ParseDateTime(s)
	if err != nil || !back.Equal(ts) {
		t.Errorf("ParseDateTime(%q) = %v, %v", s, back, err)
	}
}

func TestParseDateTimeVariants(t *testing.T) {
	good := []string{
		"2006-02-17T23:59:59Z",
		"2006-02-17T23:59:59+05:00",
		"2006-02-17T23:59:59.25Z",
		"2006-02-17T23:59:59",
	}
	for _, s := range good {
		if _, err := ParseDateTime(s); err != nil {
			t.Errorf("ParseDateTime(%q): %v", s, err)
		}
	}
	bad := []string{"", "not-a-date", "2006-02-17", "23:59:59"}
	for _, s := range bad {
		if _, err := ParseDateTime(s); err == nil {
			t.Errorf("ParseDateTime(%q) succeeded", s)
		}
	}
}

func TestLooksLikeDuration(t *testing.T) {
	if !LooksLikeDuration("PT5M") || !LooksLikeDuration("-P1D") || !LooksLikeDuration("  PT1H") {
		t.Error("duration forms not detected")
	}
	if LooksLikeDuration("2006-02-17T23:59:59Z") || LooksLikeDuration("") {
		t.Error("non-durations misdetected")
	}
}

func TestFromGoDuration(t *testing.T) {
	d := FromGoDuration(90 * time.Minute)
	if d.Negative || d.Clock != 90*time.Minute {
		t.Errorf("FromGoDuration = %+v", d)
	}
	if d.String() != "PT1H30M" {
		t.Errorf("String = %q", d.String())
	}
	n := FromGoDuration(-time.Second)
	if !n.Negative || n.Clock != time.Second {
		t.Errorf("negative FromGoDuration = %+v", n)
	}
}
