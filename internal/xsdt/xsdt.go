// Package xsdt implements the XML Schema dateTime and duration lexical
// forms used by subscription expirations.
//
// Table 1 of the paper tracks exactly this capability: WS-Eventing always
// allowed "absolute time or duration" expirations, WS-Notification 1.0
// allowed only absolute time, and WS-Notification 1.3 adopted durations.
// The spec packages use this package to parse whichever form a subscriber
// sends and to gate the duration form by spec version.
package xsdt

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Duration is an XSD duration: calendar components (years, months, days)
// that need date arithmetic plus an exact sub-day component.
type Duration struct {
	Negative bool
	Years    int
	Months   int
	Days     int
	Clock    time.Duration // hours, minutes, (fractional) seconds
}

// IsZero reports an all-zero duration.
func (d Duration) IsZero() bool {
	return d.Years == 0 && d.Months == 0 && d.Days == 0 && d.Clock == 0
}

// AddTo applies the duration to an instant using calendar arithmetic for
// the Y/M/D part, as XSD requires.
func (d Duration) AddTo(t time.Time) time.Time {
	sign := 1
	if d.Negative {
		sign = -1
	}
	t = t.AddDate(sign*d.Years, sign*d.Months, sign*d.Days)
	return t.Add(time.Duration(sign) * d.Clock)
}

// String renders the canonical lexical form (P...T...).
func (d Duration) String() string {
	var sb strings.Builder
	if d.Negative {
		sb.WriteByte('-')
	}
	sb.WriteByte('P')
	if d.Years != 0 {
		fmt.Fprintf(&sb, "%dY", d.Years)
	}
	if d.Months != 0 {
		fmt.Fprintf(&sb, "%dM", d.Months)
	}
	if d.Days != 0 {
		fmt.Fprintf(&sb, "%dD", d.Days)
	}
	if d.Clock != 0 {
		sb.WriteByte('T')
		c := d.Clock
		if h := c / time.Hour; h > 0 {
			fmt.Fprintf(&sb, "%dH", h)
			c -= h * time.Hour
		}
		if m := c / time.Minute; m > 0 {
			fmt.Fprintf(&sb, "%dM", m)
			c -= m * time.Minute
		}
		if c > 0 {
			secs := float64(c) / float64(time.Second)
			s := strconv.FormatFloat(secs, 'f', -1, 64)
			fmt.Fprintf(&sb, "%sS", s)
		}
	}
	if sb.Len() == 1 || (d.Negative && sb.Len() == 2) {
		sb.WriteString("T0S") // canonical zero
	}
	return sb.String()
}

// FromGoDuration converts an exact Go duration (no calendar components).
func FromGoDuration(gd time.Duration) Duration {
	d := Duration{}
	if gd < 0 {
		d.Negative = true
		gd = -gd
	}
	d.Clock = gd
	return d
}

// ParseDuration parses the XSD duration lexical form, e.g. "PT5M",
// "P1DT12H", "P1Y2M3DT4H5M6.5S", "-P30D".
func ParseDuration(s string) (Duration, error) {
	orig := s
	var d Duration
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "-") {
		d.Negative = true
		s = s[1:]
	}
	if !strings.HasPrefix(s, "P") {
		return Duration{}, fmt.Errorf("xsdt: duration %q must start with 'P'", orig)
	}
	s = s[1:]
	if s == "" {
		return Duration{}, fmt.Errorf("xsdt: duration %q has no components", orig)
	}
	datePart, timePart := s, ""
	if i := strings.Index(s, "T"); i >= 0 {
		datePart, timePart = s[:i], s[i+1:]
		if timePart == "" {
			return Duration{}, fmt.Errorf("xsdt: duration %q has 'T' but no time components", orig)
		}
	}
	// Date components: Y, M, D in order.
	rest := datePart
	seen := map[byte]bool{}
	order := "YMD"
	lastIdx := -1
	for rest != "" {
		numEnd := 0
		for numEnd < len(rest) && rest[numEnd] >= '0' && rest[numEnd] <= '9' {
			numEnd++
		}
		if numEnd == 0 || numEnd == len(rest) {
			return Duration{}, fmt.Errorf("xsdt: malformed duration %q", orig)
		}
		n, err := strconv.Atoi(rest[:numEnd])
		if err != nil {
			return Duration{}, fmt.Errorf("xsdt: malformed duration %q: %v", orig, err)
		}
		unit := rest[numEnd]
		idx := strings.IndexByte(order, unit)
		if idx < 0 || seen[unit] || idx <= lastIdx {
			return Duration{}, fmt.Errorf("xsdt: bad component order in duration %q", orig)
		}
		seen[unit] = true
		lastIdx = idx
		switch unit {
		case 'Y':
			d.Years = n
		case 'M':
			d.Months = n
		case 'D':
			d.Days = n
		}
		rest = rest[numEnd+1:]
	}
	// Time components: H, M, S in order; S may be fractional.
	rest = timePart
	seenT := map[byte]bool{}
	orderT := "HMS"
	lastIdx = -1
	for rest != "" {
		numEnd := 0
		for numEnd < len(rest) && (rest[numEnd] >= '0' && rest[numEnd] <= '9' || rest[numEnd] == '.') {
			numEnd++
		}
		if numEnd == 0 || numEnd == len(rest) {
			return Duration{}, fmt.Errorf("xsdt: malformed duration %q", orig)
		}
		unit := rest[numEnd]
		idx := strings.IndexByte(orderT, unit)
		if idx < 0 || seenT[unit] || idx <= lastIdx {
			return Duration{}, fmt.Errorf("xsdt: bad time component order in duration %q", orig)
		}
		seenT[unit] = true
		lastIdx = idx
		if unit == 'S' {
			f, err := strconv.ParseFloat(rest[:numEnd], 64)
			if err != nil {
				return Duration{}, fmt.Errorf("xsdt: bad seconds in duration %q", orig)
			}
			d.Clock += time.Duration(f * float64(time.Second))
		} else {
			if strings.Contains(rest[:numEnd], ".") {
				return Duration{}, fmt.Errorf("xsdt: fractional %c in duration %q", unit, orig)
			}
			n, err := strconv.Atoi(rest[:numEnd])
			if err != nil {
				return Duration{}, fmt.Errorf("xsdt: malformed duration %q", orig)
			}
			switch unit {
			case 'H':
				d.Clock += time.Duration(n) * time.Hour
			case 'M':
				d.Clock += time.Duration(n) * time.Minute
			}
		}
		rest = rest[numEnd+1:]
	}
	if d.IsZero() && !strings.Contains(orig, "0") {
		return Duration{}, fmt.Errorf("xsdt: duration %q has no components", orig)
	}
	return d, nil
}

// FormatDateTime renders an instant in the XSD dateTime UTC form.
func FormatDateTime(t time.Time) string {
	return t.UTC().Format("2006-01-02T15:04:05Z")
}

// ParseDateTime parses XSD dateTime, accepting 'Z', numeric offsets and
// fractional seconds.
func ParseDateTime(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	layouts := []string{
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02T15:04:05.999999999Z07:00",
		"2006-01-02T15:04:05",
		"2006-01-02T15:04:05.999999999",
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("xsdt: cannot parse dateTime %q", s)
}

// LooksLikeDuration reports whether a lexical value is in duration form —
// how receivers distinguish the two expiration styles on the wire.
func LooksLikeDuration(s string) bool {
	s = strings.TrimSpace(s)
	return strings.HasPrefix(s, "P") || strings.HasPrefix(s, "-P")
}
