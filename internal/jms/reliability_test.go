package jms

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dispatch"
)

// TestDurableReliableRetryAndDeadLetter drives the reliable durable
// subscriber through an outage: retries per message, dead-lettering into
// the provider DLQ, and an in-order replay once the handler recovers.
func TestDurableReliableRetryAndDeadLetter(t *testing.T) {
	p := NewProvider()
	topic := p.Topic("audit")

	var mu sync.Mutex
	down := true
	var got []string
	err := topic.SubscribeDurableReliable("ledger", nil, ReliableOpts{
		Retry: &dispatch.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	}, func(m Message) error {
		mu.Lock()
		defer mu.Unlock()
		if down {
			return errors.New("ledger down")
		}
		got = append(got, m.Headers().MessageID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < 3; i++ {
		m := NewTextMessage("entry")
		if err := topic.Publish(m); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.Headers().MessageID)
	}

	if n := p.DeadLetterCount(); n != 3 {
		t.Fatalf("DeadLetterCount = %d, want 3", n)
	}
	letters := p.DeadLetters(0)
	if letters[0].Attempts != 2 || letters[0].Reason != "ledger down" {
		t.Fatalf("letter = %+v", letters[0])
	}

	mu.Lock()
	down = false
	mu.Unlock()
	if n := p.ReplayDeadLetters(0); n != 3 {
		t.Fatalf("replayed %d, want 3", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("handler saw %d messages", len(got))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("replay order: got %v, want %v", got, ids)
		}
	}
}

// TestDurableBreakerPausesIntoDurableBuffer pins the interplay between
// the circuit breaker and the durable pause buffer: an open breaker
// buffers into the same ring that holds messages while the subscriber is
// deactivated, and the cool-down probe drains it once the handler is
// healthy again.
func TestDurableBreakerPausesIntoDurableBuffer(t *testing.T) {
	p := NewProvider()
	topic := p.Topic("metrics")

	var mu sync.Mutex
	down := true
	var got int
	err := topic.SubscribeDurableReliable("collector", nil, ReliableOpts{
		Breaker: &dispatch.BreakerPolicy{Window: 2, FailureRate: 1, Cooldown: 10 * time.Millisecond},
	}, func(Message) error {
		mu.Lock()
		defer mu.Unlock()
		if down {
			return errors.New("collector down")
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two failures fill the window and open the breaker; both messages
	// dead-letter (single attempt, no retry policy).
	topic.Publish(NewTextMessage("a"))
	topic.Publish(NewTextMessage("b"))
	if state, ok := topic.DurableBreakerState("collector"); !ok || state != dispatch.BreakerOpen {
		t.Fatalf("breaker = %v (ok=%v), want open", state, ok)
	}
	if n := p.DeadLetterCount(); n != 2 {
		t.Fatalf("DeadLetterCount = %d, want 2", n)
	}

	// While open, publishes buffer — the DLQ must not grow.
	for i := 0; i < 4; i++ {
		topic.Publish(NewTextMessage("buffered"))
	}
	if n := p.DeadLetterCount(); n != 2 {
		t.Fatalf("DLQ grew to %d while breaker open", n)
	}

	// Recover: the cool-down probe closes the breaker and drains the
	// buffered backlog.
	mu.Lock()
	down = false
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("buffered backlog not drained after recovery: got %d/4", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if state, ok := topic.DurableBreakerState("collector"); !ok || state != dispatch.BreakerClosed {
		t.Fatalf("breaker = %v (ok=%v), want closed after recovery", state, ok)
	}
	// The two dead letters replay into the now-healthy handler too.
	if n := p.ReplayDeadLetters(0); n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
	p.eng.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if got != 6 {
		t.Fatalf("handler saw %d messages, want 6", got)
	}
}
