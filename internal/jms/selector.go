package jms

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Selector is a compiled JMS message selector: a conditional expression in
// the SQL92 subset JMS defines, evaluated over a message's header fields
// and properties. Table 3's "Filter language" row for JMS is exactly this.
type Selector struct {
	src  string
	root selNode
}

// ParseSelector compiles a selector expression. The empty string selects
// everything.
func ParseSelector(src string) (*Selector, error) {
	if strings.TrimSpace(src) == "" {
		return &Selector{src: src}, nil
	}
	toks, err := selLex(src)
	if err != nil {
		return nil, err
	}
	p := &selParser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != selEOF {
		return nil, fmt.Errorf("jms: selector: trailing input %q", p.cur().text)
	}
	return &Selector{src: src, root: root}, nil
}

// MustSelector compiles or panics; for fixed selectors in tests.
func MustSelector(src string) *Selector {
	s, err := ParseSelector(src)
	if err != nil {
		panic(err)
	}
	return s
}

// String returns the selector source.
func (s *Selector) String() string { return s.src }

// Matches evaluates the selector against a message using SQL
// three-valued logic; only a definite TRUE selects the message.
func (s *Selector) Matches(m Message) bool {
	if s.root == nil {
		return true
	}
	v := s.root.eval(m)
	b, ok := v.(bool)
	return ok && b
}

// --- lexer ---

type selTokKind int

const (
	selEOF selTokKind = iota
	selIdent
	selString
	selNumber
	selOp      // = <> < <= > >= + - * / ( ) ,
	selKeyword // AND OR NOT BETWEEN IN LIKE IS NULL ESCAPE TRUE FALSE
)

type selTok struct {
	kind selTokKind
	text string
}

var selKeywords = map[string]bool{
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "IS": true, "NULL": true, "ESCAPE": true,
	"TRUE": true, "FALSE": true,
}

func selLex(src string) ([]selTok, error) {
	var toks []selTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("jms: selector: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // '' escape
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, selTok{selString, sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E') {
				j++
			}
			toks = append(toks, selTok{selNumber, src[i:j]})
			i = j
		case c == '<':
			if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, selTok{selOp, "<>"})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, selTok{selOp, "<="})
				i += 2
			} else {
				toks = append(toks, selTok{selOp, "<"})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, selTok{selOp, ">="})
				i += 2
			} else {
				toks = append(toks, selTok{selOp, ">"})
				i++
			}
		case strings.IndexByte("=+-*/(),", c) >= 0:
			toks = append(toks, selTok{selOp, string(c)})
			i++
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || src[j] == '.' || src[j] == '$' ||
				unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			word := src[i:j]
			if selKeywords[strings.ToUpper(word)] {
				toks = append(toks, selTok{selKeyword, strings.ToUpper(word)})
			} else {
				toks = append(toks, selTok{selIdent, word})
			}
			i = j
		default:
			return nil, fmt.Errorf("jms: selector: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, selTok{selEOF, ""})
	return toks, nil
}

// --- parser / AST ---

type selNode interface{ eval(m Message) any }

type selParser struct {
	toks []selTok
	pos  int
}

func (p *selParser) cur() selTok { return p.toks[p.pos] }

func (p *selParser) advance() selTok {
	t := p.toks[p.pos]
	if t.kind != selEOF {
		p.pos++
	}
	return t
}

func (p *selParser) accept(kind selTokKind, text string) bool {
	if p.cur().kind == kind && p.cur().text == text {
		p.advance()
		return true
	}
	return false
}

func (p *selParser) parseOr() (selNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(selKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &selLogic{op: "OR", l: left, r: right}
	}
	return left, nil
}

func (p *selParser) parseAnd() (selNode, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(selKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &selLogic{op: "AND", l: left, r: right}
	}
	return left, nil
}

func (p *selParser) parseNot() (selNode, error) {
	if p.accept(selKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &selNot{inner}, nil
	}
	return p.parseComparison()
}

func (p *selParser) parseComparison() (selNode, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(selKeyword, "IS") {
		negate := p.accept(selKeyword, "NOT")
		if !p.accept(selKeyword, "NULL") {
			return nil, fmt.Errorf("jms: selector: expected NULL after IS")
		}
		return &selIsNull{operand: left, negate: negate}, nil
	}
	negate := false
	if p.cur().kind == selKeyword && p.cur().text == "NOT" {
		// lookahead for BETWEEN / IN / LIKE
		switch p.toks[p.pos+1].text {
		case "BETWEEN", "IN", "LIKE":
			p.advance()
			negate = true
		}
	}
	switch {
	case p.accept(selKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if !p.accept(selKeyword, "AND") {
			return nil, fmt.Errorf("jms: selector: expected AND in BETWEEN")
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &selBetween{v: left, lo: lo, hi: hi, negate: negate}, nil
	case p.accept(selKeyword, "IN"):
		if !p.accept(selOp, "(") {
			return nil, fmt.Errorf("jms: selector: expected '(' after IN")
		}
		var set []string
		for {
			if p.cur().kind != selString {
				return nil, fmt.Errorf("jms: selector: IN list must hold string literals")
			}
			set = append(set, p.advance().text)
			if !p.accept(selOp, ",") {
				break
			}
		}
		if !p.accept(selOp, ")") {
			return nil, fmt.Errorf("jms: selector: expected ')' after IN list")
		}
		return &selIn{v: left, set: set, negate: negate}, nil
	case p.accept(selKeyword, "LIKE"):
		if p.cur().kind != selString {
			return nil, fmt.Errorf("jms: selector: LIKE needs a string pattern")
		}
		pattern := p.advance().text
		escape := byte(0)
		if p.accept(selKeyword, "ESCAPE") {
			if p.cur().kind != selString || len(p.cur().text) != 1 {
				return nil, fmt.Errorf("jms: selector: ESCAPE needs a single-character string")
			}
			escape = p.advance().text[0]
		}
		return &selLike{v: left, pattern: pattern, escape: escape, negate: negate}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(selOp, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &selCompare{op: op, l: left, r: right}, nil
		}
	}
	return left, nil
}

func (p *selParser) parseAdditive() (selNode, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(selOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &selArith{op: "+", l: left, r: r}
		case p.accept(selOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &selArith{op: "-", l: left, r: r}
		default:
			return left, nil
		}
	}
}

func (p *selParser) parseMultiplicative() (selNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(selOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &selArith{op: "*", l: left, r: r}
		case p.accept(selOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &selArith{op: "/", l: left, r: r}
		default:
			return left, nil
		}
	}
}

func (p *selParser) parseUnary() (selNode, error) {
	if p.accept(selOp, "-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &selNeg{inner}, nil
	}
	p.accept(selOp, "+")
	return p.parsePrimary()
}

func (p *selParser) parsePrimary() (selNode, error) {
	t := p.cur()
	switch t.kind {
	case selString:
		p.advance()
		return selLit{t.text}, nil
	case selNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("jms: selector: bad number %q", t.text)
		}
		p.advance()
		return selLit{f}, nil
	case selKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return selLit{true}, nil
		case "FALSE":
			p.advance()
			return selLit{false}, nil
		}
	case selIdent:
		p.advance()
		return selIdentNode{t.text}, nil
	case selOp:
		if t.text == "(" {
			p.advance()
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(selOp, ")") {
				return nil, fmt.Errorf("jms: selector: expected ')'")
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("jms: selector: unexpected token %q", t.text)
}

// --- evaluation (SQL three-valued logic; nil = unknown) ---

type selLit struct{ v any }

func (l selLit) eval(Message) any { return l.v }

type selIdentNode struct{ name string }

func (id selIdentNode) eval(m Message) any {
	h := m.Headers()
	switch id.name {
	case "JMSPriority":
		return float64(h.Priority)
	case "JMSMessageID":
		return h.MessageID
	case "JMSCorrelationID":
		return h.CorrelationID
	case "JMSType":
		return h.Type
	case "JMSTimestamp":
		return float64(h.Timestamp.UnixMilli())
	case "JMSDeliveryMode":
		if h.DeliveryMode == Persistent {
			return "PERSISTENT"
		}
		return "NON_PERSISTENT"
	case "JMSRedelivered":
		return h.Redelivered
	}
	v, ok := m.Properties()[id.name]
	if !ok {
		return nil
	}
	switch t := v.(type) {
	case int:
		return float64(t)
	case int64:
		return float64(t)
	case float64, string, bool:
		return t
	}
	return nil
}

type selLogic struct {
	op   string
	l, r selNode
}

func (n *selLogic) eval(m Message) any {
	l := toTri(n.l.eval(m))
	r := toTri(n.r.eval(m))
	if n.op == "AND" {
		switch {
		case l == triFalse || r == triFalse:
			return false
		case l == triTrue && r == triTrue:
			return true
		}
		return nil
	}
	switch {
	case l == triTrue || r == triTrue:
		return true
	case l == triFalse && r == triFalse:
		return false
	}
	return nil
}

type tri int

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func toTri(v any) tri {
	if b, ok := v.(bool); ok {
		if b {
			return triTrue
		}
		return triFalse
	}
	return triUnknown
}

type selNot struct{ inner selNode }

func (n *selNot) eval(m Message) any {
	switch toTri(n.inner.eval(m)) {
	case triTrue:
		return false
	case triFalse:
		return true
	}
	return nil
}

type selCompare struct {
	op   string
	l, r selNode
}

func (n *selCompare) eval(m Message) any {
	l, r := n.l.eval(m), n.r.eval(m)
	if l == nil || r == nil {
		return nil
	}
	// String comparison only supports = and <>.
	ls, lok := l.(string)
	rs, rok := r.(string)
	if lok && rok {
		switch n.op {
		case "=":
			return ls == rs
		case "<>":
			return ls != rs
		}
		return nil
	}
	lb, lbok := l.(bool)
	rb, rbok := r.(bool)
	if lbok && rbok {
		switch n.op {
		case "=":
			return lb == rb
		case "<>":
			return lb != rb
		}
		return nil
	}
	lf, lok2 := toNum(l)
	rf, rok2 := toNum(r)
	if !lok2 || !rok2 {
		return nil // type mismatch is unknown
	}
	switch n.op {
	case "=":
		return lf == rf
	case "<>":
		return lf != rf
	case "<":
		return lf < rf
	case "<=":
		return lf <= rf
	case ">":
		return lf > rf
	case ">=":
		return lf >= rf
	}
	return nil
}

func toNum(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

type selArith struct {
	op   string
	l, r selNode
}

func (n *selArith) eval(m Message) any {
	lf, lok := toNum(n.l.eval(m))
	rf, rok := toNum(n.r.eval(m))
	if !lok || !rok {
		return nil
	}
	switch n.op {
	case "+":
		return lf + rf
	case "-":
		return lf - rf
	case "*":
		return lf * rf
	case "/":
		return lf / rf
	}
	return nil
}

type selNeg struct{ inner selNode }

func (n *selNeg) eval(m Message) any {
	if f, ok := toNum(n.inner.eval(m)); ok {
		return -f
	}
	return nil
}

type selIsNull struct {
	operand selNode
	negate  bool
}

func (n *selIsNull) eval(m Message) any {
	isNull := n.operand.eval(m) == nil
	if n.negate {
		return !isNull
	}
	return isNull
}

type selBetween struct {
	v, lo, hi selNode
	negate    bool
}

func (n *selBetween) eval(m Message) any {
	vf, vok := toNum(n.v.eval(m))
	lf, lok := toNum(n.lo.eval(m))
	hf, hok := toNum(n.hi.eval(m))
	if !vok || !lok || !hok {
		return nil
	}
	in := vf >= lf && vf <= hf
	if n.negate {
		return !in
	}
	return in
}

type selIn struct {
	v      selNode
	set    []string
	negate bool
}

func (n *selIn) eval(m Message) any {
	s, ok := n.v.eval(m).(string)
	if !ok {
		return nil
	}
	in := false
	for _, c := range n.set {
		if c == s {
			in = true
			break
		}
	}
	if n.negate {
		return !in
	}
	return in
}

type selLike struct {
	v       selNode
	pattern string
	escape  byte
	negate  bool
}

func (n *selLike) eval(m Message) any {
	s, ok := n.v.eval(m).(string)
	if !ok {
		return nil
	}
	match := likeMatch(s, n.pattern, n.escape)
	if n.negate {
		return !match
	}
	return match
}

// likeMatch implements SQL LIKE: '%' any sequence, '_' single character,
// with an optional escape character.
func likeMatch(s, pattern string, escape byte) bool {
	return likeRec([]rune(s), []rune(pattern), rune(escape))
}

func likeRec(s, p []rune, esc rune) bool {
	for len(p) > 0 {
		c := p[0]
		if esc != 0 && c == esc && len(p) > 1 {
			if len(s) == 0 || s[0] != p[1] {
				return false
			}
			s, p = s[1:], p[2:]
			continue
		}
		switch c {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p, esc) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != c {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}
