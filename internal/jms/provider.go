package jms

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/topics"
)

// topicNS is the namespace topic destinations are indexed under in the
// provider's dispatch engine.
const topicNS = "urn:jms"

// Provider is the in-process JMS-style provider: a registry of queues
// (point-to-point) and topics (publish/subscribe), with an append-only
// journal standing in for the persistent store behind Persistent-mode
// deliveries. Topic fan-out runs through one shared dispatch engine:
// every subscriber indexes under its topic name, so publishing touches
// only that topic's subscribers regardless of how many topics the
// provider hosts.
type Provider struct {
	eng     *dispatch.Engine
	mu      sync.Mutex
	queues  map[string]*Queue
	topics  map[string]*Topic
	journal []string // message ids journalled for persistence
	clock   func() time.Time
	closed  bool
}

// providerDLQCap bounds the provider's dead-letter queue; DropOldest keeps
// the newest failure evidence when a consumer stays down.
const providerDLQCap = 1024

// NewProvider builds an empty provider.
func NewProvider() *Provider {
	return NewProviderObs(nil)
}

// NewProviderObs builds an empty provider whose dispatch engine reports
// lifecycle metrics and sampled traces through rec (nil disables
// instrumentation). One recorder serves one provider.
func NewProviderObs(rec *obs.Recorder) *Provider {
	return &Provider{
		eng: dispatch.New(dispatch.Config{
			DLQCap:      providerDLQCap,
			DLQOverflow: dispatch.DropOldest,
			Obs:         rec,
		}),
		queues: map[string]*Queue{},
		topics: map[string]*Topic{},
		clock:  time.Now,
	}
}

// DeadLetterCount reports buffered dead letters across all topics.
func (p *Provider) DeadLetterCount() int { return p.eng.DLQLen() }

// DeadLetters copies up to max dead letters (all when max <= 0) without
// removing them.
func (p *Provider) DeadLetters(max int) []dispatch.DeadLetter {
	return p.eng.DeadLetters(max)
}

// ReplayDeadLetters redrives up to max dead letters (all when max <= 0)
// through their subscriptions, returning how many were requeued.
func (p *Provider) ReplayDeadLetters(max int) int {
	return p.eng.ReplayDeadLetters(max)
}

// WithClock injects a time source (tests).
func (p *Provider) WithClock(clock func() time.Time) *Provider {
	p.clock = clock
	return p
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("jms: provider closed")

// Close shuts the provider down.
func (p *Provider) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
}

// JournalLen reports how many persistent messages were journalled — the
// observable half of the persistence QoS.
func (p *Provider) JournalLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.journal)
}

func (p *Provider) journalIfPersistent(m Message) {
	if m.Headers().DeliveryMode != Persistent {
		return
	}
	p.mu.Lock()
	p.journal = append(p.journal, m.Headers().MessageID)
	p.mu.Unlock()
}

// stamp finalises the JMS-defined headers on send.
func (p *Provider) stamp(m Message, destination string) {
	h := m.Headers()
	if h.MessageID == "" {
		h.MessageID = nextMessageID()
	}
	h.Destination = destination
	h.Timestamp = p.clock()
}

// Queue returns (creating on demand) the named queue.
func (p *Provider) Queue(name string) *Queue {
	p.mu.Lock()
	defer p.mu.Unlock()
	q, ok := p.queues[name]
	if !ok {
		q = &Queue{name: name, provider: p}
		p.queues[name] = q
	}
	return q
}

// Topic returns (creating on demand) the named topic.
func (p *Provider) Topic(name string) *Topic {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.topics[name]
	if !ok {
		t = &Topic{name: name, provider: p, durable: map[string]*TopicSub{}, subs: map[int]*TopicSub{}}
		p.topics[name] = t
	}
	return t
}

// --- Point-to-point queues ---

// Queue is a point-to-point destination: each message is received by at
// most one consumer; messages wait until someone receives them.
type Queue struct {
	name     string
	provider *Provider
	mu       sync.Mutex
	messages []Message
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Send enqueues a message, honouring the priority QoS: higher priority
// messages are received first; equal priorities keep FIFO order (the
// message-order QoS).
func (q *Queue) Send(m Message) error {
	q.provider.mu.Lock()
	closed := q.provider.closed
	q.provider.mu.Unlock()
	if closed {
		return ErrClosed
	}
	q.provider.stamp(m, "queue://"+q.name)
	q.provider.journalIfPersistent(m)
	q.mu.Lock()
	defer q.mu.Unlock()
	q.messages = append(q.messages, m)
	sort.SliceStable(q.messages, func(i, j int) bool {
		return q.messages[i].Headers().Priority > q.messages[j].Headers().Priority
	})
	return nil
}

// Receive removes and returns the first message matching the selector
// (nil selector matches everything). Expired messages are discarded in
// passing. The boolean reports whether a message was available.
func (q *Queue) Receive(sel *Selector) (Message, bool) {
	now := q.provider.clock()
	q.mu.Lock()
	defer q.mu.Unlock()
	kept := q.messages[:0]
	var found Message
	for i, m := range q.messages {
		h := m.Headers()
		if !h.Expiration.IsZero() && now.After(h.Expiration) {
			continue // expired: discard
		}
		if found == nil && (sel == nil || sel.Matches(m)) {
			found = m
			continue
		}
		_ = i
		kept = append(kept, m)
	}
	q.messages = kept
	return found, found != nil
}

// Len reports queued message count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.messages)
}

// --- Publish/subscribe topics ---

// Topic is a publish/subscribe destination. Delivery runs through the
// provider's dispatch engine: each subscriber indexes under the topic
// name, durable subscribers buffer while deactivated via the engine's
// pause buffer (bounded at durableBufferCap, drop-oldest).
type Topic struct {
	name     string
	provider *Provider
	mu       sync.Mutex
	nextID   int
	subs     map[int]*TopicSub
	durable  map[string]*TopicSub
}

// durableBufferCap bounds a deactivated durable subscriber's buffer.
const durableBufferCap = 4096

// TopicSub is one subscription on a topic. For durable subscriptions the
// selector and handler can change across reactivations, so the dispatch
// closures read them under mu.
type TopicSub struct {
	engID string
	name  string // durable name, "" for non-durable

	// Reliability policy, fixed at first registration. A breaker on a
	// durable subscriber composes with the pause buffer: an open breaker
	// pauses delivery into the same ring that buffers while deactivated,
	// so no message is lost across either kind of outage.
	retry   *dispatch.RetryPolicy
	breaker *dispatch.BreakerPolicy

	mu         sync.Mutex
	selector   *Selector
	handler    func(Message)
	handlerErr func(Message) error // reliable variant; wins over handler
	active     bool
	dropped    int
}

// path returns the topic's index key in the provider's dispatch engine.
func (t *Topic) path() topics.Path {
	return topics.Path{Namespace: topicNS, Segments: []string{t.name}}
}

// subscribeEngine registers sub with the provider's engine, indexed under
// this topic.
func (t *Topic) subscribeEngine(sub *TopicSub, paused bool) {
	_ = t.provider.eng.Subscribe(dispatch.Sub{
		ID:       sub.engID,
		Selector: dispatch.ExactTopic(t.path()),
		Filter: func(m dispatch.Message) (bool, error) {
			sub.mu.Lock()
			sel := sub.selector
			sub.mu.Unlock()
			return sel == nil || sel.Matches(m.Payload.(Message)), nil
		},
		Prepare: func(m dispatch.Message) dispatch.Message {
			return dispatch.Message{Topic: m.Topic, Payload: m.Payload.(Message).clone()}
		},
		Mode: dispatch.Sync,
		Deliver: func(batch []dispatch.Message) error {
			sub.mu.Lock()
			h := sub.handler
			he := sub.handlerErr
			sub.mu.Unlock()
			m := batch[0].Payload.(Message)
			if he != nil {
				return he(m)
			}
			if h != nil {
				h(m)
			}
			return nil
		},
		Retry:       sub.retry,
		Breaker:     sub.breaker,
		PauseBuffer: true,
		Paused:      paused,
		QueueCap:    durableBufferCap,
		Overflow:    dispatch.DropOldest,
		OnDrop: func(n int) {
			sub.mu.Lock()
			sub.dropped += n
			sub.mu.Unlock()
		},
		FailureLimit: -1,
	})
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Subscribe registers a non-durable subscriber; cancel removes it.
func (t *Topic) Subscribe(sel *Selector, fn func(Message)) (cancel func()) {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	sub := &TopicSub{
		engID:    fmt.Sprintf("topic/%s#%d", t.name, id),
		selector: sel, handler: fn, active: true,
	}
	t.subs[id] = sub
	t.mu.Unlock()
	t.subscribeEngine(sub, false)
	return func() {
		t.mu.Lock()
		delete(t.subs, id)
		t.mu.Unlock()
		t.provider.eng.Unsubscribe(sub.engID)
	}
}

// SubscribeDurable registers (or reactivates) a named durable subscriber:
// messages published while it is disconnected buffer and are replayed on
// reactivation — the durability QoS of Table 3.
func (t *Topic) SubscribeDurable(name string, sel *Selector, fn func(Message)) error {
	t.mu.Lock()
	sub, ok := t.durable[name]
	if !ok {
		sub = &TopicSub{engID: fmt.Sprintf("topic/%s/durable/%s", t.name, name), name: name}
		t.durable[name] = sub
	}
	t.mu.Unlock()
	sub.mu.Lock()
	if sub.active {
		sub.mu.Unlock()
		return fmt.Errorf("jms: durable subscriber %q already active", name)
	}
	sub.selector = sel
	sub.handler = fn
	sub.handlerErr = nil
	sub.active = true
	sub.mu.Unlock()
	if !ok {
		t.subscribeEngine(sub, false)
		return nil
	}
	// Reactivation: the engine replays the offline buffer in order.
	t.provider.eng.Resume(sub.engID)
	return nil
}

// ReliableOpts carries the reliability policy of a reliable durable
// subscription.
type ReliableOpts struct {
	Retry   *dispatch.RetryPolicy
	Breaker *dispatch.BreakerPolicy
}

// SubscribeDurableReliable registers (or reactivates) a durable subscriber
// whose handler can fail. Failed deliveries retry per opts.Retry, then
// dead-letter into the provider's DLQ; a breaker (opts.Breaker) pauses
// delivery into the same bounded buffer used while the subscriber is
// deactivated, probing again after the cool-down. The policy is fixed at
// first registration; later reactivations may swap selector and handler
// but not the policy.
func (t *Topic) SubscribeDurableReliable(name string, sel *Selector, opts ReliableOpts, fn func(Message) error) error {
	t.mu.Lock()
	sub, ok := t.durable[name]
	if !ok {
		sub = &TopicSub{
			engID:   fmt.Sprintf("topic/%s/durable/%s", t.name, name),
			name:    name,
			retry:   opts.Retry,
			breaker: opts.Breaker,
		}
		t.durable[name] = sub
	}
	t.mu.Unlock()
	sub.mu.Lock()
	if sub.active {
		sub.mu.Unlock()
		return fmt.Errorf("jms: durable subscriber %q already active", name)
	}
	sub.selector = sel
	sub.handler = nil
	sub.handlerErr = fn
	sub.active = true
	sub.mu.Unlock()
	if !ok {
		t.subscribeEngine(sub, false)
		return nil
	}
	t.provider.eng.Resume(sub.engID)
	return nil
}

// DurableBreakerState reports the named durable subscriber's circuit
// breaker state; ok is false when the subscriber is unknown or has no
// breaker.
func (t *Topic) DurableBreakerState(name string) (state dispatch.BreakerState, ok bool) {
	t.mu.Lock()
	sub, found := t.durable[name]
	t.mu.Unlock()
	if !found {
		return 0, false
	}
	return t.provider.eng.BreakerState(sub.engID)
}

// Deactivate disconnects a durable subscriber; publishes buffer until it
// returns.
func (t *Topic) Deactivate(name string) error {
	t.mu.Lock()
	sub, ok := t.durable[name]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("jms: no durable subscriber %q", name)
	}
	sub.mu.Lock()
	sub.active = false
	sub.handler = nil
	sub.handlerErr = nil
	sub.mu.Unlock()
	t.provider.eng.Pause(sub.engID)
	return nil
}

// UnsubscribeDurable removes a durable subscription entirely.
func (t *Topic) UnsubscribeDurable(name string) error {
	t.mu.Lock()
	sub, ok := t.durable[name]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("jms: no durable subscriber %q", name)
	}
	delete(t.durable, name)
	t.mu.Unlock()
	t.provider.eng.Unsubscribe(sub.engID)
	return nil
}

// Publish delivers a message to every matching subscriber (buffering for
// inactive durable ones). Expired messages are dropped at publish time.
func (t *Topic) Publish(m Message) error {
	t.provider.mu.Lock()
	closed := t.provider.closed
	t.provider.mu.Unlock()
	if closed {
		return ErrClosed
	}
	t.provider.stamp(m, "topic://"+t.name)
	t.provider.journalIfPersistent(m)
	now := t.provider.clock()
	h := m.Headers()
	if !h.Expiration.IsZero() && now.After(h.Expiration) {
		return nil
	}
	t.provider.eng.Dispatch(dispatch.Message{Topic: t.path(), Payload: m})
	return nil
}

// SubscriberCount reports active (non-durable + durable) subscribers.
func (t *Topic) SubscriberCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.subs)
	for _, d := range t.durable {
		d.mu.Lock()
		if d.active {
			n++
		}
		d.mu.Unlock()
	}
	return n
}

// --- Transacted sessions ---

// Session groups sends; in transacted mode nothing reaches a destination
// until Commit, and Rollback discards the batch — the transaction QoS.
type Session struct {
	provider   *Provider
	transacted bool
	mu         sync.Mutex
	pending    []func() error
}

// NewSession opens a session.
func (p *Provider) NewSession(transacted bool) *Session {
	return &Session{provider: p, transacted: transacted}
}

// SendQueue sends to a queue through the session.
func (s *Session) SendQueue(queue string, m Message) error {
	q := s.provider.Queue(queue)
	if !s.transacted {
		return q.Send(m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, func() error { return q.Send(m) })
	return nil
}

// Publish sends to a topic through the session.
func (s *Session) Publish(topic string, m Message) error {
	t := s.provider.Topic(topic)
	if !s.transacted {
		return t.Publish(m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, func() error { return t.Publish(m) })
	return nil
}

// Commit flushes the pending batch in order.
func (s *Session) Commit() error {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, send := range batch {
		if err := send(); err != nil {
			return err
		}
	}
	return nil
}

// Rollback discards the pending batch.
func (s *Session) Rollback() {
	s.mu.Lock()
	s.pending = nil
	s.mu.Unlock()
}

// PendingLen reports buffered sends (probe/test hook).
func (s *Session) PendingLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}
