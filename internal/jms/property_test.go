package jms

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// refLike compiles a LIKE pattern to a regexp, as an independent
// reference implementation.
func refLike(s, pattern string, escape byte) bool {
	var sb strings.Builder
	sb.WriteString("^")
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if escape != 0 && c == escape && i+1 < len(pattern) {
			sb.WriteString(regexp.QuoteMeta(string(pattern[i+1])))
			i++
			continue
		}
		switch c {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile("(?s)" + sb.String())
	if err != nil {
		return false
	}
	return re.MatchString(s)
}

// Property: likeMatch agrees with the regexp reference on ASCII inputs.
func TestPropertyLikeAgreesWithRegexp(t *testing.T) {
	alphabet := []byte("ab%_c")
	f := func(sIdx, pIdx []uint8) bool {
		if len(sIdx) > 12 || len(pIdx) > 8 {
			return true
		}
		var s, p strings.Builder
		for _, i := range sIdx {
			c := alphabet[int(i)%len(alphabet)]
			if c == '%' || c == '_' {
				c = 'x'
			}
			s.WriteByte(c)
		}
		for _, i := range pIdx {
			p.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		return likeMatch(s.String(), p.String(), 0) == refLike(s.String(), p.String(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: every parsed selector evaluates without panicking on
// arbitrary property sets, and an empty selector accepts everything.
func TestPropertySelectorTotality(t *testing.T) {
	selectors := []string{
		"a = 1", "a > b", "a LIKE 'x%'", "a BETWEEN 1 AND 10",
		"a IN ('p','q') OR b IS NULL", "NOT (a = 1 AND b = 2)",
		"a + b * 2 >= c - 1", "JMSPriority > 3 AND a <> 'z'",
	}
	f := func(selIdx uint8, propKind []uint8) bool {
		m := NewTextMessage("t")
		for i, k := range propKind {
			name := string(rune('a' + i%3))
			switch k % 4 {
			case 0:
				m.Properties()[name] = float64(k)
			case 1:
				m.Properties()[name] = fmt.Sprint(k)
			case 2:
				m.Properties()[name] = k%2 == 0
			case 3:
				// leave absent
			}
		}
		sel := MustSelector(selectors[int(selIdx)%len(selectors)])
		_ = sel.Matches(m) // must not panic
		return MustSelector("").Matches(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: NOT inverts definite selectors (those whose identifiers are
// all present), per three-valued logic.
func TestPropertyNotInvertsDefinite(t *testing.T) {
	f := func(price float64, symIdx uint8) bool {
		m := NewTextMessage("t")
		m.Properties()["price"] = price
		m.Properties()["symbol"] = []string{"IBM", "MSFT", "SUNW"}[int(symIdx)%3]
		pos := MustSelector("price > 50 AND symbol = 'IBM'")
		neg := MustSelector("NOT (price > 50 AND symbol = 'IBM')")
		return pos.Matches(m) == !neg.Matches(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: queue drains in priority-then-FIFO order for arbitrary
// priority sequences.
func TestPropertyQueuePriorityOrder(t *testing.T) {
	f := func(prios []uint8) bool {
		if len(prios) > 30 {
			prios = prios[:30]
		}
		p := NewProvider()
		q := p.Queue("q")
		for i, pr := range prios {
			m := NewTextMessage(fmt.Sprint(i))
			m.Headers().Priority = int(pr % 10)
			q.Send(m)
		}
		lastPrio := 10
		seen := map[int]int{} // priority -> last seq seen
		for {
			m, ok := q.Receive(nil)
			if !ok {
				break
			}
			pr := m.Headers().Priority
			if pr > lastPrio {
				return false // priority order violated
			}
			lastPrio = pr
			var seq int
			fmt.Sscan(m.(*TextMessage).Text, &seq)
			if prev, ok := seen[pr]; ok && seq < prev {
				return false // FIFO within priority violated
			}
			seen[pr] = seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
