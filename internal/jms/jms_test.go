package jms

import (
	"sync"
	"testing"
	"time"
)

func textWith(props map[string]any, prio int) *TextMessage {
	m := NewTextMessage("body")
	for k, v := range props {
		m.Properties()[k] = v
	}
	m.Headers().Priority = prio
	return m
}

// --- Selector tests ---

func TestSelectorBasics(t *testing.T) {
	m := textWith(map[string]any{
		"symbol": "IBM", "price": 83.5, "volume": int64(1200), "active": true,
	}, 4)
	m.Headers().Type = "quote"
	cases := []struct {
		sel  string
		want bool
	}{
		{"", true},
		{"symbol = 'IBM'", true},
		{"symbol = 'MSFT'", false},
		{"symbol <> 'MSFT'", true},
		{"price > 80", true},
		{"price > 80 AND volume > 1000", true},
		{"price > 80 AND volume > 2000", false},
		{"price > 100 OR volume > 1000", true},
		{"NOT (price > 100)", true},
		{"price BETWEEN 80 AND 90", true},
		{"price BETWEEN 90 AND 100", false},
		{"price NOT BETWEEN 90 AND 100", true},
		{"symbol IN ('IBM', 'MSFT')", true},
		{"symbol IN ('SUNW')", false},
		{"symbol NOT IN ('SUNW')", true},
		{"symbol LIKE 'I%'", true},
		{"symbol LIKE '_BM'", true},
		{"symbol LIKE 'X%'", false},
		{"symbol NOT LIKE 'X%'", true},
		{"missing IS NULL", true},
		{"missing IS NOT NULL", false},
		{"symbol IS NOT NULL", true},
		{"active = TRUE", true},
		{"active = FALSE", false},
		{"price * 2 > 160", true},
		{"price + 10 <= 95", true},
		{"-price < 0", true},
		{"price / 2 = 41.75", true},
		{"JMSPriority = 4", true},
		{"JMSPriority >= 5", false},
		{"JMSType = 'quote'", true},
		{"JMSDeliveryMode = 'NON_PERSISTENT'", true},
	}
	for _, tc := range cases {
		t.Run(tc.sel, func(t *testing.T) {
			sel, err := ParseSelector(tc.sel)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := sel.Matches(m); got != tc.want {
				t.Errorf("%q = %v, want %v", tc.sel, got, tc.want)
			}
		})
	}
}

func TestSelectorThreeValuedLogic(t *testing.T) {
	m := textWith(map[string]any{"a": 1.0}, 4)
	// Unknown (missing property) propagates; NOT unknown = unknown; a
	// selector only matches on definite TRUE.
	for _, sel := range []string{
		"missing > 5",
		"NOT (missing > 5)",
		"missing = 'x' AND a = 1",
		"missing LIKE 'x%'",
		"missing BETWEEN 1 AND 2",
	} {
		if MustSelector(sel).Matches(m) {
			t.Errorf("%q matched despite unknown", sel)
		}
	}
	// But OR with a true arm matches.
	if !MustSelector("missing > 5 OR a = 1").Matches(m) {
		t.Error("OR with true arm should match")
	}
}

func TestSelectorStringEscapes(t *testing.T) {
	m := textWith(map[string]any{"note": "it's 100%"}, 4)
	if !MustSelector("note = 'it''s 100%'").Matches(m) {
		t.Error("quoted '' escape failed")
	}
	if !MustSelector(`note LIKE 'it''s 100x%' ESCAPE 'x'`).Matches(m) {
		t.Error("LIKE escape failed")
	}
}

func TestSelectorTypeMismatchIsUnknown(t *testing.T) {
	m := textWith(map[string]any{"s": "abc"}, 4)
	if MustSelector("s > 5").Matches(m) {
		t.Error("string/number comparison should be unknown")
	}
	if MustSelector("s < 5").Matches(m) {
		t.Error("string/number comparison should be unknown")
	}
}

func TestSelectorParseErrors(t *testing.T) {
	bad := []string{
		"price >", "AND price", "price BETWEEN 1", "symbol IN (5)",
		"symbol LIKE 5", "symbol IN ()", "(price > 5", "price !! 5",
		"'unterminated", "price IS 5", "x LIKE 'a' ESCAPE 'ab'",
	}
	for _, s := range bad {
		if _, err := ParseSelector(s); err == nil {
			t.Errorf("ParseSelector(%q) succeeded", s)
		}
	}
}

// --- Message type tests ---

func TestFiveMessageTypes(t *testing.T) {
	msgs := []Message{
		NewTextMessage("t"),
		NewBytesMessage([]byte{1, 2}),
		NewMapMessage(),
		NewStreamMessage(),
		NewObjectMessage(42),
	}
	wantTypes := []string{"TextMessage", "BytesMessage", "MapMessage", "StreamMessage", "ObjectMessage"}
	for i, m := range msgs {
		if m.TypeName() != wantTypes[i] {
			t.Errorf("type[%d] = %s, want %s", i, m.TypeName(), wantTypes[i])
		}
	}
}

func TestStreamMessageReadWrite(t *testing.T) {
	m := NewStreamMessage()
	m.Write("a")
	m.Write(1.5)
	if v, ok := m.Read(); !ok || v != "a" {
		t.Errorf("read 1 = %v %v", v, ok)
	}
	if v, ok := m.Read(); !ok || v != 1.5 {
		t.Errorf("read 2 = %v %v", v, ok)
	}
	if _, ok := m.Read(); ok {
		t.Error("exhausted stream returned value")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMapMessage()
	m.Body["k"] = "v"
	m.Properties()["p"] = int64(1)
	cp := m.clone().(*MapMessage)
	cp.Body["k"] = "changed"
	cp.Properties()["p"] = int64(2)
	if m.Body["k"] != "v" || m.Properties()["p"] != int64(1) {
		t.Error("clone shares state with original")
	}
}

// --- Queue tests ---

func TestQueuePointToPoint(t *testing.T) {
	p := NewProvider()
	q := p.Queue("orders")
	q.Send(NewTextMessage("first"))
	q.Send(NewTextMessage("second"))
	// Competing consumers: each message to exactly one receiver.
	m1, ok1 := q.Receive(nil)
	m2, ok2 := q.Receive(nil)
	_, ok3 := q.Receive(nil)
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("receives = %v %v %v", ok1, ok2, ok3)
	}
	if m1.(*TextMessage).Text != "first" || m2.(*TextMessage).Text != "second" {
		t.Error("FIFO order violated")
	}
	if m1.Headers().MessageID == "" || m1.Headers().Destination != "queue://orders" {
		t.Errorf("headers not stamped: %+v", m1.Headers())
	}
}

func TestQueuePriorityOrdering(t *testing.T) {
	p := NewProvider()
	q := p.Queue("q")
	q.Send(textWith(nil, 1))
	q.Send(textWith(nil, 9))
	q.Send(textWith(nil, 5))
	var prios []int
	for {
		m, ok := q.Receive(nil)
		if !ok {
			break
		}
		prios = append(prios, m.Headers().Priority)
	}
	if len(prios) != 3 || prios[0] != 9 || prios[1] != 5 || prios[2] != 1 {
		t.Errorf("priority order = %v", prios)
	}
}

func TestQueueSelectiveReceive(t *testing.T) {
	p := NewProvider()
	q := p.Queue("q")
	q.Send(textWith(map[string]any{"region": "US"}, 4))
	q.Send(textWith(map[string]any{"region": "EU"}, 4))
	m, ok := q.Receive(MustSelector("region = 'EU'"))
	if !ok || m.Properties()["region"] != "EU" {
		t.Fatalf("selective receive = %v %v", m, ok)
	}
	if q.Len() != 1 {
		t.Error("non-matching message should remain queued")
	}
}

func TestQueueExpiration(t *testing.T) {
	now := time.Date(2006, 2, 1, 0, 0, 0, 0, time.UTC)
	p := NewProvider().WithClock(func() time.Time { return now })
	q := p.Queue("q")
	m := NewTextMessage("stale")
	m.Headers().Expiration = now.Add(time.Minute)
	q.Send(m)
	now = now.Add(2 * time.Minute)
	if _, ok := q.Receive(nil); ok {
		t.Error("expired message delivered")
	}
	if q.Len() != 0 {
		t.Error("expired message not discarded")
	}
}

// --- Topic tests ---

func TestTopicPubSub(t *testing.T) {
	p := NewProvider()
	tp := p.Topic("quotes")
	var got []string
	cancel := tp.Subscribe(MustSelector("price > 50"), func(m Message) {
		got = append(got, m.(*TextMessage).Text)
	})
	hi := NewTextMessage("high")
	hi.Properties()["price"] = 80.0
	lo := NewTextMessage("low")
	lo.Properties()["price"] = 10.0
	tp.Publish(hi)
	tp.Publish(lo)
	if len(got) != 1 || got[0] != "high" {
		t.Errorf("got %v", got)
	}
	cancel()
	tp.Publish(hi)
	if len(got) != 1 {
		t.Error("cancelled subscriber still delivered")
	}
}

func TestTopicFanOutIsolation(t *testing.T) {
	p := NewProvider()
	tp := p.Topic("t")
	var m1, m2 Message
	tp.Subscribe(nil, func(m Message) { m1 = m })
	tp.Subscribe(nil, func(m Message) { m2 = m })
	orig := NewMapMessage()
	orig.Body["k"] = "v"
	tp.Publish(orig)
	if m1 == m2 {
		t.Error("subscribers share one message instance")
	}
	m1.(*MapMessage).Body["k"] = "mutated"
	if m2.(*MapMessage).Body["k"] != "v" {
		t.Error("fan-out clones share state")
	}
}

func TestDurableSubscriberBuffersOffline(t *testing.T) {
	p := NewProvider()
	tp := p.Topic("t")
	var got []string
	rec := func(m Message) { got = append(got, m.(*TextMessage).Text) }
	if err := tp.SubscribeDurable("audit", nil, rec); err != nil {
		t.Fatal(err)
	}
	tp.Publish(NewTextMessage("one"))
	if err := tp.Deactivate("audit"); err != nil {
		t.Fatal(err)
	}
	tp.Publish(NewTextMessage("two"))   // buffered
	tp.Publish(NewTextMessage("three")) // buffered
	if len(got) != 1 {
		t.Fatalf("offline delivery happened: %v", got)
	}
	if err := tp.SubscribeDurable("audit", nil, rec); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != "two" || got[2] != "three" {
		t.Errorf("replay = %v", got)
	}
	// Double activation errors.
	if err := tp.SubscribeDurable("audit", nil, rec); err == nil {
		t.Error("double activation accepted")
	}
	if err := tp.UnsubscribeDurable("audit"); err != nil {
		t.Fatal(err)
	}
	if err := tp.UnsubscribeDurable("audit"); err == nil {
		t.Error("double unsubscribe accepted")
	}
}

func TestTransactedSession(t *testing.T) {
	p := NewProvider()
	tp := p.Topic("t")
	var got int
	tp.Subscribe(nil, func(Message) { got++ })
	s := p.NewSession(true)
	s.Publish("t", NewTextMessage("a"))
	s.Publish("t", NewTextMessage("b"))
	s.SendQueue("q", NewTextMessage("c"))
	if got != 0 || p.Queue("q").Len() != 0 {
		t.Fatal("transacted sends leaked before commit")
	}
	if s.PendingLen() != 3 {
		t.Errorf("pending = %d", s.PendingLen())
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got != 2 || p.Queue("q").Len() != 1 {
		t.Errorf("after commit: topic=%d queue=%d", got, p.Queue("q").Len())
	}
	// Rollback discards.
	s2 := p.NewSession(true)
	s2.Publish("t", NewTextMessage("x"))
	s2.Rollback()
	s2.Commit()
	if got != 2 {
		t.Error("rollback leaked")
	}
	// Non-transacted session sends immediately.
	s3 := p.NewSession(false)
	s3.Publish("t", NewTextMessage("now"))
	if got != 3 {
		t.Error("non-transacted send deferred")
	}
}

func TestPersistenceJournal(t *testing.T) {
	p := NewProvider()
	q := p.Queue("q")
	m := NewTextMessage("durable")
	m.Headers().DeliveryMode = Persistent
	q.Send(m)
	q.Send(NewTextMessage("volatile"))
	if p.JournalLen() != 1 {
		t.Errorf("journal = %d, want 1", p.JournalLen())
	}
}

func TestProviderClose(t *testing.T) {
	p := NewProvider()
	p.Close()
	if err := p.Queue("q").Send(NewTextMessage("x")); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
	if err := p.Topic("t").Publish(NewTextMessage("x")); err != ErrClosed {
		t.Errorf("publish after close = %v", err)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	p := NewProvider()
	tp := p.Topic("t")
	var mu sync.Mutex
	count := 0
	tp.Subscribe(nil, func(Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tp.Publish(NewTextMessage("m"))
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != 400 {
		t.Errorf("count = %d", count)
	}
}
