// Package jms implements a Java Message Service-style in-process
// messaging system: the 1998-era baseline in the paper's Table 3.
//
// It reproduces the JMS traits the paper compares: the two messaging
// styles (point-to-point queues and publish/subscribe topics), the five
// message types (Text/Bytes/Map/Stream/Object), header-field-plus-property
// selectors in the SQL92 conditional-expression subset, and the QoS
// vocabulary (priority, persistence, durable subscriptions, transactions,
// message order). Its platform-boundness — "only works on Java platforms"
// — is mirrored by the fact that this fabric only moves in-process Go
// values, not wire messages; the backend adapter wraps it behind the
// WS-Messenger front doors exactly as §VII describes.
package jms

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DeliveryMode is the JMS persistence flag.
type DeliveryMode int

const (
	// NonPersistent messages may be lost on provider failure.
	NonPersistent DeliveryMode = iota
	// Persistent messages are journalled before acknowledgement.
	Persistent
)

// Headers are the JMS-defined header fields carried by every message.
type Headers struct {
	MessageID     string
	Destination   string
	Timestamp     time.Time
	CorrelationID string
	ReplyTo       string
	Type          string
	Priority      int // 0..9, 4 is normal
	DeliveryMode  DeliveryMode
	Expiration    time.Time // zero = never expires
	Redelivered   bool
}

// Message is the interface of all five JMS message types.
type Message interface {
	// Headers returns the mutable header block.
	Headers() *Headers
	// Properties returns the application property map consulted by
	// selectors. Values are string, bool, int64 or float64.
	Properties() map[string]any
	// TypeName returns the JMS type name (e.g. "TextMessage").
	TypeName() string
	// clone returns an independent copy for fan-out.
	clone() Message
}

// base carries the common implementation.
type base struct {
	hdr   Headers
	props map[string]any
}

func newBase() base { return base{props: map[string]any{}} }

func (b *base) Headers() *Headers          { return &b.hdr }
func (b *base) Properties() map[string]any { return b.props }

func (b base) cloneBase() base {
	cp := b
	cp.props = make(map[string]any, len(b.props))
	for k, v := range b.props {
		cp.props[k] = v
	}
	return cp
}

// TextMessage carries a string payload.
type TextMessage struct {
	base
	Text string
}

// NewTextMessage builds a text message.
func NewTextMessage(text string) *TextMessage {
	return &TextMessage{base: newBase(), Text: text}
}

// TypeName implements Message.
func (m *TextMessage) TypeName() string { return "TextMessage" }

func (m *TextMessage) clone() Message {
	return &TextMessage{base: m.cloneBase(), Text: m.Text}
}

// BytesMessage carries raw bytes.
type BytesMessage struct {
	base
	Data []byte
}

// NewBytesMessage builds a bytes message.
func NewBytesMessage(data []byte) *BytesMessage {
	return &BytesMessage{base: newBase(), Data: data}
}

// TypeName implements Message.
func (m *BytesMessage) TypeName() string { return "BytesMessage" }

func (m *BytesMessage) clone() Message {
	cp := make([]byte, len(m.Data))
	copy(cp, m.Data)
	return &BytesMessage{base: m.cloneBase(), Data: cp}
}

// MapMessage carries name/value pairs.
type MapMessage struct {
	base
	Body map[string]any
}

// NewMapMessage builds a map message.
func NewMapMessage() *MapMessage {
	return &MapMessage{base: newBase(), Body: map[string]any{}}
}

// TypeName implements Message.
func (m *MapMessage) TypeName() string { return "MapMessage" }

func (m *MapMessage) clone() Message {
	body := make(map[string]any, len(m.Body))
	for k, v := range m.Body {
		body[k] = v
	}
	return &MapMessage{base: m.cloneBase(), Body: body}
}

// StreamMessage carries an ordered sequence of primitive values.
type StreamMessage struct {
	base
	Items []any
	pos   int
}

// NewStreamMessage builds a stream message.
func NewStreamMessage() *StreamMessage {
	return &StreamMessage{base: newBase()}
}

// TypeName implements Message.
func (m *StreamMessage) TypeName() string { return "StreamMessage" }

// Write appends a value to the stream.
func (m *StreamMessage) Write(v any) { m.Items = append(m.Items, v) }

// Read returns the next value, or false when exhausted.
func (m *StreamMessage) Read() (any, bool) {
	if m.pos >= len(m.Items) {
		return nil, false
	}
	v := m.Items[m.pos]
	m.pos++
	return v, true
}

func (m *StreamMessage) clone() Message {
	items := make([]any, len(m.Items))
	copy(items, m.Items)
	return &StreamMessage{base: m.cloneBase(), Items: items}
}

// ObjectMessage carries an arbitrary (serialisable) object.
type ObjectMessage struct {
	base
	Object any
}

// NewObjectMessage builds an object message.
func NewObjectMessage(obj any) *ObjectMessage {
	return &ObjectMessage{base: newBase(), Object: obj}
}

// TypeName implements Message.
func (m *ObjectMessage) TypeName() string { return "ObjectMessage" }

func (m *ObjectMessage) clone() Message {
	return &ObjectMessage{base: m.cloneBase(), Object: m.Object}
}

var msgCounter atomic.Uint64

func nextMessageID() string {
	return fmt.Sprintf("ID:jms-%d", msgCounter.Add(1))
}
