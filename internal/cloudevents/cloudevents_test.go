package cloudevents

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/topics"
	"repro/internal/xmldom"
)

func sampleEvent() *Event {
	e := &Event{
		SpecVersion:     SpecVersion,
		ID:              "urn:uuid:wsm-1",
		Source:          "http://broker.example/",
		Type:            "{urn:gridmon}disk/full",
		Subject:         "node-7",
		Time:            "2026-08-08T12:00:00Z",
		DataContentType: "application/json",
		Data:            json.RawMessage(`{"free":0}`),
	}
	e.SetRelay("broker-a", "urn:uuid:wsm-9", 2, 41)
	return e
}

func TestJSONRoundTrip(t *testing.T) {
	e := sampleEvent()
	raw := e.JSON()
	if !json.Valid(raw) {
		t.Fatalf("invalid JSON: %s", raw)
	}
	got, err := ParseJSON(raw)
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if got.ID != e.ID || got.Source != e.Source || got.Type != e.Type ||
		got.Subject != e.Subject || got.Time != e.Time ||
		got.DataContentType != e.DataContentType {
		t.Fatalf("context attrs mismatch: %+v vs %+v", got, e)
	}
	if !bytes.Equal(got.Data, e.Data) || got.DataBase64 {
		t.Fatalf("data mismatch: %s", got.Data)
	}
	origin, id, hops, pos, ok := got.Relay()
	if !ok || origin != "broker-a" || id != "urn:uuid:wsm-9" || hops != 2 || pos != 41 {
		t.Fatalf("relay mismatch: %s %s %d %d %v", origin, id, hops, pos, ok)
	}
}

func TestJSONDeterministic(t *testing.T) {
	e := sampleEvent()
	a, b := e.JSON(), e.JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("serialisation not deterministic:\n%s\n%s", a, b)
	}
}

func TestBinaryDataRoundTrip(t *testing.T) {
	e := &Event{SpecVersion: SpecVersion, ID: "i", Source: "s", Type: "t",
		Data: []byte{0x00, 0xFF, 0x10}, DataBase64: true}
	got, err := ParseJSON(e.JSON())
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if !got.DataBase64 || !bytes.Equal(got.Data, e.Data) {
		t.Fatalf("data_base64 round trip: %v %v", got.DataBase64, got.Data)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	events := []*Event{sampleEvent(), {SpecVersion: SpecVersion, ID: "b", Source: "s", Type: "t"}}
	raw := AppendBatchJSON(nil, events)
	got, err := ParseBatchJSON(raw)
	if err != nil {
		t.Fatalf("ParseBatchJSON: %v", err)
	}
	if len(got) != 2 || got[0].ID != "urn:uuid:wsm-1" || got[1].ID != "b" {
		t.Fatalf("batch mismatch: %+v", got)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	for name, raw := range map[string]string{
		"not json":       `{`,
		"missing id":     `{"specversion":"1.0","source":"s","type":"t"}`,
		"missing source": `{"specversion":"1.0","id":"i","type":"t"}`,
		"missing type":   `{"specversion":"1.0","id":"i","source":"s"}`,
		"bad version":    `{"specversion":"0.3","id":"i","source":"s","type":"t"}`,
		"non-string id":  `{"specversion":"1.0","id":7,"source":"s","type":"t"}`,
	} {
		if _, err := ParseJSON([]byte(raw)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestNumericExtensionCanonicalises(t *testing.T) {
	got, err := ParseJSON([]byte(`{"specversion":"1.0","id":"i","source":"s","type":"t","wsmrelayhops":3}`))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if got.Extension(ExtRelayHops) != "3" {
		t.Fatalf("extension = %q, want 3", got.Extension(ExtRelayHops))
	}
}

func TestTopicTypeMapping(t *testing.T) {
	p := topics.NewPath("urn:gridmon", "disk", "full")
	ct := TypeForTopic(p)
	if ct != "{urn:gridmon}disk/full" {
		t.Fatalf("TypeForTopic = %q", ct)
	}
	if back := TopicForType(ct); !back.Equal(p) {
		t.Fatalf("TopicForType = %v, want %v", back, p)
	}
	if !TopicForType("com.example.something.odd here").IsZero() {
		t.Fatal("unparsable type should yield zero topic")
	}
	if TypeForTopic(topics.Path{}) == "" {
		t.Fatal("zero topic needs a non-empty default type")
	}
}

func TestBinaryModeRoundTrip(t *testing.T) {
	e := sampleEvent()
	hdr, ct, body := e.BinaryHeaders()
	h := http.Header{}
	for k, v := range hdr {
		h.Set(k, v)
	}
	h.Set("Content-Type", ct)
	if !IsBinaryRequest(h) {
		t.Fatal("IsBinaryRequest should detect ce-specversion")
	}
	got, err := FromBinary(h, body)
	if err != nil {
		t.Fatalf("FromBinary: %v", err)
	}
	if got.ID != e.ID || got.Type != e.Type || got.Source != e.Source {
		t.Fatalf("binary round trip: %+v", got)
	}
	if got.Extension(ExtRelayOrigin) != "broker-a" {
		t.Fatalf("extension lost: %+v", got.Extensions)
	}
	if !bytes.Equal(got.Data, e.Data) || got.DataBase64 {
		t.Fatalf("binary data: %v %s", got.DataBase64, got.Data)
	}
}

func TestBinaryOpaqueBody(t *testing.T) {
	h := http.Header{}
	h.Set("ce-specversion", "1.0")
	h.Set("ce-id", "i")
	h.Set("ce-source", "s")
	h.Set("ce-type", "t")
	h.Set("Content-Type", "application/octet-stream")
	got, err := FromBinary(h, []byte{1, 2, 3})
	if err != nil {
		t.Fatalf("FromBinary: %v", err)
	}
	if !got.DataBase64 || !bytes.Equal(got.Data, []byte{1, 2, 3}) {
		t.Fatalf("opaque body should be base64 data: %+v", got)
	}
}

func TestXMLWrapRoundTrip(t *testing.T) {
	e := sampleEvent()
	el := WrapXML(e)
	// The wrapper must survive serialise/parse (what delivery to a SOAP
	// subscriber and re-ingest at a federated peer does to it).
	reparsed, err := xmldom.ParseString(xmldom.Marshal(el))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	got, ok := UnwrapXML(reparsed)
	if !ok {
		t.Fatal("UnwrapXML failed")
	}
	if got.ID != e.ID || got.Type != e.Type || got.Source != e.Source ||
		got.Subject != e.Subject || got.DataContentType != e.DataContentType {
		t.Fatalf("XML round trip: %+v vs %+v", got, e)
	}
	if string(got.Data) != string(e.Data) {
		t.Fatalf("data: %s vs %s", got.Data, e.Data)
	}
	if got.Extension(ExtRelayID) != "urn:uuid:wsm-9" {
		t.Fatalf("extensions: %+v", got.Extensions)
	}
}

func TestXMLWrapBinaryData(t *testing.T) {
	e := &Event{SpecVersion: SpecVersion, ID: "i", Source: "s", Type: "t",
		Data: []byte{0xDE, 0xAD}, DataBase64: true}
	got, ok := UnwrapXML(WrapXML(e))
	if !ok || !got.DataBase64 || !bytes.Equal(got.Data, e.Data) {
		t.Fatalf("binary XML round trip: %+v %v", got, ok)
	}
}

func TestUnwrapRejectsForeign(t *testing.T) {
	if _, ok := UnwrapXML(xmldom.Elem("urn:other", "Event")); ok {
		t.Fatal("foreign element must not unwrap")
	}
	if _, ok := UnwrapXML(nil); ok {
		t.Fatal("nil must not unwrap")
	}
}
