// Package cloudevents implements the CloudEvents 1.0 JSON event format
// and its HTTP protocol binding — the "modern front door" half of ROADMAP
// item 3. The paper's five WS-* notification families are one mediation
// problem; this package extends the same canonical model to the eventing
// format that won (SNIPPETS.md §2, CAMARA), so a 2004-era WS-Eventing
// producer can notify a 2026 cloud-native consumer and vice versa.
//
// Three content modes of the HTTP binding are supported:
//
//   - structured: the whole event travels as one JSON object with
//     Content-Type application/cloudevents+json;
//   - batched: a JSON array of events with application/cloudevents-batch+json
//     (the shape the broker's per-destination coalescing serves the same way
//     it serves WSN 1.3 multi-NotificationMessage envelopes);
//   - binary: the event attributes travel as ce-* HTTP headers and the body
//     is the bare data.
//
// The broker's mapping between the two worlds: CloudEvents `type` carries
// the topic in Clark form, `source` names the producing broker (or the
// relay origin for federated events), `id` is the delivery MessageID, and
// the wsmrelay* extension attributes carry the wsmf:Relay provenance so
// federation dedup holds across protocol boundaries.
package cloudevents

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topics"
	"repro/internal/xmldom"
)

// SpecVersion is the only CloudEvents version this package speaks.
const SpecVersion = "1.0"

// MIME types of the JSON event format.
const (
	// ContentTypeJSON is the structured-mode content type.
	ContentTypeJSON = "application/cloudevents+json"
	// ContentTypeBatch is the batched-mode content type.
	ContentTypeBatch = "application/cloudevents-batch+json"
)

// Relay extension attribute names (CloudEvents restricts extension names
// to lowercase alphanumerics). They mirror the wsmf:Relay SOAP header:
// origin broker, origin message id, hop count and origin log position —
// everything a federated peer needs to dedup on (origin, id).
const (
	ExtRelayOrigin = "wsmrelayorigin"
	ExtRelayID     = "wsmrelayid"
	ExtRelayHops   = "wsmrelayhops"
	ExtRelayPos    = "wsmrelaypos"
)

// Event is one CloudEvents 1.0 event. Data holds the raw JSON value of the
// "data" member (so round-trips are byte-faithful for JSON payloads);
// DataBase64 marks binary payloads carried as data_base64.
type Event struct {
	SpecVersion     string
	ID              string
	Source          string
	Type            string
	Subject         string
	Time            string // RFC 3339, optional
	DataContentType string
	DataSchema      string
	Data            json.RawMessage // raw JSON value ("data"), or raw bytes when DataBase64
	DataBase64      bool
	Extensions      map[string]string
}

// SetExtension sets one extension attribute, normalising the name to the
// lowercase form the spec requires.
func (e *Event) SetExtension(name, value string) {
	if e.Extensions == nil {
		e.Extensions = map[string]string{}
	}
	e.Extensions[strings.ToLower(name)] = value
}

// Extension reads one extension attribute ("" when absent).
func (e *Event) Extension(name string) string {
	return e.Extensions[strings.ToLower(name)]
}

// SetRelay records federation provenance as extension attributes.
func (e *Event) SetRelay(origin, id string, hops int, pos uint64) {
	e.SetExtension(ExtRelayOrigin, origin)
	e.SetExtension(ExtRelayID, id)
	e.SetExtension(ExtRelayHops, strconv.Itoa(hops))
	if pos > 0 {
		e.SetExtension(ExtRelayPos, strconv.FormatUint(pos, 10))
	}
}

// Relay recovers the federation provenance carried by the wsmrelay*
// extension attributes; ok is false when the event carries none.
func (e *Event) Relay() (origin, id string, hops int, pos uint64, ok bool) {
	origin = e.Extension(ExtRelayOrigin)
	id = e.Extension(ExtRelayID)
	if origin == "" || id == "" {
		return "", "", 0, 0, false
	}
	hops, _ = strconv.Atoi(e.Extension(ExtRelayHops))
	pos, _ = strconv.ParseUint(e.Extension(ExtRelayPos), 10, 64)
	return origin, id, hops, pos, true
}

// Valid reports whether the event carries the four REQUIRED attributes.
func (e *Event) Valid() error {
	switch {
	case e.SpecVersion != SpecVersion:
		return fmt.Errorf("cloudevents: unsupported specversion %q", e.SpecVersion)
	case e.ID == "":
		return fmt.Errorf("cloudevents: missing id")
	case e.Source == "":
		return fmt.Errorf("cloudevents: missing source")
	case e.Type == "":
		return fmt.Errorf("cloudevents: missing type")
	}
	return nil
}

// TypeForTopic renders a topic path as a CloudEvents type attribute (Clark
// form, the same string FetchNewer and the logs use).
func TypeForTopic(p topics.Path) string {
	if p.IsZero() {
		return "org.wsmessenger.notification"
	}
	return p.String()
}

// TopicForType recovers a topic path from a type attribute. Types that are
// not Clark-parsable topic paths yield the zero path — the event still
// publishes, it just matches only topic-less subscriptions.
func TopicForType(t string) topics.Path {
	p, err := topics.ParseClark(t)
	if err != nil {
		return topics.Path{}
	}
	return p
}

// appendJSONString appends a JSON string literal.
func appendJSONString(dst []byte, s string) []byte {
	b, _ := json.Marshal(s)
	return append(dst, b...)
}

// AppendJSON appends the event in the JSON event format (structured mode,
// one object). Member order is fixed — context attributes, extensions in
// sorted order, then data — so a given event always serialises to the same
// bytes (the property the broker's render-template cache relies on).
func (e *Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"specversion":`...)
	dst = appendJSONString(dst, e.SpecVersion)
	dst = append(dst, `,"id":`...)
	dst = appendJSONString(dst, e.ID)
	dst = append(dst, `,"source":`...)
	dst = appendJSONString(dst, e.Source)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, e.Type)
	optional := func(name, v string) {
		if v == "" {
			return
		}
		dst = append(dst, ',', '"')
		dst = append(dst, name...)
		dst = append(dst, '"', ':')
		dst = appendJSONString(dst, v)
	}
	optional("subject", e.Subject)
	optional("time", e.Time)
	optional("datacontenttype", e.DataContentType)
	optional("dataschema", e.DataSchema)
	if len(e.Extensions) > 0 {
		names := make([]string, 0, len(e.Extensions))
		for n := range e.Extensions {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			optional(n, e.Extensions[n])
		}
	}
	if e.Data != nil {
		if e.DataBase64 {
			dst = append(dst, `,"data_base64":`...)
			dst = appendJSONString(dst, base64.StdEncoding.EncodeToString(e.Data))
		} else {
			dst = append(dst, `,"data":`...)
			dst = append(dst, e.Data...)
		}
	}
	return append(dst, '}')
}

// JSON returns the structured-mode serialisation.
func (e *Event) JSON() []byte { return e.AppendJSON(nil) }

// AppendBatchJSON appends a batched-mode array of events.
func AppendBatchJSON(dst []byte, events []*Event) []byte {
	dst = append(dst, '[')
	for i, e := range events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = e.AppendJSON(dst)
	}
	return append(dst, ']')
}

// contextNames are the spec-defined context attribute member names; every
// other top-level string member is an extension attribute.
var contextNames = map[string]bool{
	"specversion": true, "id": true, "source": true, "type": true,
	"subject": true, "time": true, "datacontenttype": true,
	"dataschema": true, "data": true, "data_base64": true,
}

// ParseJSON parses one structured-mode event.
func ParseJSON(raw []byte) (*Event, error) {
	var members map[string]json.RawMessage
	if err := json.Unmarshal(raw, &members); err != nil {
		return nil, fmt.Errorf("cloudevents: %w", err)
	}
	return fromMembers(members)
}

// ParseBatchJSON parses a batched-mode array.
func ParseBatchJSON(raw []byte) ([]*Event, error) {
	var items []json.RawMessage
	if err := json.Unmarshal(raw, &items); err != nil {
		return nil, fmt.Errorf("cloudevents: batch: %w", err)
	}
	out := make([]*Event, 0, len(items))
	for i, item := range items {
		ev, err := ParseJSON(item)
		if err != nil {
			return nil, fmt.Errorf("cloudevents: batch entry %d: %w", i, err)
		}
		out = append(out, ev)
	}
	return out, nil
}

func memberString(members map[string]json.RawMessage, name string) (string, error) {
	raw, ok := members[name]
	if !ok {
		return "", nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", fmt.Errorf("cloudevents: %s must be a JSON string", name)
	}
	return s, nil
}

func fromMembers(members map[string]json.RawMessage) (*Event, error) {
	e := &Event{}
	for _, f := range []struct {
		name string
		dst  *string
	}{
		{"specversion", &e.SpecVersion}, {"id", &e.ID}, {"source", &e.Source},
		{"type", &e.Type}, {"subject", &e.Subject}, {"time", &e.Time},
		{"datacontenttype", &e.DataContentType}, {"dataschema", &e.DataSchema},
	} {
		v, err := memberString(members, f.name)
		if err != nil {
			return nil, err
		}
		*f.dst = v
	}
	if raw, ok := members["data_base64"]; ok {
		var b64 string
		if err := json.Unmarshal(raw, &b64); err != nil {
			return nil, fmt.Errorf("cloudevents: data_base64 must be a JSON string")
		}
		data, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("cloudevents: data_base64: %w", err)
		}
		e.Data, e.DataBase64 = data, true
	} else if raw, ok := members["data"]; ok {
		e.Data = append(json.RawMessage(nil), raw...)
	}
	for name, raw := range members {
		if contextNames[name] {
			continue
		}
		// Extension values may be any JSON type; they canonicalise to their
		// string form (the HTTP binding transmits them as header strings).
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			var v any
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, fmt.Errorf("cloudevents: extension %s: %w", name, err)
			}
			s = fmt.Sprint(v)
		}
		e.SetExtension(name, s)
	}
	if err := e.Valid(); err != nil {
		return nil, err
	}
	return e, nil
}

// --- Binary content mode (ce-* headers) ---

// IsBinaryRequest reports whether an HTTP request uses the binary content
// mode: a ce-specversion header with a non-CloudEvents content type.
func IsBinaryRequest(h http.Header) bool {
	return h.Get("ce-specversion") != ""
}

// FromBinary decodes a binary-mode event from HTTP headers and body.
func FromBinary(h http.Header, body []byte) (*Event, error) {
	e := &Event{
		SpecVersion:     h.Get("ce-specversion"),
		ID:              h.Get("ce-id"),
		Source:          h.Get("ce-source"),
		Type:            h.Get("ce-type"),
		Subject:         h.Get("ce-subject"),
		Time:            h.Get("ce-time"),
		DataSchema:      h.Get("ce-dataschema"),
		DataContentType: h.Get("Content-Type"),
	}
	for name, vals := range h {
		ln := strings.ToLower(name)
		if !strings.HasPrefix(ln, "ce-") || len(vals) == 0 {
			continue
		}
		attr := ln[len("ce-"):]
		switch attr {
		case "specversion", "id", "source", "type", "subject", "time", "dataschema":
			continue
		}
		e.SetExtension(attr, vals[0])
	}
	if len(body) > 0 {
		ct := e.DataContentType
		if isJSONContentType(ct) && json.Valid(body) {
			e.Data = append(json.RawMessage(nil), bytes.TrimSpace(body)...)
		} else {
			e.Data, e.DataBase64 = append([]byte(nil), body...), true
		}
	}
	if err := e.Valid(); err != nil {
		return nil, err
	}
	return e, nil
}

// isJSONContentType reports JSON-family media types, whose binary-mode
// bodies are raw JSON values rather than opaque bytes.
func isJSONContentType(ct string) bool {
	if ct == "" {
		return true // binding default: application/json
	}
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(strings.ToLower(ct))
	return ct == "application/json" || strings.HasSuffix(ct, "+json")
}

// BinaryHeaders renders the event's context attributes as ce-* headers and
// returns the body and its content type for a binary-mode send.
func (e *Event) BinaryHeaders() (header map[string]string, contentType string, body []byte) {
	header = map[string]string{
		"ce-specversion": e.SpecVersion,
		"ce-id":          e.ID,
		"ce-source":      e.Source,
		"ce-type":        e.Type,
	}
	set := func(k, v string) {
		if v != "" {
			header[k] = v
		}
	}
	set("ce-subject", e.Subject)
	set("ce-time", e.Time)
	set("ce-dataschema", e.DataSchema)
	for n, v := range e.Extensions {
		set("ce-"+n, v)
	}
	contentType = e.DataContentType
	if contentType == "" {
		contentType = "application/json"
	}
	return header, contentType, e.Data
}

// --- XML payload bridge ---

// The broker's canonical notification payload is an XML element. Incoming
// CloudEvents wrap into a wsmce:Event element (so WSN/WSE subscribers
// receive well-formed XML carrying the full event), and outgoing
// deliveries to CloudEvents consumers unwrap it back — a CE→CE round trip
// through the broker preserves the producer's event. Non-CloudEvents
// payloads travel to CE consumers as data with datacontenttype
// application/xml.

// NS is the wrapper namespace.
const NS = "urn:ws-messenger:cloudevents"

func init() { xmldom.RegisterPrefix(NS, "wsmce") }

// EventName is the wrapper element name.
var EventName = xmldom.N(NS, "Event")

// WrapXML renders the event as the canonical XML payload element.
func WrapXML(e *Event) *xmldom.Element {
	el := xmldom.NewElement(EventName)
	el.SetAttr(xmldom.N("", "specversion"), e.SpecVersion)
	el.SetAttr(xmldom.N("", "id"), e.ID)
	el.SetAttr(xmldom.N("", "source"), e.Source)
	el.SetAttr(xmldom.N("", "type"), e.Type)
	attr := func(n, v string) {
		if v != "" {
			el.SetAttr(xmldom.N("", n), v)
		}
	}
	attr("subject", e.Subject)
	attr("time", e.Time)
	attr("datacontenttype", e.DataContentType)
	attr("dataschema", e.DataSchema)
	names := make([]string, 0, len(e.Extensions))
	for n := range e.Extensions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ext := xmldom.Elem(NS, "Extension", e.Extensions[n])
		ext.SetAttr(xmldom.N("", "name"), n)
		el.Append(ext)
	}
	if e.Data != nil {
		if e.DataBase64 {
			el.Append(xmldom.Elem(NS, "DataBase64", base64.StdEncoding.EncodeToString(e.Data)))
		} else {
			el.Append(xmldom.Elem(NS, "Data", string(e.Data)))
		}
	}
	return el
}

// UnwrapXML recovers the event from a wrapper element produced by WrapXML;
// ok is false for any other payload.
func UnwrapXML(el *xmldom.Element) (*Event, bool) {
	if el == nil || el.Name != EventName {
		return nil, false
	}
	e := &Event{
		SpecVersion:     el.AttrValue(xmldom.N("", "specversion")),
		ID:              el.AttrValue(xmldom.N("", "id")),
		Source:          el.AttrValue(xmldom.N("", "source")),
		Type:            el.AttrValue(xmldom.N("", "type")),
		Subject:         el.AttrValue(xmldom.N("", "subject")),
		Time:            el.AttrValue(xmldom.N("", "time")),
		DataContentType: el.AttrValue(xmldom.N("", "datacontenttype")),
		DataSchema:      el.AttrValue(xmldom.N("", "dataschema")),
	}
	for _, ext := range el.ChildrenNamed(xmldom.N(NS, "Extension")) {
		if n := ext.AttrValue(xmldom.N("", "name")); n != "" {
			e.SetExtension(n, ext.Text())
		}
	}
	if d := el.Child(xmldom.N(NS, "Data")); d != nil {
		e.Data = json.RawMessage(d.Text())
	} else if d := el.Child(xmldom.N(NS, "DataBase64")); d != nil {
		if raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(d.Text())); err == nil {
			e.Data, e.DataBase64 = raw, true
		}
	}
	if e.Valid() != nil {
		return nil, false
	}
	return e, true
}
