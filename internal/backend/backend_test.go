package backend

import (
	"testing"

	"repro/internal/corbanotify"
	"repro/internal/jms"
	"repro/internal/topics"
	"repro/internal/xmldom"
)

var testTopic = topics.NewPath("urn:grid", "jobs")

func testMsg() Message {
	return Message{
		Topic:   testTopic,
		Payload: xmldom.Elem("urn:grid", "Ev", xmldom.Elem("urn:grid", "v", "42")),
		Origin:  "WS-Eventing",
	}
}

func checkRoundTrip(t *testing.T, b Backend) {
	t.Helper()
	var got []Message
	cancel, err := b.Subscribe(func(m Message) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(testMsg()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%s: got %d messages", b.Name(), len(got))
	}
	m := got[0]
	if !m.Topic.Equal(testTopic) {
		t.Errorf("%s: topic = %v", b.Name(), m.Topic)
	}
	if m.Origin != "WS-Eventing" {
		t.Errorf("%s: origin = %q", b.Name(), m.Origin)
	}
	if m.Payload.ChildText(xmldom.N("urn:grid", "v")) != "42" {
		t.Errorf("%s: payload lost", b.Name())
	}
	cancel()
	b.Publish(testMsg())
	if len(got) != 1 {
		t.Errorf("%s: cancelled subscriber still delivered", b.Name())
	}
}

func TestMemoryBackend(t *testing.T) {
	checkRoundTrip(t, NewMemory())
}

func TestJMSBackend(t *testing.T) {
	checkRoundTrip(t, NewJMS(jms.NewProvider(), "wsm"))
}

func TestCORBANotifyBackend(t *testing.T) {
	ch, err := corbanotify.NewChannel(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, NewCORBANotify(ch))
}

func TestMemoryClose(t *testing.T) {
	m := NewMemory()
	m.Close()
	if err := m.Publish(testMsg()); err != ErrClosed {
		t.Errorf("publish after close = %v", err)
	}
	if _, err := m.Subscribe(func(Message) {}); err != ErrClosed {
		t.Errorf("subscribe after close = %v", err)
	}
}

func TestMemoryMultipleSubscribersOrdered(t *testing.T) {
	m := NewMemory()
	var order []int
	m.Subscribe(func(Message) { order = append(order, 1) })
	m.Subscribe(func(Message) { order = append(order, 2) })
	m.Subscribe(func(Message) { order = append(order, 3) })
	m.Publish(testMsg())
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestTopiclessMessageThroughAdapters(t *testing.T) {
	for _, b := range []Backend{NewMemory(), NewJMS(jms.NewProvider(), "x")} {
		var got []Message
		b.Subscribe(func(m Message) { got = append(got, m) })
		b.Publish(Message{Payload: xmldom.Elem("", "bare")})
		if len(got) != 1 || !got[0].Topic.IsZero() {
			t.Errorf("%s: topicless round trip = %+v", b.Name(), got)
		}
	}
}
