package backend

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/corbanotify"
	"repro/internal/jms"
	"repro/internal/mediation"
	"repro/internal/topics"
	"repro/internal/xmldom"
)

// relayProps flattens federation provenance into message-property form —
// how JMS properties or CORBA filterable data carry metadata — so relay
// state survives a trip through an external fabric.
func relayProps(r *mediation.Relay, set func(key, val string)) {
	if r == nil {
		return
	}
	set("wsmRelayOrigin", r.Origin)
	set("wsmRelayId", r.ID)
	set("wsmRelayHops", strconv.Itoa(r.Hops))
}

// relayFromProps rebuilds the relay from message properties; nil when the
// message carried none (or damaged ones — a partial relay is worse than
// none, because it would poison dedup state).
func relayFromProps(get func(key string) (string, bool)) *mediation.Relay {
	origin, ok1 := get("wsmRelayOrigin")
	id, ok2 := get("wsmRelayId")
	if !ok1 || !ok2 || origin == "" || id == "" {
		return nil
	}
	r := &mediation.Relay{Origin: origin, ID: id}
	if hs, ok := get("wsmRelayHops"); ok {
		n, err := strconv.Atoi(hs)
		if err != nil || n < 0 {
			return nil
		}
		r.Hops = n
	}
	return r
}

// JMS wraps a JMS topic as a WS-Messenger backend: notifications travel as
// TextMessages whose body is the serialised payload and whose properties
// carry the topic and origin — the "Web service interfaces to existing
// messaging systems" deployment of §VII.
type JMS struct {
	provider *jms.Provider
	topic    *jms.Topic
}

// NewJMS builds the adapter over the named JMS topic.
func NewJMS(p *jms.Provider, topicName string) *JMS {
	return &JMS{provider: p, topic: p.Topic(topicName)}
}

// Name implements Backend.
func (j *JMS) Name() string { return "jms:" + j.topic.Name() }

// Publish implements Backend.
func (j *JMS) Publish(msg Message) error {
	m := jms.NewTextMessage(xmldom.Marshal(msg.Payload))
	if !msg.Topic.IsZero() {
		m.Properties()["wsmTopic"] = msg.Topic.String()
	}
	if msg.Origin != "" {
		m.Properties()["wsmOrigin"] = msg.Origin
	}
	relayProps(msg.Relay, func(k, v string) { m.Properties()[k] = v })
	return j.topic.Publish(m)
}

// Subscribe implements Backend.
func (j *JMS) Subscribe(fn func(Message)) (func(), error) {
	cancel := j.topic.Subscribe(nil, func(m jms.Message) {
		tm, ok := m.(*jms.TextMessage)
		if !ok {
			return
		}
		payload, err := xmldom.ParseString(tm.Text)
		if err != nil {
			return
		}
		out := Message{Payload: payload}
		if tp, ok := m.Properties()["wsmTopic"].(string); ok {
			out.Topic = parseClarkTopic(tp)
		}
		if or, ok := m.Properties()["wsmOrigin"].(string); ok {
			out.Origin = or
		}
		out.Relay = relayFromProps(func(k string) (string, bool) {
			s, ok := m.Properties()[k].(string)
			return s, ok
		})
		fn(out)
	})
	return cancel, nil
}

// Close implements Backend.
func (j *JMS) Close() error {
	j.provider.Close()
	return nil
}

// CORBANotify wraps a CORBA Notification Service channel as a backend:
// notifications become structured events (domain "WS-Messenger"), with the
// serialised payload as the body and the topic in FilterableData.
type CORBANotify struct {
	channel *corbanotify.Channel
}

// NewCORBANotify builds the adapter.
func NewCORBANotify(ch *corbanotify.Channel) *CORBANotify {
	return &CORBANotify{channel: ch}
}

// Name implements Backend.
func (c *CORBANotify) Name() string { return "corba-notification" }

// Publish implements Backend.
func (c *CORBANotify) Publish(msg Message) error {
	ev := corbanotify.NewStructuredEvent("WS-Messenger", "Notification", msg.Payload.Name.Local)
	if !msg.Topic.IsZero() {
		ev.FilterableData["wsmTopic"] = msg.Topic.String()
	}
	if msg.Origin != "" {
		ev.FilterableData["wsmOrigin"] = msg.Origin
	}
	relayProps(msg.Relay, func(k, v string) { ev.FilterableData[k] = v })
	ev.Body = xmldom.Marshal(msg.Payload)
	c.channel.Push(ev)
	return nil
}

// Subscribe implements Backend.
func (c *CORBANotify) Subscribe(fn func(Message)) (func(), error) {
	proxy, err := c.channel.ConnectPushConsumer(nil, nil, func(evs []*corbanotify.StructuredEvent) {
		for _, ev := range evs {
			body, ok := ev.Body.(string)
			if !ok {
				continue
			}
			payload, err := xmldom.ParseString(body)
			if err != nil {
				continue
			}
			out := Message{Payload: payload}
			if tp, ok := ev.FilterableData["wsmTopic"].(string); ok {
				out.Topic = parseClarkTopic(tp)
			}
			if or, ok := ev.FilterableData["wsmOrigin"].(string); ok {
				out.Origin = or
			}
			out.Relay = relayFromProps(func(k string) (string, bool) {
				s, ok := ev.FilterableData[k].(string)
				return s, ok
			})
			fn(out)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("backend: corba connect: %w", err)
	}
	return proxy.Disconnect, nil
}

// Close implements Backend.
func (c *CORBANotify) Close() error { return nil }

func parseClarkTopic(s string) topics.Path {
	if s == "" {
		return topics.Path{}
	}
	ns := ""
	if strings.HasPrefix(s, "{") {
		if i := strings.Index(s, "}"); i > 0 {
			ns, s = s[1:i], s[i+1:]
		}
	}
	if s == "" {
		return topics.Path{}
	}
	return topics.Path{Namespace: ns, Segments: strings.Split(s, "/")}
}
