// Package backend defines the pluggable message-system interface behind
// the WS-Messenger broker.
//
// §VII of the paper: "WS-Messenger provides a generic interface that can
// use existing publish/subscribe systems as the underlying message
// systems. In this way, WS-Messenger provides Web service interfaces to
// existing messaging systems." The broker publishes every accepted
// notification into a Backend and receives the fan-in back through the
// subscription callback; swapping the backend changes the transport
// fabric without touching the WS front doors. Adapters exist for the
// in-memory fabric (this file), the JMS baseline and the CORBA
// notification baseline.
package backend

import (
	"errors"
	"sync"

	"repro/internal/mediation"
	"repro/internal/topics"
	"repro/internal/xmldom"
)

// Message is the canonical unit the backend moves. Origin is an opaque
// producer tag (e.g. the spec family a SOAP publish arrived in) carried as
// message metadata, the way JMS properties or CORBA structured-event
// headers would carry it. Relay is the federation provenance of a message
// that entered through a peer link (or was stamped at first publish by a
// federated broker); backends must carry it with the message so fan-out
// can render it back onto the wire.
type Message struct {
	Topic   topics.Path
	Payload *xmldom.Element
	Origin  string
	Relay   *mediation.Relay
	// Pos is the message's position in the broker's durable event log
	// (0 when the broker runs without one). Backends carry it opaquely,
	// like Origin and Relay.
	Pos uint64
}

// Backend is an underlying publish/subscribe fabric.
type Backend interface {
	// Name identifies the backend in logs and probe output.
	Name() string
	// Publish injects a message into the fabric.
	Publish(msg Message) error
	// Subscribe registers a fan-in callback for every published message;
	// the returned function cancels the registration.
	Subscribe(fn func(Message)) (cancel func(), err error)
	// Close shuts the fabric down; Publish afterwards errors.
	Close() error
}

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("backend: closed")

// Memory is the default in-process fabric: synchronous dispatch to every
// subscriber in registration order.
type Memory struct {
	mu     sync.RWMutex
	nextID int
	subs   map[int]func(Message)
	closed bool
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{subs: map[int]func(Message){}}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Publish implements Backend.
func (m *Memory) Publish(msg Message) error {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return ErrClosed
	}
	ids := make([]int, 0, len(m.subs))
	for id := range m.subs {
		ids = append(ids, id)
	}
	// Deterministic order for tests: registration order == id order.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	fns := make([]func(Message), len(ids))
	for i, id := range ids {
		fns[i] = m.subs[id]
	}
	m.mu.RUnlock()
	for _, fn := range fns {
		fn(msg)
	}
	return nil
}

// Subscribe implements Backend.
func (m *Memory) Subscribe(fn func(Message)) (func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.nextID++
	id := m.nextID
	m.subs[id] = fn
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.subs, id)
	}, nil
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.subs = map[int]func(Message){}
	return nil
}
