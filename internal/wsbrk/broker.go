// Package wsbrk implements the WS-BrokeredNotification specification: a
// NotificationBroker standing between notification producers and
// consumers.
//
// The paper's §V.5 contrasts the two spec families here: WS-Notification
// defines publisher registration and demand-based publishing, while
// WS-Eventing defines no broker role at all (though one can be assembled
// from an event sink glued to an event source — which is exactly what the
// WS-Messenger core in internal/core does). A demand-based publisher only
// publishes while consumers are interested; the broker tracks demand and
// pauses or resumes its upstream subscription to the publisher
// accordingly.
package wsbrk

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/mediation"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// NS is the WS-BrokeredNotification namespace (1.3 era).
const NS = "http://docs.oasis-open.org/wsn/br-2"

func init() { xmldom.RegisterPrefix(NS, "wsbrk") }

// Action URIs.
const (
	ActionRegisterPublisher   = NS + "/RegisterPublisher"
	ActionDestroyRegistration = NS + "/DestroyRegistration"
)

// RegistrationIDName is the reference parameter naming a publisher
// registration.
var RegistrationIDName = xmldom.N(NS, "RegistrationId")

// Config configures a broker.
type Config struct {
	// ProducerAddress is the broker's NotificationProducer endpoint
	// (consumers Subscribe here).
	ProducerAddress string
	// ManagerAddress is the broker's subscription manager endpoint.
	ManagerAddress string
	// IngestAddress is where publishers send Notify messages and
	// registration requests.
	IngestAddress string
	// Client is the transport for upstream (publisher) management calls
	// and downstream deliveries.
	Client transport.Client
	// RequireRegistration, when set, rejects Notify messages from
	// unregistered publishers — the policy knob WS-BrokeredNotification
	// leaves to deployments.
	RequireRegistration bool
	// MaxRelayHops, when positive, drops inbound Notify messages whose
	// wsmf:Relay header records that many broker-to-broker hops or more —
	// the loop backstop for deployments that chain wsbrk brokers without
	// the federation layer's dedup.
	MaxRelayHops int
	// Producer configures the embedded NotificationProducer; Address,
	// ManagerAddress and Client are overwritten from the fields above.
	Producer wsnt.ProducerConfig
}

// registration is one RegisterPublisher result.
type registration struct {
	id        string
	publisher *wsa.EndpointReference
	topics    []topics.Path
	demand    bool
	// upstream is the broker's subscription at the publisher, present for
	// demand-based registrations.
	upstream *wsnt.Handle
	paused   bool
}

// Broker is a WS-BrokeredNotification NotificationBroker.
type Broker struct {
	cfg      Config
	producer *wsnt.Producer
	sub      *wsnt.Subscriber

	mu     sync.Mutex
	nextID int
	regs   map[string]*registration
}

// New builds a broker.
func New(cfg Config) *Broker {
	pc := cfg.Producer
	pc.Version = wsnt.V1_3
	pc.Address = cfg.ProducerAddress
	pc.ManagerAddress = cfg.ManagerAddress
	pc.Client = cfg.Client
	b := &Broker{
		cfg:      cfg,
		producer: wsnt.NewProducer(pc),
		sub:      &wsnt.Subscriber{Client: cfg.Client, Version: wsnt.V1_3},
		regs:     map[string]*registration{},
	}
	return b
}

// Producer exposes the embedded NotificationProducer.
func (b *Broker) Producer() *wsnt.Producer { return b.producer }

// RegistrationCount reports live publisher registrations.
func (b *Broker) RegistrationCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.regs)
}

// ProducerHandler serves consumer-side Subscribe/GetCurrentMessage and
// recomputes publisher demand after each subscription change.
func (b *Broker) ProducerHandler() transport.Handler {
	inner := b.producer.ProducerHandler()
	return transport.HandlerFunc(func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		resp, err := inner.ServeSOAP(ctx, env)
		b.RecomputeDemand(ctx)
		return resp, err
	})
}

// ManagerHandler serves subscription management and recomputes demand.
func (b *Broker) ManagerHandler() transport.Handler {
	inner := b.producer.ManagerHandler()
	return transport.HandlerFunc(func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		resp, err := inner.ServeSOAP(ctx, env)
		b.RecomputeDemand(ctx)
		return resp, err
	})
}

// IngestHandler serves the publisher-facing endpoint: Notify deliveries,
// RegisterPublisher and DestroyRegistration.
func (b *Broker) IngestHandler() transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		body := env.FirstBody()
		if body == nil {
			return nil, soap.Faultf(soap.FaultSender, "wsbrk: empty body")
		}
		switch body.Name {
		case xmldom.N(NS, "RegisterPublisher"):
			return b.handleRegister(ctx, env, body)
		case xmldom.N(NS, "DestroyRegistration"):
			return b.handleDestroyRegistration(env)
		}
		if body.Name.Local == "Notify" {
			return nil, b.handleNotify(ctx, env, body)
		}
		return nil, soap.Faultf(soap.FaultSender, "wsbrk: unexpected message %v", body.Name)
	})
}

// handleNotify republishes incoming notifications to the broker's own
// subscribers — the decoupling role of §III.
func (b *Broker) handleNotify(ctx context.Context, env *soap.Envelope, body *xmldom.Element) error {
	if b.cfg.RequireRegistration && b.RegistrationCount() == 0 {
		f := soap.Faultf(soap.FaultSender, "broker requires publisher registration")
		f.Subcode = xmldom.N(NS, "PublisherRegistrationRejectedFault")
		return f
	}
	if b.cfg.MaxRelayHops > 0 {
		if r, ok, err := mediation.ParseRelay(env); err == nil && ok && r.Hops >= b.cfg.MaxRelayHops {
			// Hop-capped relay: swallow silently rather than faulting, so
			// the sending broker does not retry a message we will never
			// accept.
			return nil
		}
	}
	msgs, _, err := wsnt.ParseNotify(body)
	if err != nil {
		return soap.Faultf(soap.FaultSender, "wsbrk: %v", err)
	}
	for _, m := range msgs {
		if m.Payload == nil {
			continue
		}
		b.producer.Publish(ctx, m.Topic, m.Payload)
	}
	return nil
}

func (b *Broker) handleRegister(ctx context.Context, env *soap.Envelope, body *xmldom.Element) (*soap.Envelope, error) {
	reg := &registration{}
	if pr := body.Child(xmldom.N(NS, "PublisherReference")); pr != nil {
		epr, err := wsa.ParseEPR(pr)
		if err != nil {
			return nil, soap.Faultf(soap.FaultSender, "wsbrk: bad PublisherReference: %v", err)
		}
		reg.publisher = epr
	}
	for _, te := range body.ChildrenNamed(xmldom.N(NS, "Topic")) {
		p, err := topics.ParsePath(strings.TrimSpace(te.Text()), te.ScopeBindings())
		if err != nil {
			return nil, soap.Faultf(soap.FaultSender, "wsbrk: bad Topic: %v", err)
		}
		reg.topics = append(reg.topics, p)
	}
	if d := body.ChildText(xmldom.N(NS, "Demand")); d == "true" || d == "1" {
		reg.demand = true
	}
	if reg.demand && reg.publisher == nil {
		f := soap.Faultf(soap.FaultSender, "demand-based registration requires a PublisherReference")
		f.Subcode = xmldom.N(NS, "InvalidProducerPropertiesExpressionFault")
		return nil, f
	}

	b.mu.Lock()
	b.nextID++
	reg.id = fmt.Sprintf("reg-%d", b.nextID)
	b.regs[reg.id] = reg
	b.mu.Unlock()

	// Demand-based publishers: the broker subscribes to the publisher with
	// its own ingest endpoint as the consumer, then pauses until demand
	// appears.
	if reg.demand {
		req := &wsnt.SubscribeRequest{
			ConsumerReference: wsa.NewEPR(wsa.V200508, b.cfg.IngestAddress),
		}
		h, err := b.sub.Subscribe(ctx, reg.publisher.Address, req)
		if err != nil {
			b.mu.Lock()
			delete(b.regs, reg.id)
			b.mu.Unlock()
			return nil, soap.Faultf(soap.FaultReceiver, "wsbrk: cannot subscribe to publisher: %v", err)
		}
		reg.upstream = h
		b.RecomputeDemand(ctx)
	}

	epr := wsa.NewEPR(wsa.V200508, b.cfg.IngestAddress)
	epr.AddReferenceParameter(xmldom.Elem(RegistrationIDName.Space, RegistrationIDName.Local, reg.id))
	out := soap.New(env.Version)
	out.AddBody(xmldom.Elem(NS, "RegisterPublisherResponse",
		epr.Element(xmldom.N(NS, "PublisherRegistrationReference"))))
	return out, nil
}

func (b *Broker) handleDestroyRegistration(env *soap.Envelope) (*soap.Envelope, error) {
	id := ""
	if h := env.Header(RegistrationIDName); h != nil {
		id = strings.TrimSpace(h.Text())
	}
	b.mu.Lock()
	reg, ok := b.regs[id]
	delete(b.regs, id)
	b.mu.Unlock()
	if !ok {
		f := soap.Faultf(soap.FaultSender, "unknown registration %q", id)
		f.Subcode = xmldom.N(NS, "ResourceUnknownFault")
		return nil, f
	}
	if reg.upstream != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5e9)
		defer cancel()
		_ = b.sub.Unsubscribe(ctx, reg.upstream)
	}
	out := soap.New(env.Version)
	out.AddBody(xmldom.NewElement(xmldom.N(NS, "DestroyRegistrationResponse")))
	return out, nil
}

// RecomputeDemand pauses or resumes upstream subscriptions of demand-based
// registrations according to current subscriber interest.
func (b *Broker) RecomputeDemand(ctx context.Context) {
	b.mu.Lock()
	regs := make([]*registration, 0, len(b.regs))
	for _, r := range b.regs {
		if r.demand && r.upstream != nil {
			regs = append(regs, r)
		}
	}
	b.mu.Unlock()
	for _, r := range regs {
		want := b.hasDemand(r)
		b.mu.Lock()
		paused := r.paused
		b.mu.Unlock()
		switch {
		case want && paused:
			if err := b.sub.Resume(ctx, r.upstream); err == nil {
				b.mu.Lock()
				r.paused = false
				b.mu.Unlock()
			}
		case !want && !paused:
			if err := b.sub.Pause(ctx, r.upstream); err == nil {
				b.mu.Lock()
				r.paused = true
				b.mu.Unlock()
			}
		}
	}
}

// hasDemand evaluates subscriber interest in a registration's topics; a
// registration without topics is interesting whenever any subscriber
// exists.
func (b *Broker) hasDemand(r *registration) bool {
	if len(r.topics) == 0 {
		return b.producer.SubscriptionCount() > 0
	}
	for _, tp := range r.topics {
		if b.producer.HasTopicDemand(tp) {
			return true
		}
	}
	return false
}

// Paused reports whether the registration's upstream subscription is
// currently paused (probe hook for the demand-based publisher behaviour).
func (b *Broker) Paused(regID string) (bool, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.regs[regID]
	if !ok {
		return false, false
	}
	return r.paused, true
}

// --- Client helpers ---

// RegisterPublisher registers a publisher at a broker's ingest endpoint.
func RegisterPublisher(ctx context.Context, client transport.Client, brokerIngest string,
	publisher *wsa.EndpointReference, demand bool, regTopics ...topics.Path) (*wsa.EndpointReference, error) {
	body := xmldom.NewElement(xmldom.N(NS, "RegisterPublisher"))
	if publisher != nil {
		body.Append(publisher.Element(xmldom.N(NS, "PublisherReference")))
	}
	for _, tp := range regTopics {
		te := xmldom.Elem(NS, "Topic", "tns:"+strings.Join(tp.Segments, "/"))
		te.SetAttr(xmldom.N("", "Dialect"), topics.DialectConcrete)
		te.DeclarePrefix("tns", tp.Namespace)
		body.Append(te)
	}
	if demand {
		body.Append(xmldom.Elem(NS, "Demand", "true"))
	}
	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: brokerIngest, Action: ActionRegisterPublisher}
	h.Apply(env)
	env.AddBody(body)
	resp, err := client.Call(ctx, brokerIngest, env)
	if err != nil {
		return nil, err
	}
	ref := resp.FirstBody().Child(xmldom.N(NS, "PublisherRegistrationReference"))
	if ref == nil {
		return nil, fmt.Errorf("wsbrk: response missing PublisherRegistrationReference")
	}
	return wsa.ParseEPR(ref)
}

// DestroyRegistration removes a publisher registration.
func DestroyRegistration(ctx context.Context, client transport.Client, reg *wsa.EndpointReference) error {
	env := soap.New(soap.V11)
	h := wsa.DestinationEPR(reg, ActionDestroyRegistration, "")
	h.Apply(env)
	env.AddBody(xmldom.NewElement(xmldom.N(NS, "DestroyRegistration")))
	_, err := client.Call(ctx, reg.Address, env)
	return err
}

// PeerSubscribe issues the broker-to-broker subscription
// WS-BrokeredNotification builds federation on: a NotificationBroker is
// itself a NotificationConsumer, so one broker subscribes at another
// broker's producer endpoint with its own peer-ingest endpoint as the
// consumer. The subscription is plain WS-Notification 1.3 on the wire —
// federated delivery therefore rides the remote broker's ordinary fan-out,
// including its retry/breaker/DLQ reliability machinery and its render
// cache. A nil or zero topic subscribes to everything the remote carries.
func PeerSubscribe(ctx context.Context, client transport.Client, remoteProducer, localIngest string, topic *topics.Path) (*wsnt.Handle, error) {
	sub := &wsnt.Subscriber{Client: client, Version: wsnt.V1_3}
	req := &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, localIngest),
	}
	if topic != nil && !topic.IsZero() {
		req.TopicExpression = "tns:" + strings.Join(topic.Segments, "/")
		req.TopicDialect = topics.DialectConcrete
		req.TopicNS = map[string]string{"tns": topic.Namespace}
	}
	return sub.Subscribe(ctx, remoteProducer, req)
}

// PeerUnsubscribe tears a peer link subscription down.
func PeerUnsubscribe(ctx context.Context, client transport.Client, h *wsnt.Handle) error {
	sub := &wsnt.Subscriber{Client: client, Version: wsnt.V1_3}
	return sub.Unsubscribe(ctx, h)
}

// RegistrationID extracts the registration id from a registration EPR.
func RegistrationID(reg *wsa.EndpointReference) string {
	for _, p := range reg.IdentityParameters() {
		if p.Name == RegistrationIDName {
			return strings.TrimSpace(p.Text())
		}
	}
	return ""
}
