package wsbrk

import (
	"context"
	"testing"

	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

type fixture struct {
	lb        *transport.Loopback
	broker    *Broker
	publisher *wsnt.Producer // the upstream event source
	consumer  *wsnt.Consumer
	sub       *wsnt.Subscriber
}

func newFixture(t *testing.T, requireReg bool) *fixture {
	t.Helper()
	lb := transport.NewLoopback()
	b := New(Config{
		ProducerAddress:     "svc://broker",
		ManagerAddress:      "svc://broker-subs",
		IngestAddress:       "svc://broker-ingest",
		Client:              lb,
		RequireRegistration: requireReg,
	})
	lb.Register("svc://broker", b.ProducerHandler())
	lb.Register("svc://broker-subs", b.ManagerHandler())
	lb.Register("svc://broker-ingest", b.IngestHandler())

	pub := wsnt.NewProducer(wsnt.ProducerConfig{
		Version: wsnt.V1_3,
		Address: "svc://publisher",
		Client:  lb,
	})
	lb.Register("svc://publisher", pub.ProducerHandler())

	consumer := &wsnt.Consumer{}
	lb.Register("svc://consumer", consumer)
	return &fixture{lb: lb, broker: b, publisher: pub, consumer: consumer,
		sub: &wsnt.Subscriber{Client: lb, Version: wsnt.V1_3}}
}

var grid = topics.NewPath("urn:grid", "jobs")

func event(s string) *xmldom.Element {
	return xmldom.Elem("urn:grid", "Ev", xmldom.Elem("urn:grid", "v", s))
}

// publishViaBroker makes the publisher send a Notify to the broker ingest,
// as a real decoupled producer would.
func (f *fixture) publishViaBroker(t *testing.T, payload *xmldom.Element) error {
	t.Helper()
	env := soap.New(soap.V11)
	h := &wsa.MessageHeaders{Version: wsa.V200508, To: "svc://broker-ingest",
		Action: wsnt.V1_3.ActionNotify()}
	h.Apply(env)
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{
		{Topic: grid, Payload: payload},
	}))
	return f.lb.Send(context.Background(), "svc://broker-ingest", env)
}

func TestBrokerDecouplesProducersAndConsumers(t *testing.T) {
	f := newFixture(t, false)
	// Consumer subscribes at the broker, never meeting the publisher.
	_, err := f.sub.Subscribe(context.Background(), "svc://broker", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://consumer"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.publishViaBroker(t, event("hello")); err != nil {
		t.Fatal(err)
	}
	if f.consumer.Count() != 1 {
		t.Fatalf("consumer received %d", f.consumer.Count())
	}
	got := f.consumer.Received()[0]
	if got.Payload.ChildText(xmldom.N("urn:grid", "v")) != "hello" {
		t.Error("payload lost through broker")
	}
	if !got.Topic.Equal(grid) {
		t.Errorf("topic lost: %v", got.Topic)
	}
}

func TestRequireRegistrationRejectsAnonymousPublish(t *testing.T) {
	f := newFixture(t, true)
	if err := f.publishViaBroker(t, event("x")); err == nil {
		t.Fatal("unregistered publish accepted")
	}
	// After registration it goes through.
	_, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest",
		wsa.NewEPR(wsa.V200508, "svc://publisher"), false, grid)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.publishViaBroker(t, event("y")); err != nil {
		t.Fatalf("registered publish rejected: %v", err)
	}
}

func TestRegisterAndDestroyRegistration(t *testing.T) {
	f := newFixture(t, false)
	reg, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest",
		wsa.NewEPR(wsa.V200508, "svc://publisher"), false, grid)
	if err != nil {
		t.Fatal(err)
	}
	if f.broker.RegistrationCount() != 1 {
		t.Error("registration not recorded")
	}
	if RegistrationID(reg) == "" {
		t.Error("registration id missing from EPR")
	}
	if err := DestroyRegistration(context.Background(), f.lb, reg); err != nil {
		t.Fatal(err)
	}
	if f.broker.RegistrationCount() != 0 {
		t.Error("registration not destroyed")
	}
	if err := DestroyRegistration(context.Background(), f.lb, reg); err == nil {
		t.Error("double destroy accepted")
	}
}

func TestDemandBasedPublisher(t *testing.T) {
	f := newFixture(t, false)
	// Demand registration: the broker subscribes at the publisher and
	// pauses immediately (no subscribers yet).
	reg, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest",
		wsa.NewEPR(wsa.V200508, "svc://publisher"), true, grid)
	if err != nil {
		t.Fatal(err)
	}
	regID := RegistrationID(reg)
	if paused, ok := f.broker.Paused(regID); !ok || !paused {
		t.Fatalf("upstream should start paused (paused=%v ok=%v)", paused, ok)
	}
	if f.publisher.SubscriptionCount() != 1 {
		t.Fatal("broker did not subscribe at publisher")
	}
	// While paused, publisher events do not reach the broker.
	f.publisher.Publish(context.Background(), grid, event("lost"))
	if f.consumer.Count() != 0 {
		t.Error("event delivered while paused")
	}
	// A consumer subscribing on the topic creates demand → resume.
	h, err := f.sub.Subscribe(context.Background(), "svc://broker", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://consumer"),
		TopicExpression:   "tns:jobs", TopicDialect: topics.DialectSimple,
		TopicNS: map[string]string{"tns": "urn:grid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if paused, _ := f.broker.Paused(regID); paused {
		t.Fatal("upstream still paused despite demand")
	}
	f.publisher.Publish(context.Background(), grid, event("wanted"))
	if f.consumer.Count() != 1 {
		t.Fatalf("consumer received %d after resume", f.consumer.Count())
	}
	// Unsubscribe removes demand → pause again.
	if err := f.sub.Unsubscribe(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	if paused, _ := f.broker.Paused(regID); !paused {
		t.Error("upstream not re-paused after demand vanished")
	}
}

func TestDemandIgnoresUnrelatedTopics(t *testing.T) {
	f := newFixture(t, false)
	reg, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest",
		wsa.NewEPR(wsa.V200508, "svc://publisher"), true, grid)
	if err != nil {
		t.Fatal(err)
	}
	// A subscriber on a different topic creates no demand for this
	// publisher.
	_, err = f.sub.Subscribe(context.Background(), "svc://broker", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://consumer"),
		TopicExpression:   "tns:weather", TopicDialect: topics.DialectSimple,
		TopicNS: map[string]string{"tns": "urn:grid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if paused, _ := f.broker.Paused(RegistrationID(reg)); !paused {
		t.Error("unrelated subscription created demand")
	}
}

func TestDemandRegistrationNeedsPublisherReference(t *testing.T) {
	f := newFixture(t, false)
	_, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest", nil, true, grid)
	if err == nil {
		t.Error("demand registration without publisher accepted")
	}
}

func TestBrokerFanOut(t *testing.T) {
	f := newFixture(t, false)
	consumers := make([]*wsnt.Consumer, 5)
	for i := range consumers {
		consumers[i] = &wsnt.Consumer{}
		addr := "svc://c" + string(rune('0'+i))
		f.lb.Register(addr, consumers[i])
		_, err := f.sub.Subscribe(context.Background(), "svc://broker", &wsnt.SubscribeRequest{
			ConsumerReference: wsa.NewEPR(wsa.V200508, addr),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	f.publishViaBroker(t, event("fan"))
	for i, c := range consumers {
		if c.Count() != 1 {
			t.Errorf("consumer %d received %d", i, c.Count())
		}
	}
}

func TestDestroyRegistrationUnsubscribesUpstream(t *testing.T) {
	f := newFixture(t, false)
	reg, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest",
		wsa.NewEPR(wsa.V200508, "svc://publisher"), true, grid)
	if err != nil {
		t.Fatal(err)
	}
	if f.publisher.SubscriptionCount() != 1 {
		t.Fatal("no upstream subscription")
	}
	if err := DestroyRegistration(context.Background(), f.lb, reg); err != nil {
		t.Fatal(err)
	}
	if f.publisher.SubscriptionCount() != 0 {
		t.Error("upstream subscription survived registration destruction")
	}
}

func TestIngestRejectsNonNotifyBodies(t *testing.T) {
	f := newFixture(t, false)
	env := soap.New(soap.V11)
	env.AddBody(xmldom.Elem("urn:x", "RandomRequest"))
	if err := f.lb.Send(context.Background(), "svc://broker-ingest", env); err == nil {
		t.Error("non-Notify body accepted at ingest")
	}
	// Empty body too.
	if err := f.lb.Send(context.Background(), "svc://broker-ingest", soap.New(soap.V11)); err == nil {
		t.Error("empty body accepted at ingest")
	}
}

func TestRegisterPublisherBadTopicFaults(t *testing.T) {
	f := newFixture(t, false)
	env := soap.New(soap.V11)
	body := xmldom.Elem(NS, "RegisterPublisher",
		xmldom.Elem(NS, "Topic", "un:declared/prefix"))
	env.AddBody(body)
	if _, err := f.lb.Call(context.Background(), "svc://broker-ingest", env); err == nil {
		t.Error("undeclared topic prefix accepted")
	}
}

func TestDemandSubscribeFailureRollsBackRegistration(t *testing.T) {
	f := newFixture(t, false)
	// Publisher address does not exist: the demand registration must fail
	// and not leave a half-created registration behind.
	_, err := RegisterPublisher(context.Background(), f.lb, "svc://broker-ingest",
		wsa.NewEPR(wsa.V200508, "svc://no-such-publisher"), true, grid)
	if err == nil {
		t.Fatal("registration against dead publisher accepted")
	}
	if f.broker.RegistrationCount() != 0 {
		t.Error("failed registration left behind")
	}
}

func TestPausedQueryUnknownRegistration(t *testing.T) {
	f := newFixture(t, false)
	if _, ok := f.broker.Paused("reg-nope"); ok {
		t.Error("unknown registration reported")
	}
}
