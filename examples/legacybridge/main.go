// Legacybridge: WS-Messenger wrapping an existing messaging system, the
// deployment §VII closes with — "WS-Messenger provides Web service
// interfaces to existing messaging systems".
//
// Here the underlying fabric is the JMS baseline. A legacy in-process JMS
// consumer and a modern WS-Notification consumer both see every event:
// the WS side publishes and subscribes through SOAP at the broker, while
// the legacy side keeps using the JMS topic directly.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/jms"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

func main() {
	ctx := context.Background()
	net := transport.NewLoopback()

	// The pre-existing JMS deployment.
	provider := jms.NewProvider()
	legacyTopic := provider.Topic("enterprise.events")

	// A legacy JMS consumer with an SQL92 selector, knowing nothing of
	// Web services.
	legacyTopic.Subscribe(jms.MustSelector("wsmTopic IS NOT NULL"), func(m jms.Message) {
		fmt.Printf("  [legacy JMS consumer] %s selector-matched: topic=%v\n",
			m.TypeName(), m.Properties()["wsmTopic"])
	})

	// WS-Messenger in front, with the JMS topic as its backend fabric.
	broker, err := core.New(core.Config{
		Address:      "svc://bridge",
		Client:       net,
		Backend:      backend.NewJMS(provider, "enterprise.events"),
		SyncDelivery: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Register("svc://bridge", broker.FrontHandler())

	// A modern WS-Notification consumer subscribes through SOAP.
	consumer := &wsnt.Consumer{OnNotify: func(r wsnt.Received) {
		fmt.Printf("  [WS consumer] wrapped Notify: topic=%s payload=%s\n",
			r.Topic, xmldom.Marshal(r.Payload))
	}}
	net.Register("svc://ws-consumer", consumer)
	sub := &wsnt.Subscriber{Client: net, Version: wsnt.V1_3}
	if _, err := sub.Subscribe(ctx, "svc://bridge", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://ws-consumer"),
	}); err != nil {
		log.Fatal(err)
	}

	// A WS publisher sends a Notify to the bridge: both worlds see it.
	fmt.Println("WS publisher -> broker -> JMS fabric -> both consumers:")
	topic := topics.NewPath("urn:enterprise", "orders", "created")
	env := soap.New(soap.V11)
	(&wsa.MessageHeaders{Version: wsa.V200508, To: "svc://bridge",
		Action: wsnt.V1_3.ActionNotify()}).Apply(env)
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{
		{Topic: topic, Payload: xmldom.Elem("urn:enterprise", "Order",
			xmldom.Elem("urn:enterprise", "id", "ord-1001"))},
	}))
	if err := net.Send(ctx, "svc://bridge", env); err != nil {
		log.Fatal(err)
	}

	// A legacy publisher drops a message straight onto the JMS topic: the
	// WS consumer still receives it, as a mediated wrapped Notify.
	fmt.Println("\nlegacy JMS publisher -> fabric -> WS consumer too:")
	legacy := jms.NewTextMessage(xmldom.Marshal(
		xmldom.Elem("urn:enterprise", "Order",
			xmldom.Elem("urn:enterprise", "id", "ord-1002"))))
	legacy.Properties()["wsmTopic"] = topic.String()
	if err := legacyTopic.Publish(legacy); err != nil {
		log.Fatal(err)
	}

	st := broker.Stats()
	fmt.Printf("\nbridge stats: published=%d delivered=%d (backend: JMS topic %q, journal=%d)\n",
		st.Published, st.Delivered, "enterprise.events", provider.JournalLen())
}
