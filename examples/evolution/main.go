// Evolution: §VI of the paper as a running program. The same logical
// workload — job-status events, a consumer interested only in failures —
// is expressed in each of the six systems of Table 3, oldest to newest,
// printing what each generation could and could not do:
//
//	CORBA Event Service      no filtering: the consumer sees everything
//	CORBA Notification Svc   ETCL filter on structured events
//	JMS                      SQL92 selector on message properties
//	OGSI                     service-data-name subscription only
//	WS-Notification 1.3      topic tree + XPath over SOAP
//	WS-Eventing 8/2004       XPath filter over SOAP
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/corbaevent"
	"repro/internal/corbanotify"
	"repro/internal/jms"
	"repro/internal/ogsi"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

// The workload: five job events, two of which are failures.
var events = []struct {
	job   string
	state string
}{
	{"j-1", "running"},
	{"j-2", "failed"},
	{"j-1", "completed"},
	{"j-3", "running"},
	{"j-3", "failed"},
}

func main() {
	ctx := context.Background()

	fmt.Println("== 1995: CORBA Event Service — no filtering exists ==")
	{
		ch := corbaevent.NewChannel()
		got := 0
		ch.ConnectPushConsumer(func(corbaevent.Event) { got++ })
		for _, e := range events {
			ch.Push(e) // the consumer cannot ask for failures only
		}
		fmt.Printf("   consumer wanted failures, received ALL %d events\n\n", got)
	}

	fmt.Println("== 1997: CORBA Notification Service — ETCL filter objects ==")
	{
		ch, _ := corbanotify.NewChannel(nil)
		got := 0
		ch.ConnectPushConsumer(corbanotify.NewFilter(
			corbanotify.MustConstraint("$state == 'failed'")), nil,
			func(evs []*corbanotify.StructuredEvent) { got += len(evs) })
		for _, e := range events {
			ev := corbanotify.NewStructuredEvent("Grid", "JobEvent", e.job)
			ev.FilterableData["state"] = e.state
			ch.Push(ev)
		}
		fmt.Printf("   ETCL \"$state == 'failed'\" delivered %d of %d (binary CDR payloads, RPC only)\n\n", got, len(events))
	}

	fmt.Println("== 1998: JMS — SQL92 selectors, Java-only ==")
	{
		p := jms.NewProvider()
		tp := p.Topic("grid.jobs")
		got := 0
		tp.Subscribe(jms.MustSelector("state = 'failed'"), func(jms.Message) { got++ })
		for _, e := range events {
			m := jms.NewTextMessage(e.job)
			m.Properties()["state"] = e.state
			tp.Publish(m)
		}
		fmt.Printf("   selector \"state = 'failed'\" delivered %d of %d (in-process only: 'works on Java platforms')\n\n", got, len(events))
	}

	fmt.Println("== 2003: OGSI — subscribe to a service data name over HTTP/SOAP ==")
	{
		lb := transport.NewLoopback()
		src := ogsi.NewSource("svc://gs", lb, nil)
		lb.Register("svc://gs", src)
		sink := &ogsi.Sink{}
		lb.Register("svc://ogsi-sink", sink)
		// The finest granularity is a named service data element: the
		// producer must pre-split failures into their own SDE.
		ogsi.Subscribe(ctx, lb, "svc://gs", "lastFailure", "svc://ogsi-sink", time.Time{})
		for _, e := range events {
			src.SetServiceData(ctx, "lastJobEvent", xmldom.Elem("urn:g", "ev", e.job+":"+e.state))
			if e.state == "failed" {
				src.SetServiceData(ctx, "lastFailure", xmldom.Elem("urn:g", "ev", e.job))
			}
		}
		fmt.Printf("   SDE subscription delivered %d of %d — XML over SOAP, but filtering is just a name\n\n",
			sink.Count(), len(events))
	}

	fmt.Println("== 2006: WS-Notification 1.3 — topic trees + XPath, interoperable SOAP ==")
	{
		lb := transport.NewLoopback()
		prod := wsnt.NewProducer(wsnt.ProducerConfig{Version: wsnt.V1_3, Address: "svc://p", Client: lb})
		lb.Register("svc://p", prod.ProducerHandler())
		consumer := &wsnt.Consumer{}
		lb.Register("svc://c", consumer)
		sub := &wsnt.Subscriber{Client: lb, Version: wsnt.V1_3}
		if _, err := sub.Subscribe(ctx, "svc://p", &wsnt.SubscribeRequest{
			ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://c"),
			TopicExpression:   "g:jobs/failed",
			TopicDialect:      topics.DialectConcrete,
			TopicNS:           map[string]string{"g": "urn:g"},
		}); err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			prod.Publish(ctx, topics.NewPath("urn:g", "jobs", e.state),
				xmldom.Elem("urn:g", "ev", e.job))
		}
		fmt.Printf("   topic jobs/failed delivered %d of %d, wrapped Notify over SOAP\n\n",
			consumer.Count(), len(events))
	}

	fmt.Println("== 2004: WS-Eventing 8/2004 — XPath content filter over SOAP ==")
	{
		lb := transport.NewLoopback()
		src := wse.NewSource(wse.SourceConfig{Version: wse.V200408, Address: "svc://s", Client: lb})
		lb.Register("svc://s", src.SourceHandler())
		sink := &wse.Sink{}
		lb.Register("svc://sink", sink)
		sub := &wse.Subscriber{Client: lb, Version: wse.V200408}
		if _, err := sub.Subscribe(ctx, "svc://s", &wse.SubscribeRequest{
			NotifyTo:   wsa.NewEPR(wsa.V200408, "svc://sink"),
			FilterExpr: "//g:state = 'failed'",
			FilterNS:   map[string]string{"g": "urn:g"},
		}); err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			src.Publish(ctx, xmldom.Elem("urn:g", "ev",
				xmldom.Elem("urn:g", "job", e.job),
				xmldom.Elem("urn:g", "state", e.state)), wse.PublishOptions{})
		}
		fmt.Printf("   XPath \"//g:state = 'failed'\" delivered %d of %d, raw messages over SOAP\n\n",
			sink.Count(), len(events))
	}

	fmt.Println("The paper's §VI observations, in order of appearance above:")
	fmt.Println("  filtering: none -> ETCL -> SQL92 selector -> name-only -> topic+XPath (content-based)")
	fmt.Println("  payload:   Anys -> structured/CDR -> typed messages -> XML/SOAP -> XML/SOAP")
	fmt.Println("  scope:     intranet RPC -> intranet RPC -> JVM -> HTTP -> transport-independent")
}
