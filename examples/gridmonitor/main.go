// Gridmonitor: the Grid-computing scenario that motivates the paper's
// introduction. A compute cluster's notification producer advertises a
// hierarchical topic tree (WS-Topics); a dashboard subscribes to a Full-
// dialect wildcard expression; a consumer behind a firewall cannot accept
// inbound connections and therefore drains a PullPoint instead (§V.3's
// pull-delivery scenario).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

const gridNS = "urn:example:grid"

func jobEvent(job, state string) *xmldom.Element {
	return xmldom.Elem(gridNS, "JobStatus",
		xmldom.Elem(gridNS, "job", job),
		xmldom.Elem(gridNS, "state", state))
}

func main() {
	ctx := context.Background()
	net := transport.NewLoopback()

	// The cluster's notification producer with a fixed topic tree.
	space := topics.NewSpace()
	for _, segs := range [][]string{
		{"cluster", "jobs", "submitted"},
		{"cluster", "jobs", "running"},
		{"cluster", "jobs", "completed"},
		{"cluster", "jobs", "failed"},
		{"cluster", "nodes", "down"},
	} {
		space.Add(topics.NewPath(gridNS, segs...))
	}
	producer := wsnt.NewProducer(wsnt.ProducerConfig{
		Version:        wsnt.V1_3,
		Address:        "svc://cluster",
		ManagerAddress: "svc://cluster/subs",
		Client:         net,
		Topics:         space,
		FixedTopicSet:  true,
	})
	net.Register("svc://cluster", producer.ProducerHandler())
	net.Register("svc://cluster/subs", producer.ManagerHandler())
	fmt.Println("advertised topic set:")
	for _, tp := range space.Topics() {
		fmt.Printf("  %s\n", tp)
	}

	sub := &wsnt.Subscriber{Client: net, Version: wsnt.V1_3}

	// Dashboard: push consumer on every jobs subtopic (Full dialect).
	dashboard := &wsnt.Consumer{OnNotify: func(r wsnt.Received) {
		fmt.Printf("  [dashboard] %s: job=%s state=%s\n", r.Topic,
			r.Payload.ChildText(xmldom.N(gridNS, "job")),
			r.Payload.ChildText(xmldom.N(gridNS, "state")))
	}}
	net.Register("svc://dashboard", dashboard)
	if _, err := sub.Subscribe(ctx, "svc://cluster", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://dashboard"),
		TopicExpression:   "g:cluster/jobs//.",
		TopicDialect:      topics.DialectFull,
		TopicNS:           map[string]string{"g": gridNS},
	}); err != nil {
		log.Fatal(err)
	}

	// Firewalled analyst: a PullPoint receives on their behalf.
	pullSvc := wsnt.NewPullPointService("svc://pullpoints")
	net.Register("svc://pullpoints", pullSvc)
	pp, err := wsnt.CreatePullPoint(ctx, net, "svc://pullpoints")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sub.Subscribe(ctx, "svc://cluster", &wsnt.SubscribeRequest{
		ConsumerReference: pp,
		TopicExpression:   "g:cluster/jobs/failed",
		TopicDialect:      topics.DialectConcrete,
		TopicNS:           map[string]string{"g": gridNS},
		ContentExpr:       "//g:job", // any failure with a job id
		ContentNS:         map[string]string{"g": gridNS},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirewalled consumer subscribed via a PullPoint")

	// The cluster runs some jobs.
	fmt.Println("\ncluster activity:")
	events := []struct {
		topic []string
		job   string
		state string
	}{
		{[]string{"cluster", "jobs", "submitted"}, "j-1", "submitted"},
		{[]string{"cluster", "jobs", "running"}, "j-1", "running"},
		{[]string{"cluster", "jobs", "completed"}, "j-1", "done"},
		{[]string{"cluster", "jobs", "submitted"}, "j-2", "submitted"},
		{[]string{"cluster", "jobs", "failed"}, "j-2", "segfault"},
		{[]string{"cluster", "nodes", "down"}, "", "node-14 offline"},
	}
	for _, e := range events {
		producer.Publish(ctx, topics.NewPath(gridNS, e.topic...), jobEvent(e.job, e.state))
	}

	// The analyst dials out through the firewall and drains the queue.
	fmt.Println("\nfirewalled analyst pulls failures:")
	msgs, err := wsnt.GetMessages(ctx, net, pp, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range msgs {
		fmt.Printf("  [pulled] %s: job=%s state=%s\n", m.Topic,
			m.Payload.ChildText(xmldom.N(gridNS, "job")),
			m.Payload.ChildText(xmldom.N(gridNS, "state")))
	}

	// The cluster's last status on a topic stays queryable.
	last, err := sub.GetCurrentMessage(ctx, "svc://cluster", "g:cluster/jobs/completed",
		topics.DialectConcrete, map[string]string{"g": gridNS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGetCurrentMessage(cluster/jobs/completed) = %s\n", xmldom.Marshal(last))

	// Subscribing to an unsupported topic faults with TopicNotSupported.
	_, err = sub.Subscribe(ctx, "svc://cluster", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://dashboard"),
		TopicExpression:   "g:accounting",
		TopicDialect:      topics.DialectSimple,
		TopicNS:           map[string]string{"g": gridNS},
	})
	fmt.Printf("subscribe to unadvertised topic -> %v\n", err)
}
