// Mediation: the paper's §VII scenario. A WS-Eventing subscriber and a
// WS-Notification subscriber both subscribe at the WS-Messenger broker;
// producers publish once in each specification; every consumer receives
// every event in *its own* specification — "it makes no difference to the
// event consumers since WS-Messenger performs mediations automatically".
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/soap"
	"repro/internal/topics"
	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/wsnt"
	"repro/internal/xmldom"
)

func main() {
	ctx := context.Background()
	net := transport.NewLoopback()

	broker, err := core.New(core.Config{
		Address:        "svc://wsm",
		ManagerAddress: "svc://wsm/manage",
		Client:         net,
		SyncDelivery:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Register("svc://wsm", broker.FrontHandler())
	net.Register("svc://wsm/manage", broker.ManagerHandler())

	// A WS-Eventing 8/2004 consumer...
	wseSink := &wse.Sink{OnNotify: func(n wse.Notification) {
		fmt.Printf("  [WSE sink]  raw message, topic header=%s, payload=%s\n",
			n.Topic, xmldom.Marshal(n.Payload))
	}}
	net.Register("svc://wse-sink", wseSink)
	wseSub := &wse.Subscriber{Client: net, Version: wse.V200408}
	if _, err := wseSub.Subscribe(ctx, "svc://wsm", &wse.SubscribeRequest{
		NotifyTo: wsa.NewEPR(wsa.V200408, "svc://wse-sink"),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("WS-Eventing consumer subscribed at the broker")

	// ...and a WS-Notification 1.3 consumer, on the same broker.
	wsnConsumer := &wsnt.Consumer{OnNotify: func(r wsnt.Received) {
		fmt.Printf("  [WSN sink]  wrapped=%v, topic in body=%s, payload=%s\n",
			r.Wrapped, r.Topic, xmldom.Marshal(r.Payload))
	}}
	net.Register("svc://wsn-consumer", wsnConsumer)
	wsnSub := &wsnt.Subscriber{Client: net, Version: wsnt.V1_3}
	if _, err := wsnSub.Subscribe(ctx, "svc://wsm", &wsnt.SubscribeRequest{
		ConsumerReference: wsa.NewEPR(wsa.V200508, "svc://wsn-consumer"),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("WS-Notification consumer subscribed at the broker")

	topic := topics.NewPath("urn:grid", "jobs", "completed")
	payload := xmldom.Elem("urn:grid", "JobCompleted",
		xmldom.Elem("urn:grid", "job", "gridjob-42"))

	// Publish in the WS-Notification style: a wrapped Notify.
	fmt.Println("\npublishing as WS-Notification (wrapped Notify):")
	env := soap.New(soap.V11)
	(&wsa.MessageHeaders{Version: wsa.V200508, To: "svc://wsm",
		Action: wsnt.V1_3.ActionNotify()}).Apply(env)
	env.AddBody(wsnt.NotifyElement(wsnt.V1_3, []*wsnt.NotificationMessage{
		{Topic: topic, Payload: payload},
	}))
	if err := net.Send(ctx, "svc://wsm", env); err != nil {
		log.Fatal(err)
	}

	// Publish in the WS-Eventing style: a raw body, topic in the header.
	fmt.Println("\npublishing as WS-Eventing (raw message, topic in SOAP header):")
	env2 := soap.New(soap.V11)
	(&wsa.MessageHeaders{Version: wsa.V200408, To: "svc://wsm",
		Action: "urn:demo:publish"}).Apply(env2)
	env2.AddHeader(xmldom.Elem(wse.TopicHeaderName.Space, wse.TopicHeaderName.Local, topic.String()))
	env2.AddBody(payload)
	if err := net.Send(ctx, "svc://wsm", env2); err != nil {
		log.Fatal(err)
	}

	st := broker.Stats()
	fmt.Printf("\nbroker stats: published=%d delivered=%d cross-spec mediations=%d\n",
		st.Published, st.Delivered, st.Mediations)
}
