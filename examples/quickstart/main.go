// Quickstart: a complete WS-Eventing publish/subscribe exchange in one
// process — event source, subscriber and event sink over the in-memory
// transport, exercising the full 8/2004 lifecycle (subscribe, notify,
// renew, get status, unsubscribe).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/transport"
	"repro/internal/wsa"
	"repro/internal/wse"
	"repro/internal/xmldom"
)

func main() {
	ctx := context.Background()
	net := transport.NewLoopback()

	// The event source with a separate subscription manager (8/2004).
	source := wse.NewSource(wse.SourceConfig{
		Version:        wse.V200408,
		Address:        "svc://stock-source",
		ManagerAddress: "svc://stock-subscriptions",
		Client:         net,
	})
	net.Register("svc://stock-source", source.SourceHandler())
	net.Register("svc://stock-subscriptions", source.ManagerHandler())

	// The event sink just prints what it receives.
	sink := &wse.Sink{OnNotify: func(n wse.Notification) {
		fmt.Printf("  sink received: %s\n", xmldom.Marshal(n.Payload))
	}}
	net.Register("svc://my-sink", sink)

	// Subscribe with an XPath content filter: only quotes above 50.
	subscriber := &wse.Subscriber{Client: net, Version: wse.V200408}
	handle, err := subscriber.Subscribe(ctx, "svc://stock-source", &wse.SubscribeRequest{
		NotifyTo:   wsa.NewEPR(wsa.V200408, "svc://my-sink"),
		Expires:    "PT1H",
		FilterExpr: "//m:price > 50",
		FilterNS:   map[string]string{"m": "urn:market"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed: id=%s manager=%s expires=%v\n",
		handle.ID, handle.Manager.Address, handle.Expires)

	// Publish three events; the filter admits two.
	for _, q := range []struct {
		sym   string
		price string
	}{{"IBM", "83.50"}, {"SUNW", "5.10"}, {"MSFT", "67.25"}} {
		quote := xmldom.Elem("urn:market", "quote",
			xmldom.Elem("urn:market", "symbol", q.sym),
			xmldom.Elem("urn:market", "price", q.price))
		n, err := source.Publish(ctx, quote, wse.PublishOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s @ %s -> %d delivery(ies)\n", q.sym, q.price, n)
	}

	// Manage the subscription.
	granted, err := subscriber.Renew(ctx, handle, "PT2H")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("renewed until %v\n", granted)
	status, err := subscriber.GetStatus(ctx, handle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: expires %v\n", status)
	if err := subscriber.Unsubscribe(ctx, handle); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsubscribed; sink saw %d notifications (filter admitted IBM and MSFT)\n", sink.Count())
}
